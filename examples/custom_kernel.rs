//! Authoring a custom kernel: assemble PTXPlus-like text, inspect its CFG
//! and loops, disassemble it, and measure its fault-site population — the
//! workflow for bringing your own workload to the injector.
//!
//! ```sh
//! cargo run --example custom_kernel
//! ```

use fault_site_pruning::isa::assemble;
use fault_site_pruning::sim::{Launch, MemBlock, Simulator, Tracer};

fn main() {
    // A reduction kernel: each thread sums a strided slice of the input,
    // then thread 0 combines the partial sums through shared memory.
    let program = assemble(
        "strided_sum",
        r#"
        cvt.u32.u16 $r1, %tid.x
        shl.u32 $r2, $r1, 0x2
        add.u32 $r3, $r2, s[0x0010]       // &in[tid]
        mov.u32 $r4, $r124                // acc = 0
        mov.u32 $r5, 0x8                  // 8 elements per thread
        loop:
        ld.global.u32 $r6, [$r3]
        add.u32 $r4, $r4, $r6
        add.u32 $r3, $r3, 0x10            // stride = 4 threads * 4 bytes
        add.u32 $r5, $r5, -1
        set.ne.u32.u32 $p0/$o127, $r5, $r124
        @$p0.ne bra loop
        add.u32 $r7, $r2, 0x100
        mov.u32 s[$r7], $r4               // partials[tid]
        bar.sync 0x0
        set.eq.u32.u32 $p0/$o127, $r1, $r124
        @$p0.eq bra done                  // only thread 0 reduces
        mov.u32 $r8, s[0x0100]
        add.u32 $r8, $r8, s[0x0104]
        add.u32 $r8, $r8, s[0x0108]
        add.u32 $r8, $r8, s[0x010c]
        st.global.u32 [$r124+0x80], $r8   // total at byte 0x80
        done: exit
        "#,
    )
    .expect("kernel assembles");

    // Disassemble (round-trips through the label table).
    println!("disassembly:\n{program}");

    // Static analysis: CFG and natural loops.
    let cfg = program.cfg();
    let loops = cfg.loops(&program);
    println!("basic blocks: {}", cfg.blocks().len());
    for l in &loops.loops {
        println!(
            "loop {}: header pc {}, {} instructions, depth {}",
            l.id,
            l.header,
            l.body.len(),
            l.depth
        );
    }

    // Run it: 4 threads, 32 input words.
    let launch = Launch::new(program).block(4, 1, 1).param(0);
    let mut memory = MemBlock::with_words(64);
    let input: Vec<u32> = (0..32).collect();
    memory.write_slice(0, &input);
    let mut tracer = Tracer::new(4, 4).with_full_traces(0..4);
    Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .expect("runs");
    let total = memory.load(0x80).expect("in range");
    assert_eq!(total, (0..32).sum::<u32>());
    println!("reduction result: {total}");

    // Fault-site accounting per thread (Equation 1).
    let trace = tracer.finish();
    for tid in 0..4 {
        println!(
            "thread {tid}: iCnt {}, {} fault sites",
            trace.icnt[tid as usize],
            trace.full[tid].fault_bits()
        );
    }
    println!("total fault sites: {}", trace.total_fault_sites());
}
