//! Quickstart: assemble a tiny kernel, run it, enumerate its fault sites
//! and inject a few faults.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fault_site_pruning::inject::{Experiment, FaultSite, InjectionTarget};
use fault_site_pruning::isa::assemble;
use fault_site_pruning::sim::{Launch, MemBlock, Simulator, Tracer};
use std::sync::Arc;

/// A four-thread saxpy-style kernel: `y[tid] = a * x[tid] + y[tid]`.
struct Saxpy {
    program: Arc<fault_site_pruning::isa::KernelProgram>,
}

impl Saxpy {
    const N: u32 = 4;

    fn new() -> Self {
        let program = assemble(
            "saxpy",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            add.u32 $r3, $r2, s[0x0010]    // &x[tid]
            add.u32 $r4, $r2, s[0x0014]    // &y[tid]
            ld.global.f32 $r5, [$r3]
            ld.global.f32 $r6, [$r4]
            mul.f32 $r5, $r5, 2.0          // a = 2.0
            add.f32 $r5, $r5, $r6
            st.global.f32 [$r4], $r5
            exit
            "#,
        )
        .expect("saxpy assembles");
        Saxpy {
            program: Arc::new(program),
        }
    }
}

impl InjectionTarget for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }

    fn launch(&self) -> Launch {
        Launch::new(Arc::clone(&self.program))
            .block(Self::N, 1, 1)
            .param(0) // x at byte 0
            .param(Self::N * 4) // y after x
    }

    fn init_memory(&self) -> MemBlock {
        let mut m = MemBlock::with_words(2 * Self::N as usize);
        m.write_f32_slice(0, &[1.0, 2.0, 3.0, 4.0]);
        m.write_f32_slice(Self::N * 4, &[10.0, 20.0, 30.0, 40.0]);
        m
    }

    fn output_region(&self) -> (u32, usize) {
        (Self::N * 4, Self::N as usize)
    }
}

fn main() {
    let target = Saxpy::new();

    // 1. Run fault-free and look at the result.
    let mut memory = target.init_memory();
    let launch = target.launch();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let stats = Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .expect("fault-free run");
    let y: Vec<f32> = memory
        .read_words(Saxpy::N * 4, Saxpy::N as usize)
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect();
    println!(
        "fault-free: y = {y:?} ({} instructions)",
        stats.instructions
    );

    // 2. Count the fault sites (Equation 1 of the paper).
    let trace = tracer.finish();
    println!(
        "fault sites: {} across {} threads (iCnt {:?})",
        trace.total_fault_sites(),
        trace.num_threads(),
        trace.icnt
    );

    // 3. Inject a few single-bit faults and classify the outcomes.
    let experiment = Experiment::prepare(&target).expect("prepare");
    for (tid, dyn_idx, bit) in [(0, 6, 30), (1, 0, 0), (2, 4, 22), (3, 8, 3)] {
        let site = FaultSite { tid, dyn_idx, bit };
        let outcome = experiment.run_one(site);
        println!("flip thread {tid}, instruction {dyn_idx}, bit {bit}: {outcome}");
    }
}
