//! Builds the error-resilience profile of a Rodinia kernel two ways — a
//! statistical random-sampling baseline and the paper's progressive
//! pruning — and compares them.
//!
//! ```sh
//! cargo run --release --example resilience_profile [kernel-id] [samples]
//! ```

use fault_site_pruning::inject::{Experiment, InjectionTarget};
use fault_site_pruning::pruning::{run_baseline, PruningConfig, PruningPipeline};
use fault_site_pruning::stats::required_samples_infinite;
use fault_site_pruning::workloads::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map_or("pathfinder", String::as_str);
    let samples: usize = args.get(1).map_or_else(
        || required_samples_infinite(0.99, 0.0166) as usize,
        |s| s.parse().expect("samples must be a number"),
    );
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    let Some(workload) = workloads::by_id(id, Scale::Eval) else {
        eprintln!(
            "unknown kernel `{id}`; try one of: {}",
            workloads::registry_ids().join(", ")
        );
        std::process::exit(1);
    };
    println!(
        "{} / {} ({}) — {} threads at eval scale",
        workload.app(),
        workload.kernel(),
        workload.id(),
        workload.launch().num_threads()
    );

    let experiment = Experiment::prepare(&workload).expect("fault-free run");

    // Statistical baseline: uniform random sites over the full population.
    let space = experiment.site_space(0..workload.launch().num_threads());
    println!("exhaustive population: {} sites", space.total_sites());
    let started = std::time::Instant::now();
    let baseline = run_baseline(&experiment, &space, samples, 42, workers);
    println!(
        "baseline ({samples} runs, {:.1?}): {baseline}",
        started.elapsed()
    );

    // Progressive pruning: the paper's four stages.
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let plan = pipeline.plan_for(&experiment).expect("plan");
    let s = plan.stages;
    println!(
        "pruning: {} -> {} (thread) -> {} (instr) -> {} (loop) -> {} runs (bit)",
        s.exhaustive, s.after_thread, s.after_instruction, s.after_loop, s.after_bit
    );
    let started = std::time::Instant::now();
    let pruned = pipeline.run(&experiment, &plan, workers);
    println!(
        "pruned   ({} runs, {:.1?}): {pruned}",
        s.after_bit,
        started.elapsed()
    );

    let (dm, ds, do_) = pruned.diff(&baseline);
    println!("difference: masked {dm:+.2}%, sdc {ds:+.2}%, other {do_:+.2}%");
}
