//! Walks through the four pruning stages one at a time on GEMM, printing
//! what each stage contributes — a guided tour of the paper's Section III.
//!
//! ```sh
//! cargo run --release --example pruning_pipeline
//! ```

use fault_site_pruning::inject::{Experiment, InjectionTarget};
use fault_site_pruning::pruning::{
    BitSampler, CommonalityConfig, LoopTagging, PredBitPolicy, PruningConfig, PruningPipeline,
    ThreadGrouping,
};
use fault_site_pruning::sim::{Simulator, Tracer};
use fault_site_pruning::workloads::{self, Scale};

fn main() {
    let workload = workloads::by_id("gemm", Scale::Eval).expect("gemm registered");
    let launch = workload.launch();
    println!(
        "GEMM at eval scale: {} threads in {} CTAs\n",
        launch.num_threads(),
        launch.num_ctas()
    );

    // --- Stage 0: the exhaustive population (Equation 1).
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let mut memory = workload.init_memory();
    Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .expect("runs");
    let trace = tracer.finish();
    println!(
        "Equation 1: {} exhaustive fault sites",
        trace.total_fault_sites()
    );

    // --- Stage 1: thread-wise grouping.
    let grouping = ThreadGrouping::analyze(&trace);
    println!(
        "thread-wise: {} CTA groups, {} representative thread(s)",
        grouping.groups.len(),
        grouping.num_representatives()
    );
    for g in &grouping.groups {
        for tg in &g.thread_groups {
            println!(
                "  rep thread {} stands for {} threads (iCnt {})",
                tg.representative, tg.population, tg.icnt
            );
        }
    }

    // --- Stage 3 preview: loop structure of the representative.
    let program = launch.program();
    let forest = program.cfg().loops(program);
    let experiment = Experiment::prepare(&workload).expect("prepare");
    let rep = grouping.representatives(&trace)[0].tid;
    let space = experiment.site_space([rep]);
    let tagging = LoopTagging::analyze(&space.trace().full[rep], &forest);
    println!(
        "\nloop-wise: {} loop(s); representative executes {} iterations, \
         {:.1}% of its instructions are inside loops",
        forest.len(),
        tagging.max_total_iterations(),
        100.0 * tagging.loop_fraction()
    );

    // --- Full pipeline at different bit-sampling levels.
    println!("\nprogressive plans:");
    for bits in [0u32, 16, 8, 4] {
        let config = PruningConfig {
            commonality: Some(CommonalityConfig::default()),
            loop_samples: 7,
            bits: BitSampler {
                samples_per_32: bits,
                pred_policy: PredBitPolicy::ZeroFlagOnly,
            },
            ..PruningConfig::default()
        };
        let pipeline = PruningPipeline::new(config);
        let plan = pipeline.plan_for(&experiment).expect("plan");
        println!(
            "  bits={:>3}: {:>8} runs  ({:.1} orders of magnitude pruned, weight check: {:.0})",
            if bits == 0 {
                "all".to_owned()
            } else {
                bits.to_string()
            },
            plan.stages.after_bit,
            plan.stages.reduction_orders(),
            plan.total_weight()
        );
    }
}
