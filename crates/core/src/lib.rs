#![warn(missing_docs)]
//! **Progressive fault-site pruning** — the contribution of the MICRO'18
//! paper this repository reproduces.
//!
//! GPGPU kernels expose fault-site populations of up to hundreds of
//! millions of single-bit sites (Equation 1 / Table I). This crate prunes
//! that population in progressive stages, each exploiting a SIMT
//! redundancy, while preserving the kernel's error-resilience profile:
//!
//! 0. **Static ACE** ([`StaticAceReport`], from `fsp-analyze`): destination
//!    bits the dataflow analysis proves can never reach kernel output are
//!    declared masked before any dynamic information exists.
//! 1. **Thread-wise** ([`ThreadGrouping`]): CTAs are grouped by mean
//!    per-thread dynamic instruction count (iCnt), threads within a
//!    representative CTA by exact iCnt; one representative thread per group
//!    is injected and stands for the whole group.
//! 2. **Instruction-wise** ([`Commonality`]): the dynamic instruction
//!    sequences of representative threads are aligned; blocks common with
//!    the reference thread are injected once and extrapolated.
//! 3. **Loop-wise** ([`LoopTagging`] + iteration sampling): loop iterations
//!    are tagged and only a small random subset is injected, the rest
//!    being redistributed onto the sampled iterations.
//! 4. **Bit-wise** ([`BitSampler`]): equally spaced bit positions are
//!    sampled from each destination register; the architecturally inert
//!    predicate flag bits (sign/carry/overflow in these kernels) are
//!    declared masked outright.
//!
//! [`PruningPipeline`] composes the stages into a [`PruningPlan`] — a
//! weighted site list whose total weight provably equals the exhaustive
//! population — and runs it as an injection campaign.
//!
//! # Example
//!
//! ```no_run
//! use fsp_core::{PruningConfig, PruningPipeline};
//! use fsp_inject::{Experiment, InjectionTarget};
//! use fsp_inject::testing::CountdownTarget;
//!
//! let target = CountdownTarget::new();
//! let experiment = Experiment::prepare(&target)?;
//! let pipeline = PruningPipeline::new(PruningConfig::default());
//! let plan = pipeline.plan_for(&experiment)?;
//! println!("{} sites instead of {}", plan.sites.len(), plan.stages.exhaustive);
//! let profile = pipeline.run(&experiment, &plan, 4);
//! println!("pruned profile: {profile}");
//! # Ok::<(), fsp_sim::SimFault>(())
//! ```

mod adaptive;
mod bits;
mod commonality;
mod grouping;
mod loops;
mod outcome_grouping;
mod pipeline;

pub use adaptive::{AdaptiveConfig, AdaptiveResult};
pub use bits::{BitSampler, PredBitPolicy, SlotSelection};
pub use commonality::{align_lcs, Alignment, Commonality, CommonalityConfig, RepRole};
pub use grouping::{CtaGroup, CtaKey, Representative, ThreadGroup, ThreadGrouping};
pub use loops::{LoopStats, LoopTag, LoopTagging};
pub use outcome_grouping::OutcomeGrouping;
pub use pipeline::{
    abs_context_for, run_baseline, PruningConfig, PruningPipeline, PruningPlan, StageCounts,
};

pub use fsp_analyze::{AceClass, AceSummary, ClassifyReport, ClassifySummary, StaticAceReport};
