//! Stage 3 — loop-wise pruning (Section III-D).
//!
//! Most dynamic instructions of loopy kernels come from loop iterations
//! (65–99.7%, Table VII), and the evaluated kernels' iterations neither
//! depend on loop-carried register state in a resilience-relevant way nor
//! communicate across iterations — so a random subset of iterations
//! captures the outcome distribution (Figure 6). This module tags each
//! dynamic instruction of a thread trace with its innermost loop and
//! iteration number, and samples iterations to keep.

use fsp_isa::LoopForest;
use fsp_sim::ThreadTrace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Loop membership of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopTag {
    /// Static loop id (index into the [`LoopForest`]).
    pub loop_id: u32,
    /// 0-based iteration of that loop at the time of execution.
    pub iteration: u32,
}

/// Per-thread dynamic loop analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopTagging {
    /// Tag per dynamic instruction (`None` = not inside any loop), parallel
    /// to the trace entries.
    pub tags: Vec<Option<LoopTag>>,
    /// Observed trip count per loop id: the maximum iterations of a single
    /// entry into the loop (0 for loops this thread never entered). This is
    /// the population iteration-sampling draws from.
    pub trip_counts: Vec<u32>,
    /// Total dynamic iterations per loop id across all entries — for a
    /// nested loop entered five times with 34 iterations each this is 170.
    /// Table VII's "# loop iter." reports the per-thread maximum of this.
    pub total_iterations: Vec<u64>,
}

impl LoopTagging {
    /// Tags a thread trace against the program's loop forest.
    ///
    /// Iteration counting: executing a loop's header via its back edge
    /// increments the iteration; entering from outside resets it to zero.
    #[must_use]
    pub fn analyze(trace: &ThreadTrace, forest: &LoopForest) -> Self {
        let n_loops = forest.loops.len();
        let mut iter = vec![0u32; n_loops];
        let mut trip = vec![0u32; n_loops];
        let mut total = vec![0u64; n_loops];
        let mut tags = Vec::with_capacity(trace.entries.len());
        let mut prev_pc: Option<usize> = None;

        for entry in &trace.entries {
            let pc = entry.pc as usize;
            for l in &forest.loops {
                if pc == l.header {
                    let from_latch = prev_pc.is_some_and(|p| l.latches.contains(&p));
                    if from_latch {
                        iter[l.id] += 1;
                        total[l.id] += 1;
                    } else if prev_pc.is_none_or(|p| !l.contains(p)) {
                        iter[l.id] = 0;
                        total[l.id] += 1;
                    }
                    trip[l.id] = trip[l.id].max(iter[l.id] + 1);
                }
            }
            let tag = forest.innermost(pc).map(|l| LoopTag {
                loop_id: l.id as u32,
                iteration: iter[l.id],
            });
            tags.push(tag);
            prev_pc = Some(pc);
        }
        LoopTagging {
            tags,
            trip_counts: trip,
            total_iterations: total,
        }
    }

    /// Number of dynamic instructions inside loops.
    #[must_use]
    pub fn instructions_in_loops(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    /// Fraction of dynamic instructions inside loops (Table VII's
    /// "% insn in loop").
    #[must_use]
    pub fn loop_fraction(&self) -> f64 {
        if self.tags.is_empty() {
            0.0
        } else {
            self.instructions_in_loops() as f64 / self.tags.len() as f64
        }
    }

    /// Largest single-entry trip count across loops.
    #[must_use]
    pub fn max_trip_count(&self) -> u32 {
        self.trip_counts.iter().copied().max().unwrap_or(0)
    }

    /// Largest *total* dynamic iteration count across loops — Table VII's
    /// "# loop iter." (e.g. 170 for K-Means K2: 5 clusters × 34 features).
    #[must_use]
    pub fn max_total_iterations(&self) -> u64 {
        self.total_iterations.iter().copied().max().unwrap_or(0)
    }

    /// Randomly selects up to `num_iter` iterations *per loop* to keep
    /// (seeded, deterministic). Returns, per loop id, the sorted kept
    /// iteration numbers; loops with trip count `<= num_iter` keep all.
    #[must_use]
    pub fn sample_iterations(&self, num_iter: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.trip_counts
            .iter()
            .map(|&trip| {
                let all: Vec<u32> = (0..trip).collect();
                if all.len() <= num_iter {
                    return all;
                }
                let mut chosen: Vec<u32> =
                    all.choose_multiple(&mut rng, num_iter).copied().collect();
                chosen.sort_unstable();
                chosen
            })
            .collect()
    }

    /// Whether the dynamic instruction at `idx` survives the given
    /// iteration selection.
    #[must_use]
    pub fn survives(&self, idx: usize, kept: &[Vec<u32>]) -> bool {
        match self.tags[idx] {
            None => true,
            Some(tag) => kept[tag.loop_id as usize]
                .binary_search(&tag.iteration)
                .is_ok(),
        }
    }
}

/// Per-kernel loop statistics for Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopStats {
    /// Maximum total dynamic iterations across loops and analyzed threads
    /// (Table VII's "# loop iter.").
    pub max_iterations: u64,
    /// Maximum single-entry trip count across loops and analyzed threads.
    pub max_trip: u32,
    /// Fraction of dynamic instructions inside loops, over the analyzed
    /// threads.
    pub loop_fraction: f64,
}

impl LoopStats {
    /// Aggregates loop statistics over several threads' taggings.
    #[must_use]
    pub fn aggregate(taggings: &[LoopTagging]) -> Self {
        let max_iterations = taggings
            .iter()
            .map(LoopTagging::max_total_iterations)
            .max()
            .unwrap_or(0);
        let max_trip = taggings
            .iter()
            .map(LoopTagging::max_trip_count)
            .max()
            .unwrap_or(0);
        let total: usize = taggings.iter().map(|t| t.tags.len()).sum();
        let inside: usize = taggings
            .iter()
            .map(LoopTagging::instructions_in_loops)
            .sum();
        LoopStats {
            max_iterations,
            max_trip,
            loop_fraction: if total == 0 {
                0.0
            } else {
                inside as f64 / total as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;
    use fsp_sim::{Launch, MemBlock, Simulator, Tracer};

    fn traced(src: &str) -> (fsp_isa::KernelProgram, ThreadTrace) {
        let p = assemble("t", src).unwrap();
        let launch = Launch::new(p.clone()).grid(1, 1).block(1, 1, 1);
        let mut tracer = Tracer::new(1, 1).with_full_traces([0]);
        let mut g = MemBlock::with_words(16);
        Simulator::new().run(&launch, &mut g, &mut tracer).unwrap();
        let trace = tracer.finish().full.remove(0).unwrap();
        (p, trace)
    }

    const LOOP_SRC: &str = r#"
        mov.u32 $r1, 0x0
        loop:
        add.u32 $r2, $r2, $r1
        add.u32 $r1, $r1, 0x1
        set.ne.u32.u32 $p0/$o127, $r1, 0x8
        @$p0.ne bra loop
        exit
    "#;

    #[test]
    fn tags_iterations() {
        let (p, trace) = traced(LOOP_SRC);
        let forest = p.cfg().loops(&p);
        let tagging = LoopTagging::analyze(&trace, &forest);
        assert_eq!(tagging.trip_counts, vec![8]);
        assert_eq!(tagging.max_trip_count(), 8);
        // mov outside; 7 full iterations of 4 instructions plus a final
        // iteration of 3 (the exit-side guarded branch does not retire);
        // exit outside.
        assert_eq!(tagging.instructions_in_loops(), 31);
        assert_eq!(tagging.tags.len(), 33);
        assert_eq!(tagging.tags[0], None);
        assert_eq!(
            tagging.tags[1],
            Some(LoopTag {
                loop_id: 0,
                iteration: 0
            })
        );
        assert_eq!(
            tagging.tags[5],
            Some(LoopTag {
                loop_id: 0,
                iteration: 1
            })
        );
        assert_eq!(*tagging.tags.last().unwrap(), None);
        assert!((tagging.loop_fraction() - 31.0 / 33.0).abs() < 1e-12);
    }

    #[test]
    fn nested_loop_iterations_reset() {
        let (p, trace) = traced(
            r#"
            mov.u32 $r1, 0x0
            outer:
            mov.u32 $r2, 0x0
            inner:
            add.u32 $r3, $r3, 0x1
            add.u32 $r2, $r2, 0x1
            set.ne.u32.u32 $p0/$o127, $r2, 0x3
            @$p0.ne bra inner
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0x2
            @$p0.ne bra outer
            exit
            "#,
        );
        let forest = p.cfg().loops(&p);
        let tagging = LoopTagging::analyze(&trace, &forest);
        // Outer loop id 0 (bigger body), inner id 1.
        assert_eq!(tagging.trip_counts[0], 2);
        assert_eq!(
            tagging.trip_counts[1], 3,
            "inner trip resets per outer iter"
        );
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let (p, trace) = traced(LOOP_SRC);
        let forest = p.cfg().loops(&p);
        let tagging = LoopTagging::analyze(&trace, &forest);
        let a = tagging.sample_iterations(3, 42);
        let b = tagging.sample_iterations(3, 42);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 3);
        assert!(a[0].windows(2).all(|w| w[0] < w[1]));
        assert!(a[0].iter().all(|&i| i < 8));
        // Oversampling keeps everything.
        let all = tagging.sample_iterations(100, 1);
        assert_eq!(all[0], (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn survives_filters_unsampled_iterations() {
        let (p, trace) = traced(LOOP_SRC);
        let forest = p.cfg().loops(&p);
        let tagging = LoopTagging::analyze(&trace, &forest);
        let kept = vec![vec![0, 7]];
        // Non-loop instructions always survive.
        assert!(tagging.survives(0, &kept));
        assert!(tagging.survives(32, &kept));
        // Iteration 0 survives, iteration 1 does not.
        assert!(tagging.survives(1, &kept));
        assert!(!tagging.survives(5, &kept));
        let survivors = (0..tagging.tags.len())
            .filter(|&i| tagging.survives(i, &kept))
            .count();
        // mov + exit, iteration 0 (4 instructions) and the final iteration
        // 7 (3 instructions — its guarded back-branch never retires).
        assert_eq!(survivors, 2 + 4 + 3);
    }

    #[test]
    fn stats_aggregate() {
        let (p, trace) = traced(LOOP_SRC);
        let forest = p.cfg().loops(&p);
        let t1 = LoopTagging::analyze(&trace, &forest);
        let stats = LoopStats::aggregate(&[t1.clone(), t1]);
        assert_eq!(stats.max_iterations, 8);
        assert!((stats.loop_fraction - 31.0 / 33.0).abs() < 1e-12);
    }
}
