//! Stage 4 — bit-wise pruning (Section III-E).
//!
//! Not all destination bits need injection: sampling equally spaced bit
//! positions reproduces the outcome distribution (Figure 8 stabilizes at 16
//! of 32 bits), and the predicate registers' sign/carry/overflow flags are
//! architecturally inert in the evaluated kernels (only the zero flag feeds
//! branch guards — Figure 7), so those bits are *known masked* and need no
//! runs at all.

use fsp_isa::{Dest, Instruction, Register};
use serde::{Deserialize, Serialize};

/// Policy for predicate (4-bit condition code) destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PredBitPolicy {
    /// Inject only the zero flag; account the other three flags as masked
    /// without running them (the paper's choice).
    #[default]
    ZeroFlagOnly,
    /// Inject all four flags.
    All,
}

/// Selection of bits for one write-back slot of one instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotSelection {
    /// Bit positions to inject, *relative to the slot* (ascending).
    pub bits: Vec<u32>,
    /// Extrapolation weight per injected bit (`slot_width / bits.len()`
    /// for sampled slots, 1 for exhaustive slots).
    pub weight_per_bit: f64,
    /// Slot bits accounted as masked without injection (predicate policy).
    pub assumed_masked_bits: u32,
}

/// Equally spaced bit-position sampler.
///
/// With `samples_per_32 = 8` a 32-bit register contributes positions
/// `{3, 7, 11, 15, 19, 23, 27, 31}` — two per byte-section, matching the
/// paper's example; `0` disables sampling (all bits kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSampler {
    /// Sampled bits per 32-bit register; narrower registers scale down
    /// proportionally. `0` = exhaustive.
    pub samples_per_32: u32,
    /// Predicate policy.
    pub pred_policy: PredBitPolicy,
}

impl Default for BitSampler {
    fn default() -> Self {
        // Figure 8: percentages stabilize at 16 sampled bits.
        BitSampler {
            samples_per_32: 16,
            pred_policy: PredBitPolicy::ZeroFlagOnly,
        }
    }
}

impl BitSampler {
    /// An exhaustive sampler (no bit-wise pruning).
    #[must_use]
    pub fn exhaustive() -> Self {
        BitSampler {
            samples_per_32: 0,
            pred_policy: PredBitPolicy::All,
        }
    }

    /// Equally spaced positions for a register of `width` bits.
    #[must_use]
    pub fn positions(&self, width: u32) -> Vec<u32> {
        if self.samples_per_32 == 0 || self.samples_per_32 >= width {
            return (0..width).collect();
        }
        // Scale the per-32 budget to the width, keep spacing equal, anchor
        // at the top of each section (..., 2*step-1, width-1).
        let n = (self.samples_per_32 * width / 32).max(1);
        let step = width / n;
        (1..=n).map(|i| i * step - 1).collect()
    }

    /// Bit selection for one destination slot of `instr`.
    #[must_use]
    pub fn select_slot(&self, instr: &Instruction, reg: Register) -> SlotSelection {
        self.select_slot_masked(instr, reg, 0)
    }

    /// Bit selection for one destination slot of `instr`, excluding the
    /// bits of `dead_mask` (statically un-ACE positions, Stage 0): dead
    /// bits are never injected and are accounted in `assumed_masked_bits`;
    /// sampling and weights cover only the surviving bits. With
    /// `dead_mask == 0` this is exactly [`BitSampler::select_slot`].
    #[must_use]
    pub fn select_slot_masked(
        &self,
        instr: &Instruction,
        reg: Register,
        dead_mask: u32,
    ) -> SlotSelection {
        let width = instr.register_dest_bits(reg);
        let width_mask = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        let dead = dead_mask & width_mask;
        if matches!(reg, Register::Pred(_)) {
            return match self.pred_policy {
                // The policy already assumes sign/carry/overflow masked; a
                // statically-dead zero flag removes the last injected bit.
                PredBitPolicy::ZeroFlagOnly if dead & 1 != 0 => SlotSelection {
                    bits: Vec::new(),
                    weight_per_bit: 1.0,
                    assumed_masked_bits: width,
                },
                PredBitPolicy::ZeroFlagOnly => SlotSelection {
                    bits: vec![0],
                    weight_per_bit: 1.0,
                    assumed_masked_bits: width.saturating_sub(1),
                },
                PredBitPolicy::All => SlotSelection {
                    bits: (0..width).filter(|b| dead & (1 << b) == 0).collect(),
                    weight_per_bit: 1.0,
                    assumed_masked_bits: dead.count_ones(),
                },
            };
        }
        let survivors: Vec<u32> = (0..width).filter(|b| dead & (1 << b) == 0).collect();
        if survivors.is_empty() {
            return SlotSelection {
                bits: Vec::new(),
                weight_per_bit: 1.0,
                assumed_masked_bits: width,
            };
        }
        // Scale the per-32 budget by the *architectural* width (sampling
        // density is a property of the register), then sample equally
        // spaced positions from the surviving bits only.
        let count = survivors.len() as u32;
        let n = if self.samples_per_32 == 0 {
            count
        } else {
            (self.samples_per_32 * width / 32).clamp(1, count)
        };
        let bits: Vec<u32> = if n == count {
            survivors
        } else {
            let step = count / n;
            (1..=n)
                .map(|i| survivors[(i * step - 1) as usize])
                .collect()
        };
        let weight_per_bit = f64::from(count) / bits.len() as f64;
        SlotSelection {
            bits,
            weight_per_bit,
            assumed_masked_bits: dead.count_ones(),
        }
    }

    /// Bit selections for every register destination slot of `instr`, in
    /// write-back order, with slot-relative positions already offset into
    /// the instruction's flat bit index space.
    #[must_use]
    pub fn select_instruction(&self, instr: &Instruction) -> Vec<SlotSelection> {
        self.select_instruction_masked(instr, &[])
    }

    /// Like [`BitSampler::select_instruction`], but excluding per-slot
    /// statically-dead bits. `dead_masks` is aligned with the instruction's
    /// non-discard register destination slots (missing entries mean no dead
    /// bits — the empty slice reproduces the unmasked selection).
    #[must_use]
    pub fn select_instruction_masked(
        &self,
        instr: &Instruction,
        dead_masks: &[u32],
    ) -> Vec<SlotSelection> {
        let mut selections = Vec::new();
        let mut offset = 0u32;
        let mut slot = 0usize;
        for dest in instr.dests() {
            let Dest::Reg(reg) = dest else { continue };
            if reg.is_discard() {
                continue;
            }
            let dead = dead_masks.get(slot).copied().unwrap_or(0);
            slot += 1;
            let mut sel = self.select_slot_masked(instr, *reg, dead);
            for b in &mut sel.bits {
                *b += offset;
            }
            offset += instr.register_dest_bits(*reg);
            selections.push(sel);
        }
        selections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    #[test]
    fn paper_example_positions() {
        let s = BitSampler {
            samples_per_32: 8,
            pred_policy: PredBitPolicy::ZeroFlagOnly,
        };
        assert_eq!(s.positions(32), vec![3, 7, 11, 15, 19, 23, 27, 31]);
        let s16 = BitSampler {
            samples_per_32: 16,
            pred_policy: PredBitPolicy::ZeroFlagOnly,
        };
        assert_eq!(
            s16.positions(32),
            (0..16).map(|i| 2 * i + 1).collect::<Vec<_>>()
        );
        let s4 = BitSampler {
            samples_per_32: 4,
            pred_policy: PredBitPolicy::ZeroFlagOnly,
        };
        assert_eq!(s4.positions(32), vec![7, 15, 23, 31]);
    }

    #[test]
    fn exhaustive_keeps_all() {
        let s = BitSampler::exhaustive();
        assert_eq!(s.positions(32).len(), 32);
        assert_eq!(s.positions(16).len(), 16);
    }

    #[test]
    fn narrow_registers_scale() {
        let s = BitSampler {
            samples_per_32: 8,
            pred_policy: PredBitPolicy::ZeroFlagOnly,
        };
        // 16-bit register gets 4 samples.
        assert_eq!(s.positions(16), vec![3, 7, 11, 15]);
    }

    #[test]
    fn weights_conserve_width() {
        for spb in [4, 8, 16] {
            let s = BitSampler {
                samples_per_32: spb,
                pred_policy: PredBitPolicy::All,
            };
            for width in [16u32, 32] {
                let bits = s.positions(width);
                let w = f64::from(width) / bits.len() as f64;
                assert!((w * bits.len() as f64 - f64::from(width)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pred_zero_flag_policy() {
        let p = assemble("t", "set.eq.u32.u32 $p0/$r1, $r2, $r3\nexit").unwrap();
        let instr = p.instr(0);
        let s = BitSampler::default();
        let sels = s.select_instruction(instr);
        assert_eq!(sels.len(), 2);
        // Predicate slot: only bit 0, 3 bits assumed masked.
        assert_eq!(sels[0].bits, vec![0]);
        assert_eq!(sels[0].assumed_masked_bits, 3);
        // GPR slot offsets start at 4 (after the predicate's width).
        assert_eq!(sels[1].bits.len(), 16);
        assert_eq!(sels[1].bits[0], 4 + 1);
        assert!((sels[1].weight_per_bit - 2.0).abs() < 1e-12);
    }

    #[test]
    fn masked_selection_skips_dead_bits() {
        let p = assemble("t", "and.b32 $r1, $r2, 0xFF\nexit").unwrap();
        let instr = p.instr(0);
        let s = BitSampler::exhaustive();
        // High 24 bits statically dead: only the low byte is injected and
        // the dead bits are assumed masked.
        let sels = s.select_instruction_masked(instr, &[!0xFFu32]);
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].bits, (0..8).collect::<Vec<_>>());
        assert!((sels[0].weight_per_bit - 1.0).abs() < 1e-12);
        assert_eq!(sels[0].assumed_masked_bits, 24);
    }

    #[test]
    fn masked_selection_samples_survivors_evenly() {
        let p = assemble("t", "mov.u32 $r1, $r2\nexit").unwrap();
        let instr = p.instr(0);
        let s = BitSampler {
            samples_per_32: 4,
            pred_policy: PredBitPolicy::All,
        };
        // 16 surviving bits (low half), budget 4 -> every 4th survivor.
        let sels = s.select_instruction_masked(instr, &[0xFFFF_0000]);
        assert_eq!(sels[0].bits, vec![3, 7, 11, 15]);
        assert!((sels[0].weight_per_bit - 4.0).abs() < 1e-12);
        assert_eq!(sels[0].assumed_masked_bits, 16);
    }

    #[test]
    fn masked_selection_conserves_slot_width() {
        let p = assemble("t", "set.lt.s32.s32 $p0/$r1, $r2, $r3\nexit").unwrap();
        let instr = p.instr(0);
        for spb in [0u32, 4, 8, 16] {
            for policy in [PredBitPolicy::ZeroFlagOnly, PredBitPolicy::All] {
                let s = BitSampler {
                    samples_per_32: spb,
                    pred_policy: policy,
                };
                for dead in [[0u32, 0], [0b1101, 0xFFFF_0000], [0b1111, u32::MAX]] {
                    let sels = s.select_instruction_masked(instr, &dead);
                    let total: f64 = sels
                        .iter()
                        .map(|sel| {
                            sel.weight_per_bit * sel.bits.len() as f64
                                + f64::from(sel.assumed_masked_bits)
                        })
                        .sum();
                    assert!(
                        (total - f64::from(instr.dest_bits())).abs() < 1e-12,
                        "spb={spb} policy={policy:?} dead={dead:?}: {total}"
                    );
                }
            }
        }
    }

    #[test]
    fn fully_dead_slot_yields_no_injections() {
        let p = assemble("t", "mov.u32 $r1, $r2\nexit").unwrap();
        let sels = BitSampler::default().select_instruction_masked(p.instr(0), &[u32::MAX]);
        assert!(sels[0].bits.is_empty());
        assert_eq!(sels[0].assumed_masked_bits, 32);
    }

    #[test]
    fn empty_masks_match_unmasked_selection() {
        let p = assemble("t", "set.eq.u32.u32 $p0/$r1, $r2, $r3\nexit").unwrap();
        let instr = p.instr(0);
        let s = BitSampler::default();
        assert_eq!(
            s.select_instruction(instr),
            s.select_instruction_masked(instr, &[])
        );
        assert_eq!(
            s.select_instruction(instr),
            s.select_instruction_masked(instr, &[0, 0])
        );
    }

    #[test]
    fn discard_slots_skipped() {
        let p = assemble("t", "set.eq.u32.u32 $p0/$o127, $r2, $r3\nexit").unwrap();
        let sels = BitSampler::default().select_instruction(p.instr(0));
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].bits, vec![0]);
    }
}
