//! Stage 4 — bit-wise pruning (Section III-E).
//!
//! Not all destination bits need injection: sampling equally spaced bit
//! positions reproduces the outcome distribution (Figure 8 stabilizes at 16
//! of 32 bits), and the predicate registers' sign/carry/overflow flags are
//! architecturally inert in the evaluated kernels (only the zero flag feeds
//! branch guards — Figure 7), so those bits are *known masked* and need no
//! runs at all.

use fsp_isa::{Dest, Instruction, Register};
use serde::{Deserialize, Serialize};

/// Policy for predicate (4-bit condition code) destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PredBitPolicy {
    /// Inject only the zero flag; account the other three flags as masked
    /// without running them (the paper's choice).
    #[default]
    ZeroFlagOnly,
    /// Inject all four flags.
    All,
}

/// Selection of bits for one write-back slot of one instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotSelection {
    /// Bit positions to inject, *relative to the slot* (ascending).
    pub bits: Vec<u32>,
    /// Extrapolation weight per injected bit (`slot_width / bits.len()`
    /// for sampled slots, 1 for exhaustive slots).
    pub weight_per_bit: f64,
    /// Slot bits accounted as masked without injection (predicate policy).
    pub assumed_masked_bits: u32,
}

/// Equally spaced bit-position sampler.
///
/// With `samples_per_32 = 8` a 32-bit register contributes positions
/// `{3, 7, 11, 15, 19, 23, 27, 31}` — two per byte-section, matching the
/// paper's example; `0` disables sampling (all bits kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSampler {
    /// Sampled bits per 32-bit register; narrower registers scale down
    /// proportionally. `0` = exhaustive.
    pub samples_per_32: u32,
    /// Predicate policy.
    pub pred_policy: PredBitPolicy,
}

impl Default for BitSampler {
    fn default() -> Self {
        // Figure 8: percentages stabilize at 16 sampled bits.
        BitSampler { samples_per_32: 16, pred_policy: PredBitPolicy::ZeroFlagOnly }
    }
}

impl BitSampler {
    /// An exhaustive sampler (no bit-wise pruning).
    #[must_use]
    pub fn exhaustive() -> Self {
        BitSampler { samples_per_32: 0, pred_policy: PredBitPolicy::All }
    }

    /// Equally spaced positions for a register of `width` bits.
    #[must_use]
    pub fn positions(&self, width: u32) -> Vec<u32> {
        if self.samples_per_32 == 0 || self.samples_per_32 >= width {
            return (0..width).collect();
        }
        // Scale the per-32 budget to the width, keep spacing equal, anchor
        // at the top of each section (..., 2*step-1, width-1).
        let n = (self.samples_per_32 * width / 32).max(1);
        let step = width / n;
        (1..=n).map(|i| i * step - 1).collect()
    }

    /// Bit selection for one destination slot of `instr`.
    #[must_use]
    pub fn select_slot(&self, instr: &Instruction, reg: Register) -> SlotSelection {
        let width = instr.register_dest_bits(reg);
        if matches!(reg, Register::Pred(_)) {
            return match self.pred_policy {
                PredBitPolicy::ZeroFlagOnly => SlotSelection {
                    bits: vec![0],
                    weight_per_bit: 1.0,
                    assumed_masked_bits: width.saturating_sub(1),
                },
                PredBitPolicy::All => SlotSelection {
                    bits: (0..width).collect(),
                    weight_per_bit: 1.0,
                    assumed_masked_bits: 0,
                },
            };
        }
        let bits = self.positions(width);
        let weight_per_bit = f64::from(width) / bits.len() as f64;
        SlotSelection { bits, weight_per_bit, assumed_masked_bits: 0 }
    }

    /// Bit selections for every register destination slot of `instr`, in
    /// write-back order, with slot-relative positions already offset into
    /// the instruction's flat bit index space.
    #[must_use]
    pub fn select_instruction(&self, instr: &Instruction) -> Vec<SlotSelection> {
        let mut selections = Vec::new();
        let mut offset = 0u32;
        for dest in instr.dests() {
            let Dest::Reg(reg) = dest else { continue };
            if reg.is_discard() {
                continue;
            }
            let mut sel = self.select_slot(instr, *reg);
            for b in &mut sel.bits {
                *b += offset;
            }
            offset += instr.register_dest_bits(*reg);
            selections.push(sel);
        }
        selections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    #[test]
    fn paper_example_positions() {
        let s = BitSampler { samples_per_32: 8, pred_policy: PredBitPolicy::ZeroFlagOnly };
        assert_eq!(s.positions(32), vec![3, 7, 11, 15, 19, 23, 27, 31]);
        let s16 = BitSampler { samples_per_32: 16, pred_policy: PredBitPolicy::ZeroFlagOnly };
        assert_eq!(
            s16.positions(32),
            (0..16).map(|i| 2 * i + 1).collect::<Vec<_>>()
        );
        let s4 = BitSampler { samples_per_32: 4, pred_policy: PredBitPolicy::ZeroFlagOnly };
        assert_eq!(s4.positions(32), vec![7, 15, 23, 31]);
    }

    #[test]
    fn exhaustive_keeps_all() {
        let s = BitSampler::exhaustive();
        assert_eq!(s.positions(32).len(), 32);
        assert_eq!(s.positions(16).len(), 16);
    }

    #[test]
    fn narrow_registers_scale() {
        let s = BitSampler { samples_per_32: 8, pred_policy: PredBitPolicy::ZeroFlagOnly };
        // 16-bit register gets 4 samples.
        assert_eq!(s.positions(16), vec![3, 7, 11, 15]);
    }

    #[test]
    fn weights_conserve_width() {
        for spb in [4, 8, 16] {
            let s = BitSampler { samples_per_32: spb, pred_policy: PredBitPolicy::All };
            for width in [16u32, 32] {
                let bits = s.positions(width);
                let w = f64::from(width) / bits.len() as f64;
                assert!((w * bits.len() as f64 - f64::from(width)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pred_zero_flag_policy() {
        let p = assemble("t", "set.eq.u32.u32 $p0/$r1, $r2, $r3\nexit").unwrap();
        let instr = p.instr(0);
        let s = BitSampler::default();
        let sels = s.select_instruction(instr);
        assert_eq!(sels.len(), 2);
        // Predicate slot: only bit 0, 3 bits assumed masked.
        assert_eq!(sels[0].bits, vec![0]);
        assert_eq!(sels[0].assumed_masked_bits, 3);
        // GPR slot offsets start at 4 (after the predicate's width).
        assert_eq!(sels[1].bits.len(), 16);
        assert_eq!(sels[1].bits[0], 4 + 1);
        assert!((sels[1].weight_per_bit - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discard_slots_skipped() {
        let p = assemble("t", "set.eq.u32.u32 $p0/$o127, $r2, $r3\nexit").unwrap();
        let sels = BitSampler::default().select_instruction(p.instr(0));
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].bits, vec![0]);
    }
}
