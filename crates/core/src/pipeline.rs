//! The progressive pruning pipeline (Section III, Figure 1), extended with
//! a static Stage 0 (ACE analysis, see [`fsp_analyze::ace`]).

use fsp_analyze::{AceSummary, StaticAceReport};
use fsp_inject::{Experiment, FaultSite, InjectionTarget, SiteSpace, WeightedSite};
use fsp_isa::KernelProgram;
use fsp_sim::{KernelTrace, SimFault};
use fsp_stats::{Outcome, ResilienceProfile};
use serde::{Deserialize, Serialize};

use crate::bits::BitSampler;
use crate::commonality::{Commonality, CommonalityConfig, RepRole};
use crate::grouping::{CtaKey, ThreadGrouping};
use crate::loops::{LoopStats, LoopTagging};

/// Configuration of the four pruning stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Stage 0: static ACE pruning. Destination bits the dataflow analysis
    /// proves can never reach kernel output are accounted masked without
    /// injection, before any dynamic stage runs.
    pub static_ace: bool,
    /// CTA classifier for thread-wise pruning.
    pub cta_key: CtaKey,
    /// Instruction-wise pruning; `None` disables the stage.
    pub commonality: Option<CommonalityConfig>,
    /// Loop iterations sampled per loop; `0` disables the stage. The paper
    /// needs 3–15 across kernels, averaging 7.22.
    pub loop_samples: usize,
    /// Seed for the loop-iteration sampler.
    pub loop_seed: u64,
    /// Bit-position sampler.
    pub bits: BitSampler,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig {
            static_ace: true,
            cta_key: CtaKey::MeanIcnt,
            commonality: Some(CommonalityConfig::default()),
            loop_samples: 7,
            loop_seed: 0x5EED,
            bits: BitSampler::default(),
        }
    }
}

impl PruningConfig {
    /// A configuration with every stage other than thread-wise pruning
    /// disabled (used by ablations and by the stage-by-stage accounting of
    /// Fig. 10): no static ACE filtering, no commonality, no loop sampling,
    /// exhaustive bits.
    #[must_use]
    pub fn thread_wise_only() -> Self {
        PruningConfig {
            static_ace: false,
            cta_key: CtaKey::MeanIcnt,
            commonality: None,
            loop_samples: 0,
            loop_seed: 0,
            bits: BitSampler::exhaustive(),
        }
    }
}

/// Fault sites remaining after each progressive stage (the bars of
/// Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounts {
    /// Equation (1): the exhaustive population.
    pub exhaustive: u64,
    /// After static ACE pruning (Stage 0); equals `exhaustive` when the
    /// stage is disabled. Estimated over the whole population by weighting
    /// each representative's statically-dead bits.
    pub after_static: u64,
    /// After thread-wise pruning (statically-dead bits of the
    /// representatives excluded when Stage 0 is enabled).
    pub after_thread: u64,
    /// After instruction-wise pruning.
    pub after_instruction: u64,
    /// After loop-wise pruning.
    pub after_loop: u64,
    /// After bit-wise pruning — the number of injection runs actually
    /// performed.
    pub after_bit: u64,
}

impl StageCounts {
    /// Orders of magnitude of total reduction.
    #[must_use]
    pub fn reduction_orders(&self) -> f64 {
        if self.after_bit == 0 {
            0.0
        } else {
            (self.exhaustive as f64 / self.after_bit as f64).log10()
        }
    }
}

/// The pruned campaign: weighted sites plus the bits accounted masked
/// without injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningPlan {
    /// Sites to inject, with extrapolation weights.
    pub sites: Vec<WeightedSite>,
    /// Exhaustive-site weight declared masked without running (inert
    /// predicate flag bits).
    pub assumed_masked_weight: f64,
    /// Per-stage accounting.
    pub stages: StageCounts,
    /// The thread grouping behind stage 1.
    pub grouping: ThreadGrouping,
    /// The commonality analysis behind stage 2 (when enabled and >1 rep).
    pub commonality: Option<Commonality>,
    /// Loop statistics of the representative threads (Table VII).
    pub loop_stats: LoopStats,
    /// Static ACE summary behind Stage 0 (when enabled).
    pub static_ace: Option<AceSummary>,
}

impl PruningPlan {
    /// Total exhaustive weight accounted by the plan: injected weights plus
    /// assumed-masked weight. Equals `stages.exhaustive` by construction
    /// (weight conservation).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.sites.iter().map(|s| s.weight).sum::<f64>() + self.assumed_masked_weight
    }
}

/// The four-stage progressive pruner.
#[derive(Debug, Clone, Copy, Default)]
pub struct PruningPipeline {
    config: PruningConfig,
}

impl PruningPipeline {
    /// Creates a pipeline with the given configuration.
    #[must_use]
    pub fn new(config: PruningConfig) -> Self {
        PruningPipeline { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Plans a pruned campaign for a prepared experiment: traces the
    /// fault-free run (summary pass to group threads, full pass for the
    /// representatives) and builds the plan.
    ///
    /// # Errors
    ///
    /// Propagates a [`SimFault`] from the tracing runs (a workload bug).
    pub fn plan_for<T: InjectionTarget>(
        &self,
        experiment: &Experiment<'_, T>,
    ) -> Result<PruningPlan, SimFault> {
        // Pass 1: summaries only, to find the representatives.
        let summary = experiment.site_space(std::iter::empty());
        let grouping = ThreadGrouping::analyze_with(summary.trace(), self.config.cta_key);
        let reps: Vec<u32> = grouping
            .representatives(summary.trace())
            .iter()
            .map(|r| r.tid)
            .collect();
        // Pass 2: full traces for the representatives.
        let full = experiment.site_space(reps);
        let program = experiment.target().launch();
        Ok(self.plan(program.program(), full.trace()))
    }

    /// Builds a plan from a program and a trace that contains full traces
    /// for every representative thread.
    ///
    /// # Panics
    ///
    /// Panics if a representative thread lacks a full trace.
    #[must_use]
    pub fn plan(&self, program: &KernelProgram, trace: &KernelTrace) -> PruningPlan {
        let grouping = ThreadGrouping::analyze_with(trace, self.config.cta_key);
        let reps = grouping.representatives(trace);
        let exhaustive = trace.total_fault_sites();

        let rep_traces: Vec<&fsp_sim::ThreadTrace> = reps
            .iter()
            .map(|r| {
                trace
                    .full
                    .get(&r.tid)
                    .unwrap_or_else(|| panic!("representative {} lacks a full trace", r.tid))
            })
            .collect();

        // Stage 0: static ACE pruning. Statically-dead destination bits are
        // excluded from every downstream stage count and never injected
        // (stage 4 folds their weight into the assumed-masked total).
        let static_report = if self.config.static_ace {
            Some(StaticAceReport::analyze(program))
        } else {
            None
        };
        let dead_at = |pc: u32| -> u64 {
            static_report
                .as_ref()
                .map_or(0, |r| u64::from(r.dead_bits_at(pc as usize)))
        };
        let rep_dead: Vec<u64> = rep_traces
            .iter()
            .map(|t| t.entries.iter().map(|e| dead_at(e.pc)).sum())
            .collect();
        let after_thread: u64 = reps
            .iter()
            .zip(&rep_dead)
            .map(|(r, &d)| r.own_sites - d)
            .sum();
        // Whole-population estimate: each representative's dead bits stand
        // for its covered threads, exactly like its injected sites do.
        let after_static = if static_report.is_some() {
            let live: f64 = reps
                .iter()
                .zip(&rep_dead)
                .map(|(r, &d)| r.site_weight() * (r.own_sites - d) as f64)
                .sum();
            (live.round() as u64).clamp(after_thread, exhaustive)
        } else {
            exhaustive
        };

        // Per-representative, per-dynamic-instruction site weight. `None`
        // marks a pruned instruction.
        let mut weights: Vec<Vec<Option<f64>>> = reps
            .iter()
            .zip(&rep_traces)
            .map(|(r, t)| vec![Some(r.site_weight()); t.entries.len()])
            .collect();

        // Stage 2: instruction-wise pruning.
        let commonality = match &self.config.commonality {
            Some(cfg) if reps.len() > 1 => Some(Commonality::analyze(&rep_traces, cfg)),
            _ => None,
        };
        if let Some(c) = &commonality {
            for (rep_idx, role) in c.roles.iter().enumerate() {
                let RepRole::Pruned { matches } = role else {
                    continue;
                };
                let scale = reps[rep_idx].site_weight();
                for &(own, reference) in matches {
                    // Move this instruction's weight onto its reference
                    // partner (same pc and width, so per-site addition is
                    // exact).
                    weights[rep_idx][own as usize] = None;
                    if let Some(w) = &mut weights[c.reference][reference as usize] {
                        *w += scale;
                    }
                }
            }
        }
        let count_bits = |weights: &[Vec<Option<f64>>]| -> u64 {
            weights
                .iter()
                .zip(&rep_traces)
                .map(|(ws, t)| {
                    ws.iter()
                        .zip(&t.entries)
                        .filter(|(w, _)| w.is_some())
                        .map(|(_, e)| u64::from(e.dest_bits) - dead_at(e.pc))
                        .sum::<u64>()
                })
                .sum()
        };
        let after_instruction = count_bits(&weights);

        // Stage 3: loop-wise pruning.
        let forest = program.cfg().loops(program);
        let taggings: Vec<LoopTagging> = rep_traces
            .iter()
            .map(|t| LoopTagging::analyze(t, &forest))
            .collect();
        let loop_stats = LoopStats::aggregate(&taggings);
        if self.config.loop_samples > 0 && !forest.is_empty() {
            for (rep_idx, tagging) in taggings.iter().enumerate() {
                let kept = tagging.sample_iterations(
                    self.config.loop_samples,
                    self.config.loop_seed.wrapping_add(rep_idx as u64),
                );
                // Weighted-bit totals per loop, over instructions that
                // survived stage 2.
                let n_loops = tagging.trip_counts.len();
                let mut total_wb = vec![0.0f64; n_loops];
                let mut sampled_wb = vec![0.0f64; n_loops];
                for (i, tag) in tagging.tags.iter().enumerate() {
                    let (Some(tag), Some(w)) = (tag, weights[rep_idx][i]) else {
                        continue;
                    };
                    let wb = w * f64::from(rep_traces[rep_idx].entries[i].dest_bits);
                    total_wb[tag.loop_id as usize] += wb;
                    if tagging.survives(i, &kept) {
                        sampled_wb[tag.loop_id as usize] += wb;
                    }
                }
                for (i, tag) in tagging.tags.iter().enumerate() {
                    let Some(tag) = tag else { continue };
                    if weights[rep_idx][i].is_none() {
                        continue;
                    }
                    let l = tag.loop_id as usize;
                    if sampled_wb[l] == 0.0 {
                        // Degenerate selection: keep the loop unpruned.
                        continue;
                    }
                    if tagging.survives(i, &kept) {
                        let scale = total_wb[l] / sampled_wb[l];
                        if let Some(w) = &mut weights[rep_idx][i] {
                            *w *= scale;
                        }
                    } else {
                        weights[rep_idx][i] = None;
                    }
                }
            }
        }
        let after_loop = count_bits(&weights);

        // Stage 4: bit-wise pruning.
        let mut sites = Vec::new();
        let mut assumed_masked_weight = 0.0f64;
        for (rep_idx, rep) in reps.iter().enumerate() {
            for (i, entry) in rep_traces[rep_idx].entries.iter().enumerate() {
                let Some(w) = weights[rep_idx][i] else {
                    continue;
                };
                let instr = program.instr(entry.pc as usize);
                let dead_masks = static_report
                    .as_ref()
                    .map(|r| r.slot_dead_masks(entry.pc as usize))
                    .unwrap_or_default();
                for sel in self
                    .config
                    .bits
                    .select_instruction_masked(instr, &dead_masks)
                {
                    assumed_masked_weight += w * f64::from(sel.assumed_masked_bits);
                    for &bit in &sel.bits {
                        sites.push(WeightedSite {
                            site: FaultSite {
                                tid: rep.tid,
                                dyn_idx: i as u32,
                                bit,
                            },
                            weight: w * sel.weight_per_bit,
                        });
                    }
                }
            }
        }
        let stages = StageCounts {
            exhaustive,
            after_static,
            after_thread,
            after_instruction,
            after_loop,
            after_bit: sites.len() as u64,
        };
        let plan = PruningPlan {
            sites,
            assumed_masked_weight,
            stages,
            grouping,
            commonality,
            loop_stats,
            static_ace: static_report.as_ref().map(StaticAceReport::summary),
        };
        debug_assert!(
            (plan.total_weight() - exhaustive as f64).abs() <= 1e-6 * (exhaustive as f64).max(1.0),
            "weight conservation violated: {} vs {}",
            plan.total_weight(),
            exhaustive,
        );
        plan
    }

    /// Runs the plan as an injection campaign and returns the extrapolated
    /// resilience profile.
    #[must_use]
    pub fn run<T: InjectionTarget>(
        &self,
        experiment: &Experiment<'_, T>,
        plan: &PruningPlan,
        workers: usize,
    ) -> ResilienceProfile {
        let mut profile = experiment.run_campaign(&plan.sites, workers).profile;
        profile.record_weighted(Outcome::Masked, plan.assumed_masked_weight);
        profile
    }
}

/// Runs the paper's statistical baseline: `n` uniformly sampled sites from
/// the exhaustive population (Section II-D).
#[must_use]
pub fn run_baseline<T: InjectionTarget>(
    experiment: &Experiment<'_, T>,
    space: &SiteSpace,
    n: usize,
    seed: u64,
    workers: usize,
) -> ResilienceProfile {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let sites: Vec<WeightedSite> = space
        .sample_many(n, &mut rng)
        .into_iter()
        .map(WeightedSite::from)
        .collect();
    experiment.run_campaign(&sites, workers).profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::testing::CountdownTarget;

    fn plan_with(config: PruningConfig) -> (PruningPlan, ResilienceProfile, ResilienceProfile) {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let pipeline = PruningPipeline::new(config);
        let plan = pipeline.plan_for(&experiment).unwrap();
        let pruned = pipeline.run(&experiment, &plan, 4);
        // Exhaustive ground truth over the full site space.
        let space = experiment.site_space(0..CountdownTarget::THREADS);
        let all: Vec<WeightedSite> = (0..space.total_sites())
            .map(|i| WeightedSite::from(space.site_at(i)))
            .collect();
        let truth = experiment.run_campaign(&all, 4).profile;
        (plan, pruned, truth)
    }

    #[test]
    fn weight_conservation() {
        let (plan, _, _) = plan_with(PruningConfig::default());
        assert!(
            (plan.total_weight() - plan.stages.exhaustive as f64).abs() < 1e-6,
            "total weight {} != exhaustive {}",
            plan.total_weight(),
            plan.stages.exhaustive
        );
    }

    #[test]
    fn stages_monotonically_shrink() {
        let (plan, _, _) = plan_with(PruningConfig::default());
        let s = plan.stages;
        assert!(s.after_static <= s.exhaustive);
        assert!(s.after_thread <= s.after_static);
        assert!(s.after_instruction <= s.after_thread);
        assert!(s.after_loop <= s.after_instruction);
        assert!(s.after_bit <= s.after_loop);
        assert!(s.after_bit > 0);
    }

    #[test]
    fn static_stage_preserves_accuracy() {
        // Exhaustive bit sampling isolates Stage 0: the two runs then
        // inject the *same* sites except for the statically-dead bits.
        let base = PruningConfig {
            bits: BitSampler::exhaustive(),
            ..PruningConfig::default()
        };
        let with = plan_with(PruningConfig {
            static_ace: true,
            ..base
        });
        let without = plan_with(PruningConfig {
            static_ace: false,
            ..base
        });
        assert!(with.0.static_ace.is_some());
        assert!(without.0.static_ace.is_none());
        assert_eq!(without.0.stages.after_static, without.0.stages.exhaustive);
        assert!(with.0.stages.after_bit <= without.0.stages.after_bit);
        // Dropping statically-dead bits must not move the profile: they
        // classify Masked under injection, which is exactly how Stage 0
        // accounts them.
        let diff = with.1.max_abs_diff(&without.1);
        assert!(
            diff < 1e-9,
            "static stage changed the profile by {diff:.4}%"
        );
    }

    #[test]
    fn pruned_profile_tracks_exhaustive_truth() {
        let (plan, pruned, truth) = plan_with(PruningConfig::default());
        // The 4 countdown threads all have distinct iCnt, so thread-wise
        // pruning keeps all 4; the remaining stages sample. The pruned
        // profile must stay close to ground truth.
        assert!(plan.stages.after_bit < plan.stages.exhaustive);
        let diff = pruned.max_abs_diff(&truth);
        assert!(
            diff < 12.0,
            "pruned {pruned} deviates from truth {truth} by {diff:.2}%"
        );
    }

    #[test]
    fn thread_wise_only_is_exact_per_rep() {
        let (plan, pruned, truth) = plan_with(PruningConfig::thread_wise_only());
        assert_eq!(plan.stages.after_bit, plan.stages.after_thread);
        assert_eq!(plan.assumed_masked_weight, 0.0);
        // All four threads are their own representatives here, so the
        // "pruned" campaign IS the exhaustive campaign.
        assert!(pruned.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn baseline_sampler_is_seeded() {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let space = experiment.site_space(0..CountdownTarget::THREADS);
        let a = run_baseline(&experiment, &space, 64, 9, 2);
        let b = run_baseline(&experiment, &space, 64, 9, 4);
        assert_eq!(a.percentages(), b.percentages());
    }
}
