//! The progressive pruning pipeline (Section III, Figure 1), extended with
//! a static Stage 0 (ACE analysis, see [`fsp_analyze::ace`]).

use fsp_analyze::{AbsContext, AceSummary, ClassifyReport, ClassifySummary, StaticAceReport};
use fsp_inject::{Experiment, FaultSite, InjectionTarget, SiteSpace, WeightedSite};
use fsp_isa::KernelProgram;
use fsp_sim::{KernelTrace, SimFault, LOCAL_WORDS};
use fsp_stats::{Outcome, ResilienceProfile};
use serde::{Deserialize, Serialize};

use crate::bits::BitSampler;
use crate::commonality::{Commonality, CommonalityConfig, RepRole};
use crate::grouping::{CtaKey, ThreadGrouping};
use crate::loops::{LoopStats, LoopTagging};

/// Configuration of the four pruning stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Stage 0: static ACE pruning. Destination bits the dataflow analysis
    /// proves can never reach kernel output are accounted masked without
    /// injection, before any dynamic stage runs.
    pub static_ace: bool,
    /// Abstract-interpretation classification (see [`fsp_analyze::absint`]):
    /// bits whose flip provably crashes or traps are recorded as predicted
    /// DUEs without injection, and static equivalence classes inject one
    /// representative carrying the class weight. Requires launch context,
    /// so it only takes effect through [`PruningPipeline::plan_for`] or an
    /// explicit [`PruningPipeline::plan_classified`] call.
    #[serde(default = "default_true")]
    pub absint: bool,
    /// CTA classifier for thread-wise pruning.
    pub cta_key: CtaKey,
    /// Instruction-wise pruning; `None` disables the stage.
    pub commonality: Option<CommonalityConfig>,
    /// Loop iterations sampled per loop; `0` disables the stage. The paper
    /// needs 3–15 across kernels, averaging 7.22.
    pub loop_samples: usize,
    /// Seed for the loop-iteration sampler.
    pub loop_seed: u64,
    /// Bit-position sampler.
    pub bits: BitSampler,
}

fn default_true() -> bool {
    true
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig {
            static_ace: true,
            absint: default_true(),
            cta_key: CtaKey::MeanIcnt,
            commonality: Some(CommonalityConfig::default()),
            loop_samples: 7,
            loop_seed: 0x5EED,
            bits: BitSampler::default(),
        }
    }
}

impl PruningConfig {
    /// A configuration with every stage other than thread-wise pruning
    /// disabled (used by ablations and by the stage-by-stage accounting of
    /// Fig. 10): no static ACE filtering, no commonality, no loop sampling,
    /// exhaustive bits.
    #[must_use]
    pub fn thread_wise_only() -> Self {
        PruningConfig {
            static_ace: false,
            absint: false,
            cta_key: CtaKey::MeanIcnt,
            commonality: None,
            loop_samples: 0,
            loop_seed: 0,
            bits: BitSampler::exhaustive(),
        }
    }
}

/// Fault sites remaining after each progressive stage (the bars of
/// Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounts {
    /// Equation (1): the exhaustive population.
    pub exhaustive: u64,
    /// After static ACE pruning (Stage 0); equals `exhaustive` when the
    /// stage is disabled. Estimated over the whole population by weighting
    /// each representative's statically-dead bits.
    pub after_static: u64,
    /// After the abstract-interpretation stage (predicted-DUE bits and
    /// equivalence-class members removed); equals `after_static` when the
    /// stage is disabled. Whole-population estimate like `after_static`.
    #[serde(default)]
    pub after_absint: u64,
    /// After thread-wise pruning (statically-dead bits of the
    /// representatives excluded when Stage 0 is enabled).
    pub after_thread: u64,
    /// After instruction-wise pruning.
    pub after_instruction: u64,
    /// After loop-wise pruning.
    pub after_loop: u64,
    /// After bit-wise pruning — the number of injection runs actually
    /// performed.
    pub after_bit: u64,
}

impl StageCounts {
    /// Orders of magnitude of total reduction.
    #[must_use]
    pub fn reduction_orders(&self) -> f64 {
        if self.after_bit == 0 {
            0.0
        } else {
            (self.exhaustive as f64 / self.after_bit as f64).log10()
        }
    }
}

/// The pruned campaign: weighted sites plus the bits accounted masked
/// without injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningPlan {
    /// Sites to inject, with extrapolation weights.
    pub sites: Vec<WeightedSite>,
    /// Exhaustive-site weight declared masked without running (inert
    /// predicate flag bits).
    pub assumed_masked_weight: f64,
    /// Per-stage accounting.
    pub stages: StageCounts,
    /// The thread grouping behind stage 1.
    pub grouping: ThreadGrouping,
    /// The commonality analysis behind stage 2 (when enabled and >1 rep).
    pub commonality: Option<Commonality>,
    /// Loop statistics of the representative threads (Table VII).
    pub loop_stats: LoopStats,
    /// Static ACE summary behind Stage 0 (when enabled).
    pub static_ace: Option<AceSummary>,
    /// Exhaustive-site weight statically predicted to crash (provable
    /// OOB / misaligned access under the flip) and skipped by injection.
    #[serde(default)]
    pub predicted_crash_weight: f64,
    /// Exhaustive-site weight statically predicted Detected (always-taken
    /// trap guard under the flip) and skipped by injection.
    #[serde(default)]
    pub predicted_detected_weight: f64,
    /// Weight of equivalence-class member bits folded onto their class
    /// representatives (injected once, extrapolated).
    #[serde(default)]
    pub class_redistributed_weight: f64,
    /// Abstract-interpretation classification summary (when enabled).
    #[serde(default)]
    pub classify: Option<ClassifySummary>,
}

impl PruningPlan {
    /// Total exhaustive weight accounted by the plan: injected weights
    /// (class-member weight rides on its representative's site) plus
    /// assumed-masked and predicted-DUE weight. Equals `stages.exhaustive`
    /// by construction (weight conservation).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.sites.iter().map(|s| s.weight).sum::<f64>()
            + self.assumed_masked_weight
            + self.predicted_crash_weight
            + self.predicted_detected_weight
    }

    /// Weight skipped by the abstract-interpretation stage (predicted DUEs
    /// plus class members), as a fraction of the exhaustive population.
    #[must_use]
    pub fn static_skip_fraction(&self) -> f64 {
        if self.stages.exhaustive == 0 {
            return 0.0;
        }
        (self.predicted_crash_weight
            + self.predicted_detected_weight
            + self.class_redistributed_weight)
            / self.stages.exhaustive as f64
    }
}

/// The four-stage progressive pruner.
#[derive(Debug, Clone, Copy, Default)]
pub struct PruningPipeline {
    config: PruningConfig,
}

impl PruningPipeline {
    /// Creates a pipeline with the given configuration.
    #[must_use]
    pub fn new(config: PruningConfig) -> Self {
        PruningPipeline { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PruningConfig {
        &self.config
    }

    /// Plans a pruned campaign for a prepared experiment: traces the
    /// fault-free run (summary pass to group threads, full pass for the
    /// representatives) and builds the plan.
    ///
    /// # Errors
    ///
    /// Propagates a [`SimFault`] from the tracing runs (a workload bug).
    pub fn plan_for<T: InjectionTarget>(
        &self,
        experiment: &Experiment<'_, T>,
    ) -> Result<PruningPlan, SimFault> {
        // Pass 1: summaries only, to find the representatives.
        let summary = experiment.site_space(std::iter::empty());
        let grouping = ThreadGrouping::analyze_with(summary.trace(), self.config.cta_key);
        let reps: Vec<u32> = grouping
            .representatives(summary.trace())
            .iter()
            .map(|r| r.tid)
            .collect();
        // Pass 2: full traces for the representatives.
        let full = experiment.site_space(reps);
        let launch = experiment.target().launch();
        let classify = if self.config.absint {
            let ctx = abs_context_for(experiment.target());
            Some(ClassifyReport::analyze(launch.program(), &ctx))
        } else {
            None
        };
        Ok(self.plan_classified(launch.program(), full.trace(), classify.as_ref()))
    }

    /// Builds a plan from a program and a trace that contains full traces
    /// for every representative thread, without the launch-context-aware
    /// abstract-interpretation stage (equivalent to
    /// [`PruningPipeline::plan_classified`] with no report).
    ///
    /// # Panics
    ///
    /// Panics if a representative thread lacks a full trace.
    #[must_use]
    pub fn plan(&self, program: &KernelProgram, trace: &KernelTrace) -> PruningPlan {
        self.plan_classified(program, trace, None)
    }

    /// Builds a plan from a program, a trace with full traces for every
    /// representative thread, and an optional abstract-interpretation
    /// classification (predicted-DUE sites are skipped and recorded as
    /// predicted weight; equivalence-class members fold their weight onto
    /// their representative's site).
    ///
    /// # Panics
    ///
    /// Panics if a representative thread lacks a full trace.
    #[must_use]
    pub fn plan_classified(
        &self,
        program: &KernelProgram,
        trace: &KernelTrace,
        classify: Option<&ClassifyReport>,
    ) -> PruningPlan {
        let grouping = ThreadGrouping::analyze_with(trace, self.config.cta_key);
        let reps = grouping.representatives(trace);
        let exhaustive = trace.total_fault_sites();

        let rep_traces: Vec<&fsp_sim::ThreadTrace> = reps
            .iter()
            .map(|r| {
                trace
                    .full
                    .get(r.tid)
                    .unwrap_or_else(|| panic!("representative {} lacks a full trace", r.tid))
            })
            .collect();

        // Stage 0: static ACE pruning. Statically-dead destination bits are
        // excluded from every downstream stage count and never injected
        // (stage 4 folds their weight into the assumed-masked total).
        let static_report = if self.config.static_ace {
            Some(StaticAceReport::analyze(program))
        } else {
            None
        };
        let dead_at = |pc: u32| -> u64 {
            static_report
                .as_ref()
                .map_or(0, |r| u64::from(r.dead_bits_at(pc as usize)))
        };
        // Statically skipped bits per pc: ACE-dead plus absint-predicted
        // plus class members (all three verdict spaces are disjoint).
        let pruned_at = |pc: u32| -> u64 {
            let mut n = dead_at(pc);
            if let Some(c) = classify {
                let pc = pc as usize;
                n += u64::from(
                    c.crash_bits_at(pc) + c.detected_bits_at(pc) + c.class_pruned_bits_at(pc),
                );
            }
            n
        };
        let rep_dead: Vec<u64> = rep_traces
            .iter()
            .map(|t| t.entries.iter().map(|e| dead_at(e.pc)).sum())
            .collect();
        let rep_pruned: Vec<u64> = rep_traces
            .iter()
            .map(|t| t.entries.iter().map(|e| pruned_at(e.pc)).sum())
            .collect();
        let after_thread: u64 = reps
            .iter()
            .zip(&rep_pruned)
            .map(|(r, &d)| r.own_sites - d)
            .sum();
        // Whole-population estimates: each representative's statically
        // skipped bits stand for its covered threads, exactly like its
        // injected sites do.
        let population = |skipped: &[u64], floor: u64| -> u64 {
            let live: f64 = reps
                .iter()
                .zip(skipped)
                .map(|(r, &d)| r.site_weight() * (r.own_sites - d) as f64)
                .sum();
            (live.round() as u64).clamp(floor, exhaustive)
        };
        let after_static = if static_report.is_some() {
            population(&rep_dead, after_thread)
        } else {
            exhaustive
        };
        let after_absint = if classify.is_some() {
            population(&rep_pruned, after_thread).min(after_static)
        } else {
            after_static
        };

        // Per-representative, per-dynamic-instruction site weight. `None`
        // marks a pruned instruction.
        let mut weights: Vec<Vec<Option<f64>>> = reps
            .iter()
            .zip(&rep_traces)
            .map(|(r, t)| vec![Some(r.site_weight()); t.entries.len()])
            .collect();

        // Stage 2: instruction-wise pruning.
        let commonality = match &self.config.commonality {
            Some(cfg) if reps.len() > 1 => Some(Commonality::analyze(&rep_traces, cfg)),
            _ => None,
        };
        if let Some(c) = &commonality {
            for (rep_idx, role) in c.roles.iter().enumerate() {
                let RepRole::Pruned { matches } = role else {
                    continue;
                };
                let scale = reps[rep_idx].site_weight();
                for &(own, reference) in matches {
                    // Move this instruction's weight onto its reference
                    // partner (same pc and width, so per-site addition is
                    // exact).
                    weights[rep_idx][own as usize] = None;
                    if let Some(w) = &mut weights[c.reference][reference as usize] {
                        *w += scale;
                    }
                }
            }
        }
        let count_bits = |weights: &[Vec<Option<f64>>]| -> u64 {
            weights
                .iter()
                .zip(&rep_traces)
                .map(|(ws, t)| {
                    ws.iter()
                        .zip(&t.entries)
                        .filter(|(w, _)| w.is_some())
                        .map(|(_, e)| u64::from(e.dest_bits) - pruned_at(e.pc))
                        .sum::<u64>()
                })
                .sum()
        };
        let after_instruction = count_bits(&weights);

        // Stage 3: loop-wise pruning.
        let forest = program.cfg().loops(program);
        let taggings: Vec<LoopTagging> = rep_traces
            .iter()
            .map(|t| LoopTagging::analyze(t, &forest))
            .collect();
        let loop_stats = LoopStats::aggregate(&taggings);
        if self.config.loop_samples > 0 && !forest.is_empty() {
            for (rep_idx, tagging) in taggings.iter().enumerate() {
                let kept = tagging.sample_iterations(
                    self.config.loop_samples,
                    self.config.loop_seed.wrapping_add(rep_idx as u64),
                );
                // Weighted-bit totals per loop, over instructions that
                // survived stage 2.
                let n_loops = tagging.trip_counts.len();
                let mut total_wb = vec![0.0f64; n_loops];
                let mut sampled_wb = vec![0.0f64; n_loops];
                for (i, tag) in tagging.tags.iter().enumerate() {
                    let (Some(tag), Some(w)) = (tag, weights[rep_idx][i]) else {
                        continue;
                    };
                    let wb = w * f64::from(rep_traces[rep_idx].entries[i].dest_bits);
                    total_wb[tag.loop_id as usize] += wb;
                    if tagging.survives(i, &kept) {
                        sampled_wb[tag.loop_id as usize] += wb;
                    }
                }
                for (i, tag) in tagging.tags.iter().enumerate() {
                    let Some(tag) = tag else { continue };
                    if weights[rep_idx][i].is_none() {
                        continue;
                    }
                    let l = tag.loop_id as usize;
                    if sampled_wb[l] == 0.0 {
                        // Degenerate selection: keep the loop unpruned.
                        continue;
                    }
                    if tagging.survives(i, &kept) {
                        let scale = total_wb[l] / sampled_wb[l];
                        if let Some(w) = &mut weights[rep_idx][i] {
                            *w *= scale;
                        }
                    } else {
                        weights[rep_idx][i] = None;
                    }
                }
            }
        }
        let after_loop = count_bits(&weights);

        // Stage 4: bit-wise pruning, composed with the static verdicts:
        // dead bits are assumed masked, predicted bits move to the
        // predicted-DUE pools, class members ride on their representative.
        let mut sites = Vec::new();
        let mut assumed_masked_weight = 0.0f64;
        let mut predicted_crash_weight = 0.0f64;
        let mut predicted_detected_weight = 0.0f64;
        let mut class_redistributed_weight = 0.0f64;
        for (rep_idx, rep) in reps.iter().enumerate() {
            for (i, entry) in rep_traces[rep_idx].entries.iter().enumerate() {
                let Some(w) = weights[rep_idx][i] else {
                    continue;
                };
                let pc = entry.pc as usize;
                let instr = program.instr(pc);
                let dead_masks = static_report
                    .as_ref()
                    .map(|r| r.slot_dead_masks(pc))
                    .unwrap_or_default();
                let cls = classify.map(|c| c.slots(pc)).unwrap_or(&[]);
                // The bit selector treats every statically-skipped bit as
                // "dead"; the weight split between masked / predicted /
                // class pools happens below.
                let mut skip_masks = dead_masks.clone();
                skip_masks.resize(skip_masks.len().max(cls.len()), 0);
                for (m, s) in skip_masks.iter_mut().zip(cls) {
                    *m |= s.predicted_mask() | s.class_mask;
                }
                let mut offset = 0u32;
                for (slot_idx, sel) in self
                    .config
                    .bits
                    .select_instruction_masked(instr, &skip_masks)
                    .iter()
                    .enumerate()
                {
                    let (crash, detected, class_mask, rep_bit) = cls
                        .get(slot_idx)
                        .map(|s| {
                            let flat_rep = s.class_rep.map(|r| r + offset);
                            offset += s.width;
                            (s.crash_mask, s.detected_mask, s.class_mask, flat_rep)
                        })
                        .unwrap_or((0, 0, 0, None));
                    predicted_crash_weight += w * f64::from(crash.count_ones());
                    predicted_detected_weight += w * f64::from(detected.count_ones());
                    let members = class_mask.count_ones();
                    class_redistributed_weight += w * f64::from(members);
                    // `assumed_masked_bits` counted every skipped bit (plus
                    // policy-masked predicate flags); carve out the
                    // predicted and class bits accounted above.
                    let masked =
                        sel.assumed_masked_bits - (crash | detected).count_ones() - members;
                    assumed_masked_weight += w * f64::from(masked);
                    let mut rep_injected = false;
                    for &bit in &sel.bits {
                        let mut weight = w * sel.weight_per_bit;
                        if rep_bit == Some(bit) {
                            // The representative carries its class members'
                            // weight: all members provably share its
                            // outcome per dynamic instance.
                            weight += w * f64::from(members);
                            rep_injected = true;
                        }
                        sites.push(WeightedSite {
                            site: FaultSite {
                                tid: rep.tid,
                                dyn_idx: i as u32,
                                bit,
                            },
                            weight,
                        });
                    }
                    if let (Some(bit), false, true) = (rep_bit, rep_injected, members > 0) {
                        // Bit sampling skipped the representative: inject
                        // it anyway so the class weight lands on a run.
                        sites.push(WeightedSite {
                            site: FaultSite {
                                tid: rep.tid,
                                dyn_idx: i as u32,
                                bit,
                            },
                            weight: w * f64::from(members),
                        });
                    }
                }
            }
        }
        let stages = StageCounts {
            exhaustive,
            after_static,
            after_absint,
            after_thread,
            after_instruction,
            after_loop,
            after_bit: sites.len() as u64,
        };
        let plan = PruningPlan {
            sites,
            assumed_masked_weight,
            stages,
            grouping,
            commonality,
            loop_stats,
            static_ace: static_report.as_ref().map(StaticAceReport::summary),
            predicted_crash_weight,
            predicted_detected_weight,
            class_redistributed_weight,
            classify: classify.map(ClassifyReport::summary),
        };
        debug_assert!(
            (plan.total_weight() - exhaustive as f64).abs() <= 1e-6 * (exhaustive as f64).max(1.0),
            "weight conservation violated: {} vs {}",
            plan.total_weight(),
            exhaustive,
        );
        plan
    }

    /// Runs the plan as an injection campaign and returns the extrapolated
    /// resilience profile.
    #[must_use]
    pub fn run<T: InjectionTarget>(
        &self,
        experiment: &Experiment<'_, T>,
        plan: &PruningPlan,
        workers: usize,
    ) -> ResilienceProfile {
        let mut profile = experiment.run_campaign(&plan.sites, workers).profile;
        profile.record_weighted(Outcome::Masked, plan.assumed_masked_weight);
        // Predicted DUEs were never run; their statically-proven outcome
        // weight is folded in directly (weight conservation).
        if plan.predicted_crash_weight > 0.0 {
            profile.record_weighted(Outcome::CRASH, plan.predicted_crash_weight);
        }
        if plan.predicted_detected_weight > 0.0 {
            profile.record_weighted(Outcome::Detected, plan.predicted_detected_weight);
        }
        profile
    }
}

/// The abstract-interpretation context of a target's launch: grid and
/// block geometry, parameter values, and the sizes of the three memory
/// spaces the simulator enforces.
#[must_use]
pub fn abs_context_for<T: InjectionTarget>(target: &T) -> AbsContext {
    let launch = target.launch();
    AbsContext {
        block: launch.block_dim(),
        grid: launch.grid_dim(),
        params: launch.param_values().to_vec(),
        shared_bytes: launch.shared_size(),
        global_bytes: target.init_memory().len_bytes() as u32,
        local_bytes: (4 * LOCAL_WORDS) as u32,
    }
}

/// Runs the paper's statistical baseline: `n` uniformly sampled sites from
/// the exhaustive population (Section II-D).
#[must_use]
pub fn run_baseline<T: InjectionTarget>(
    experiment: &Experiment<'_, T>,
    space: &SiteSpace,
    n: usize,
    seed: u64,
    workers: usize,
) -> ResilienceProfile {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let sites: Vec<WeightedSite> = space
        .sample_many(n, &mut rng)
        .into_iter()
        .map(WeightedSite::from)
        .collect();
    experiment.run_campaign(&sites, workers).profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::testing::CountdownTarget;

    fn plan_with(config: PruningConfig) -> (PruningPlan, ResilienceProfile, ResilienceProfile) {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let pipeline = PruningPipeline::new(config);
        let plan = pipeline.plan_for(&experiment).unwrap();
        let pruned = pipeline.run(&experiment, &plan, 4);
        // Exhaustive ground truth over the full site space.
        let space = experiment.site_space(0..CountdownTarget::THREADS);
        let all: Vec<WeightedSite> = (0..space.total_sites())
            .map(|i| WeightedSite::from(space.site_at(i)))
            .collect();
        let truth = experiment.run_campaign(&all, 4).profile;
        (plan, pruned, truth)
    }

    #[test]
    fn weight_conservation() {
        let (plan, _, _) = plan_with(PruningConfig::default());
        assert!(
            (plan.total_weight() - plan.stages.exhaustive as f64).abs() < 1e-6,
            "total weight {} != exhaustive {}",
            plan.total_weight(),
            plan.stages.exhaustive
        );
    }

    #[test]
    fn stages_monotonically_shrink() {
        let (plan, _, _) = plan_with(PruningConfig::default());
        let s = plan.stages;
        assert!(s.after_static <= s.exhaustive);
        assert!(s.after_absint <= s.after_static);
        assert!(s.after_thread <= s.after_absint);
        assert!(s.after_instruction <= s.after_thread);
        assert!(s.after_loop <= s.after_instruction);
        assert!(s.after_bit <= s.after_loop);
        assert!(s.after_bit > 0);
    }

    #[test]
    fn static_stage_preserves_accuracy() {
        // Exhaustive bit sampling isolates Stage 0: the two runs then
        // inject the *same* sites except for the statically-dead bits.
        let base = PruningConfig {
            bits: BitSampler::exhaustive(),
            ..PruningConfig::default()
        };
        let with = plan_with(PruningConfig {
            static_ace: true,
            ..base
        });
        let without = plan_with(PruningConfig {
            static_ace: false,
            ..base
        });
        assert!(with.0.static_ace.is_some());
        assert!(without.0.static_ace.is_none());
        assert_eq!(without.0.stages.after_static, without.0.stages.exhaustive);
        assert!(with.0.stages.after_bit <= without.0.stages.after_bit);
        // Dropping statically-dead bits must not move the profile: they
        // classify Masked under injection, which is exactly how Stage 0
        // accounts them.
        let diff = with.1.max_abs_diff(&without.1);
        assert!(
            diff < 1e-9,
            "static stage changed the profile by {diff:.4}%"
        );
    }

    #[test]
    fn absint_stage_preserves_profile() {
        // Exhaustive bit sampling isolates the absint stage: predicted
        // DUEs are claimed without running and class members ride their
        // representative, so any unsound verdict moves the profile.
        let base = PruningConfig {
            bits: BitSampler::exhaustive(),
            ..PruningConfig::default()
        };
        let with = plan_with(PruningConfig {
            absint: true,
            ..base
        });
        let without = plan_with(PruningConfig {
            absint: false,
            ..base
        });
        assert!(with.0.classify.is_some());
        assert!(without.0.classify.is_none());
        assert!(
            (with.0.total_weight() - with.0.stages.exhaustive as f64).abs() < 1e-6,
            "absint plan lost weight"
        );
        let diff = with.1.max_abs_diff(&without.1);
        assert!(
            diff < 1e-6,
            "absint stage changed the profile by {diff:.4}%"
        );
    }

    #[test]
    fn pruned_profile_tracks_exhaustive_truth() {
        let (plan, pruned, truth) = plan_with(PruningConfig::default());
        // The 4 countdown threads all have distinct iCnt, so thread-wise
        // pruning keeps all 4; the remaining stages sample. The pruned
        // profile must stay close to ground truth.
        assert!(plan.stages.after_bit < plan.stages.exhaustive);
        let diff = pruned.max_abs_diff(&truth);
        assert!(
            diff < 12.0,
            "pruned {pruned} deviates from truth {truth} by {diff:.2}%"
        );
    }

    #[test]
    fn thread_wise_only_is_exact_per_rep() {
        let (plan, pruned, truth) = plan_with(PruningConfig::thread_wise_only());
        assert_eq!(plan.stages.after_bit, plan.stages.after_thread);
        assert_eq!(plan.assumed_masked_weight, 0.0);
        // All four threads are their own representatives here, so the
        // "pruned" campaign IS the exhaustive campaign.
        assert!(pruned.max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn baseline_sampler_is_seeded() {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let space = experiment.site_space(0..CountdownTarget::THREADS);
        let a = run_baseline(&experiment, &space, 64, 9, 2);
        let b = run_baseline(&experiment, &space, 64, 9, 4);
        assert_eq!(a.percentages(), b.percentages());
    }
}
