//! CTA grouping from fault-injection outcomes — the paper's ground-truth
//! classifier (Section III-B.1, Figure 2).
//!
//! Before trusting the cheap iCnt classifier, the paper validates it with
//! a large injection campaign: faults are injected at one target
//! instruction across all threads, and CTAs whose per-thread masked-rate
//! distributions coincide form a group. This module implements that
//! campaign; [`crate::ThreadGrouping`] is the iCnt-based classifier it is
//! compared against (via `fsp_stats::rand_index`, Figure 2 vs Figure 3).

use std::collections::BTreeMap;

use fsp_inject::{Experiment, InjectionTarget, SiteSpace, WeightedSite};
use fsp_stats::{FiveNumber, Outcome};
use serde::{Deserialize, Serialize};

/// Per-CTA outcome statistics and the induced grouping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeGrouping {
    /// The static instruction injected.
    pub target_pc: u32,
    /// Per-CTA distribution of per-thread masked percentages.
    pub distributions: Vec<FiveNumber>,
    /// Per-CTA mean masked percentage.
    pub means: Vec<f64>,
    /// CTA ids grouped by mean masked% within the tolerance, ordered by
    /// first member.
    pub groups: Vec<Vec<u32>>,
}

impl OutcomeGrouping {
    /// Runs the grouping campaign: every site of `target_pc` in every
    /// thread is injected (the per-thread site count at one pc is small —
    /// at most the destination width times its loop trip count), and CTAs
    /// are grouped by mean masked% within `tolerance` percentage points.
    ///
    /// `space` must carry full traces for every thread.
    ///
    /// # Panics
    ///
    /// Panics if a thread lacks a full trace.
    #[must_use]
    pub fn analyze<T: InjectionTarget>(
        experiment: &Experiment<'_, T>,
        space: &SiteSpace,
        target_pc: u32,
        tolerance: f64,
        workers: usize,
    ) -> Self {
        let trace = space.trace();
        let mut distributions = Vec::new();
        let mut means = Vec::new();
        for cta in 0..trace.num_ctas() {
            let mut sites = Vec::new();
            let mut owner = Vec::new();
            for tid in trace.cta_threads(cta) {
                for s in space.thread_pc_sites(tid, target_pc) {
                    sites.push(WeightedSite::from(s));
                    owner.push(tid);
                }
            }
            if sites.is_empty() {
                // No thread of this CTA executes the target: by definition
                // every (non-existent) injection is masked.
                distributions.push(FiveNumber::of(&[100.0]));
                means.push(100.0);
                continue;
            }
            let result = experiment.run_campaign(&sites, workers);
            let mut per_thread: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
            for (outcome, tid) in result.outcomes.iter().zip(&owner) {
                let slot = per_thread.entry(*tid).or_default();
                slot.1 += 1;
                if *outcome == Outcome::Masked {
                    slot.0 += 1;
                }
            }
            let pct: Vec<f64> = per_thread
                .values()
                .map(|&(m, n)| 100.0 * f64::from(m) / f64::from(n))
                .collect();
            means.push(pct.iter().sum::<f64>() / pct.len() as f64);
            distributions.push(FiveNumber::of(&pct));
        }
        // Group CTAs by mean within the tolerance.
        let mut groups: Vec<(f64, Vec<u32>)> = Vec::new();
        for (cta, &mean) in means.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(m, _)| (*m - mean).abs() <= tolerance)
            {
                Some((_, members)) => members.push(cta as u32),
                None => groups.push((mean, vec![cta as u32])),
            }
        }
        OutcomeGrouping {
            target_pc,
            distributions,
            means,
            groups: groups.into_iter().map(|(_, g)| g).collect(),
        }
    }

    /// Per-element group labels (for `fsp_stats::rand_index`).
    #[must_use]
    pub fn labels(&self) -> Vec<usize> {
        fsp_stats::labels_from_groups(&self.groups, self.means.len())
    }

    /// Picks the target instruction with the largest dynamic site volume
    /// among the traced threads — a "busy" instruction like the ones the
    /// paper selects manually.
    #[must_use]
    pub fn default_target_pc(space: &SiteSpace) -> u32 {
        let mut volume: BTreeMap<u32, u64> = BTreeMap::new();
        for full in space.trace().full.values() {
            for e in &full.entries {
                *volume.entry(e.pc).or_default() += u64::from(e.dest_bits);
            }
        }
        volume
            .into_iter()
            .max_by_key(|&(_, v)| v)
            .map(|(pc, _)| pc)
            .expect("trace contains at least one instruction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::testing::CountdownTarget;

    #[test]
    fn countdown_threads_group_by_outcome() {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let space = experiment.site_space(0..CountdownTarget::THREADS);
        let pc = OutcomeGrouping::default_target_pc(&space);
        let grouping = OutcomeGrouping::analyze(&experiment, &space, pc, 2.0, 4);
        // One CTA -> one distribution, one group.
        assert_eq!(grouping.distributions.len(), 1);
        assert_eq!(grouping.groups, vec![vec![0]]);
        assert_eq!(grouping.labels(), vec![0]);
    }
}
