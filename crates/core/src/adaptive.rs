//! Adaptive loop-iteration sampling.
//!
//! The paper picks the number of sampled loop iterations manually, by
//! inspecting when the outcome distribution stabilizes (Figure 6: "we
//! randomly add iterations one by one, until the result is stable" —
//! needing 3 for PathFinder, 8 for SYRK, 15 for K-Means K1). This module
//! automates that procedure: it grows the per-loop sample one iteration at
//! a time, re-running the pruned campaign, and stops once the profile has
//! been stable for a configurable number of consecutive increments.

use fsp_inject::{Experiment, InjectionTarget};
use fsp_sim::SimFault;
use fsp_stats::ResilienceProfile;
use serde::{Deserialize, Serialize};

use crate::pipeline::{PruningConfig, PruningPipeline, PruningPlan};

/// Stopping criterion for [`PruningPipeline::run_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Maximum per-class percentage movement still considered "stable".
    pub epsilon: f64,
    /// Consecutive stable increments required before stopping.
    pub stable_increments: usize,
    /// Hard cap on sampled iterations per loop.
    pub max_samples: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        // The paper's kernels converged within 3..=15 sampled iterations.
        AdaptiveConfig {
            epsilon: 2.0,
            stable_increments: 2,
            max_samples: 15,
        }
    }
}

/// Result of an adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The converged per-loop sample count.
    pub loop_samples: usize,
    /// The plan at convergence.
    pub plan: PruningPlan,
    /// The profile at convergence.
    pub profile: ResilienceProfile,
    /// `(loop_samples, profile)` for every increment tried, in order.
    pub history: Vec<(usize, ResilienceProfile)>,
}

impl PruningPipeline {
    /// Grows the loop-iteration sample until the pruned profile stabilizes
    /// (the automated version of the paper's Figure 6 procedure). All other
    /// stages follow this pipeline's configuration; the `loop_samples`
    /// field is overridden per increment.
    ///
    /// For a loop-free kernel this degenerates to a single campaign.
    ///
    /// # Errors
    ///
    /// Propagates a [`SimFault`] from the tracing runs.
    pub fn run_adaptive<T: InjectionTarget>(
        &self,
        experiment: &Experiment<'_, T>,
        adaptive: &AdaptiveConfig,
        workers: usize,
    ) -> Result<AdaptiveResult, SimFault> {
        let mut history = Vec::new();
        let mut stable = 0usize;
        let mut current: Option<(usize, PruningPlan, ResilienceProfile)> = None;

        for samples in 1..=adaptive.max_samples.max(1) {
            let pipeline = PruningPipeline::new(PruningConfig {
                loop_samples: samples,
                ..*self.config()
            });
            let plan = pipeline.plan_for(experiment)?;
            let no_loops = plan.loop_stats.max_trip == 0;
            let profile = pipeline.run(experiment, &plan, workers);
            history.push((samples, profile));

            if let Some((_, _, prev)) = &current {
                if profile.max_abs_diff(prev) <= adaptive.epsilon {
                    stable += 1;
                } else {
                    stable = 0;
                }
            }
            let converged = stable >= adaptive.stable_increments;
            current = Some((samples, plan, profile));
            if converged || no_loops {
                break;
            }
        }
        let (loop_samples, plan, profile) = current.expect("at least one increment always runs");
        Ok(AdaptiveResult {
            loop_samples,
            plan,
            profile,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::testing::CountdownTarget;

    #[test]
    fn converges_on_a_loopy_kernel() {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let pipeline = PruningPipeline::new(PruningConfig::default());
        let result = pipeline
            .run_adaptive(&experiment, &AdaptiveConfig::default(), 4)
            .unwrap();
        assert!(result.loop_samples >= 1);
        assert!(result.loop_samples <= 15);
        assert_eq!(
            result.history.last().map(|(n, _)| *n),
            Some(result.loop_samples)
        );
        // The converged profile accounts for the full population.
        assert!(
            (result.profile.total() - result.plan.stages.exhaustive as f64).abs()
                < 1e-6 * result.plan.stages.exhaustive as f64
        );
    }

    #[test]
    fn history_is_monotone_in_samples() {
        let target = CountdownTarget::new();
        let experiment = Experiment::prepare(&target).unwrap();
        let pipeline = PruningPipeline::new(PruningConfig::default());
        let result = pipeline
            .run_adaptive(
                &experiment,
                &AdaptiveConfig {
                    epsilon: 0.0,
                    stable_increments: 99,
                    max_samples: 4,
                },
                4,
            )
            .unwrap();
        let ns: Vec<usize> = result.history.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            ns,
            vec![1, 2, 3, 4],
            "runs every increment when never stable"
        );
    }
}
