//! Stage 2 — instruction-wise pruning (Section III-C).
//!
//! Representative threads frequently share large common blocks of dynamic
//! instructions (the paper's Figure 5 shows two PathFinder threads whose
//! 500+-instruction traces differ by a single 17-instruction block). The
//! common blocks have near-identical outcome distributions, so they are
//! injected once — in a *reference* thread — and extrapolated to the other
//! representatives.
//!
//! The alignment is a longest-common-subsequence over the traces' static-pc
//! sequences, computed with Hirschberg's linear-space algorithm (traces run
//! to a few thousand dynamic instructions).

use fsp_sim::ThreadTrace;
use serde::{Deserialize, Serialize};

/// Configuration for the commonality stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommonalityConfig {
    /// A representative is only pruned against the reference when at least
    /// this fraction of its trace matches (the paper skips kernels whose
    /// representatives share little code).
    pub min_shared_fraction: f64,
    /// Representatives with traces shorter than this are never pruned
    /// (kernels like Gaussian K1/K2 pair a <10-instruction thread with a
    /// huge one — no commonality worth exploiting).
    pub min_trace_len: usize,
    /// A representative is only pruned when its trace is at least this
    /// fraction of the reference's length. Extrapolation assumes the common
    /// instructions have similar resilience, which holds for peers doing
    /// the same work (the paper's PathFinder pair: 516 vs 533 dynamic
    /// instructions) but *not* for a short halo/early-exit thread whose
    /// matching instructions are mostly dead — its faults are masked while
    /// the reference's same-pc faults are live.
    pub min_length_ratio: f64,
}

impl Default for CommonalityConfig {
    fn default() -> Self {
        CommonalityConfig {
            min_shared_fraction: 0.4,
            min_trace_len: 16,
            min_length_ratio: 0.75,
        }
    }
}

/// A pairwise alignment between two traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alignment {
    /// Matched dynamic-instruction index pairs `(idx_in_a, idx_in_b)` in
    /// increasing order on both sides.
    pub pairs: Vec<(u32, u32)>,
}

impl Alignment {
    /// Fraction of `b_len` that is matched.
    #[must_use]
    pub fn coverage_of_b(&self, b_len: usize) -> f64 {
        if b_len == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / b_len as f64
        }
    }
}

/// Longest common subsequence of two sequences, with matched index pairs,
/// in O(len_a * len_b) time and O(len_a + len_b) space (Hirschberg).
#[must_use]
pub fn align_lcs(a: &[u32], b: &[u32]) -> Alignment {
    let mut pairs = Vec::new();
    hirschberg(a, b, 0, 0, &mut pairs);
    Alignment { pairs }
}

/// One row of LCS lengths: `lcs_row(a, b)[j]` = LCS length of `a` and
/// `b[..j]`.
fn lcs_row(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for &x in a {
        for (j, &y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

fn hirschberg(a: &[u32], b: &[u32], a_off: u32, b_off: u32, out: &mut Vec<(u32, u32)>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a.len() == 1 {
        if let Some(j) = b.iter().position(|&y| y == a[0]) {
            out.push((a_off, b_off + j as u32));
        }
        return;
    }
    let mid = a.len() / 2;
    let left = lcs_row(&a[..mid], b);
    let rev_a: Vec<u32> = a[mid..].iter().rev().copied().collect();
    let rev_b: Vec<u32> = b.iter().rev().copied().collect();
    let right = lcs_row(&rev_a, &rev_b);
    // Best split point of b.
    let split = (0..=b.len())
        .max_by_key(|&j| left[j] + right[b.len() - j])
        .expect("non-empty range");
    hirschberg(&a[..mid], &b[..split], a_off, b_off, out);
    hirschberg(
        &a[mid..],
        &b[split..],
        a_off + mid as u32,
        b_off + split as u32,
        out,
    );
}

/// Role assigned to each representative by the commonality analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepRole {
    /// The reference thread: injected in full.
    Reference,
    /// Aligned against the reference: matched instructions are pruned, each
    /// extrapolated from its partner `(own_idx -> reference_idx)`; only the
    /// unmatched remainder is injected.
    Pruned {
        /// Matched `(own dynamic index, reference dynamic index)` pairs.
        matches: Vec<(u32, u32)>,
    },
    /// Left untouched (shared fraction below threshold, or trace too
    /// short).
    Unpruned,
}

/// Result of the instruction-wise analysis across representatives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commonality {
    /// Index (into the representative list) of the reference thread.
    pub reference: usize,
    /// Role per representative, parallel to the input list.
    pub roles: Vec<RepRole>,
    /// Dynamic instructions pruned across all representatives.
    pub pruned_instructions: u64,
    /// Dynamic instructions across all representatives before pruning.
    pub total_instructions: u64,
}

impl Commonality {
    /// Analyzes the representatives' traces. The longest trace becomes the
    /// reference; every other trace is aligned against it and pruned when
    /// the shared fraction clears `config.min_shared_fraction`.
    ///
    /// Only instructions whose *pc and destination width* both match are
    /// treated as common (extrapolation must map a site onto a site of the
    /// same shape).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn analyze(traces: &[&ThreadTrace], config: &CommonalityConfig) -> Self {
        assert!(!traces.is_empty(), "commonality needs at least one trace");
        // First-longest trace wins ties, keeping the choice deterministic.
        let reference = traces
            .iter()
            .enumerate()
            .rev()
            .max_by_key(|(_, t)| t.entries.len())
            .map(|(i, _)| i)
            .expect("non-empty");
        let ref_pcs = traces[reference].pcs();
        let ref_entries = &traces[reference].entries;

        let mut roles = Vec::with_capacity(traces.len());
        let mut pruned = 0u64;
        let mut total = 0u64;
        for (i, trace) in traces.iter().enumerate() {
            total += trace.entries.len() as u64;
            if i == reference {
                roles.push(RepRole::Reference);
                continue;
            }
            if trace.entries.len() < config.min_trace_len
                || (trace.entries.len() as f64) < config.min_length_ratio * ref_entries.len() as f64
            {
                roles.push(RepRole::Unpruned);
                continue;
            }
            let pcs = trace.pcs();
            let alignment = align_lcs(&pcs, &ref_pcs);
            // Keep only shape-identical matches.
            let matches: Vec<(u32, u32)> = alignment
                .pairs
                .iter()
                .copied()
                .filter(|&(own, re)| {
                    trace.entries[own as usize].dest_bits == ref_entries[re as usize].dest_bits
                })
                .collect();
            let coverage = matches.len() as f64 / pcs.len() as f64;
            if coverage >= config.min_shared_fraction {
                pruned += matches.len() as u64;
                roles.push(RepRole::Pruned { matches });
            } else {
                roles.push(RepRole::Unpruned);
            }
        }
        Commonality {
            reference,
            roles,
            pruned_instructions: pruned,
            total_instructions: total,
        }
    }

    /// Fraction of representative instructions pruned (the paper's
    /// "% pruned common insn", Table VI).
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            0.0
        } else {
            self.pruned_instructions as f64 / self.total_instructions as f64
        }
    }

    /// Whether the stage pruned anything at all.
    #[must_use]
    pub fn is_effective(&self) -> bool {
        self.pruned_instructions > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_sim::{ThreadTrace, TraceEntry};

    fn trace_of(pcs: &[u32]) -> ThreadTrace {
        ThreadTrace {
            entries: pcs
                .iter()
                .map(|&pc| TraceEntry { pc, dest_bits: 32 })
                .collect(),
        }
    }

    #[test]
    fn lcs_basic() {
        let a = [1, 2, 3, 4, 5];
        let b = [2, 4, 5];
        let al = align_lcs(&a, &b);
        assert_eq!(al.pairs, vec![(1, 0), (3, 1), (4, 2)]);
    }

    #[test]
    fn lcs_identical() {
        let a = [7, 8, 9];
        let al = align_lcs(&a, &a);
        assert_eq!(al.pairs.len(), 3);
        assert!(al.pairs.iter().all(|&(x, y)| x == y));
    }

    #[test]
    fn lcs_disjoint() {
        let al = align_lcs(&[1, 2], &[3, 4]);
        assert!(al.pairs.is_empty());
    }

    #[test]
    fn lcs_monotone_pairs() {
        let a = [1, 3, 1, 3, 5, 1];
        let b = [3, 1, 5, 3, 1];
        let al = align_lcs(&a, &b);
        for w in al.pairs.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "non-monotone {al:?}");
        }
        for &(i, j) in &al.pairs {
            assert_eq!(a[i as usize], b[j as usize]);
        }
    }

    #[test]
    fn pathfinder_shape_prunes_shorter_thread() {
        // Mimic Figure 5: thread a = prefix ++ extra(17) ++ suffix;
        // thread b = prefix ++ suffix.
        let prefix: Vec<u32> = (0..53).collect();
        let extra: Vec<u32> = (100..117).collect();
        let suffix: Vec<u32> = (53..100).collect();
        let a: Vec<u32> = prefix
            .iter()
            .chain(&extra)
            .chain(&suffix)
            .copied()
            .collect();
        let b: Vec<u32> = prefix.iter().chain(&suffix).copied().collect();
        let (ta, tb) = (trace_of(&a), trace_of(&b));
        let c = Commonality::analyze(&[&ta, &tb], &CommonalityConfig::default());
        assert_eq!(c.reference, 0);
        assert!(matches!(c.roles[0], RepRole::Reference));
        let RepRole::Pruned { matches } = &c.roles[1] else {
            panic!("thread b should be pruned, got {:?}", c.roles[1]);
        };
        // The entire b is common.
        assert_eq!(matches.len(), b.len());
        assert_eq!(c.pruned_instructions, b.len() as u64);
    }

    #[test]
    fn short_traces_left_alone() {
        let ta = trace_of(&(0..100).collect::<Vec<_>>());
        let tb = trace_of(&[0, 1, 2]);
        let c = Commonality::analyze(&[&ta, &tb], &CommonalityConfig::default());
        assert!(matches!(c.roles[1], RepRole::Unpruned));
        assert!(!c.is_effective());
    }

    #[test]
    fn low_coverage_left_alone() {
        let ta = trace_of(&(0..100).collect::<Vec<_>>());
        let tb = trace_of(&(200..300).collect::<Vec<_>>());
        let c = Commonality::analyze(&[&ta, &tb], &CommonalityConfig::default());
        assert!(matches!(c.roles[1], RepRole::Unpruned));
    }

    #[test]
    fn width_mismatch_blocks_match() {
        // Same pcs but different dest widths must not match.
        let ta = trace_of(&(0..50).collect::<Vec<_>>());
        let mut tb = trace_of(&(0..50).collect::<Vec<_>>());
        for e in &mut tb.entries {
            e.dest_bits = 4;
        }
        let c = Commonality::analyze(&[&ta, &tb], &CommonalityConfig::default());
        assert!(matches!(c.roles[1], RepRole::Unpruned));
    }
}
