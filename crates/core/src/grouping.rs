//! Stage 1 — thread-wise pruning (Section III-B).
//!
//! The classifier is the per-thread dynamic instruction count (iCnt), which
//! the paper shows to track the error-resilience profile (Figures 2 vs 3):
//! CTAs are grouped by their *mean* thread iCnt, then threads inside a
//! representative CTA of each group are grouped by their *exact* iCnt. One
//! representative thread per (CTA group × thread group) is injected; its
//! outcomes are extrapolated to every site the group covers.

use fsp_sim::KernelTrace;
use serde::{Deserialize, Serialize};

/// How CTAs are keyed into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CtaKey {
    /// Group CTAs whose threads execute the same *total* (equivalently,
    /// mean) number of dynamic instructions — the paper's classifier.
    #[default]
    MeanIcnt,
    /// Group CTAs with identical iCnt *distributions* (stricter; groups are
    /// never coarser than [`CtaKey::MeanIcnt`]).
    Distribution,
}

/// A group of threads with identical iCnt inside the representative CTA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadGroup {
    /// The shared dynamic instruction count.
    pub icnt: u32,
    /// Flat thread ids of the members *within the representative CTA*.
    pub members: Vec<u32>,
    /// The representative (lowest member id).
    pub representative: u32,
    /// Number of threads across *all* CTAs of the owning CTA group with
    /// this iCnt.
    pub population: u64,
    /// Total fault sites across all threads this group covers (summed from
    /// the trace, all CTAs of the group).
    pub site_population: u64,
}

/// A group of CTAs with the same classifier key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtaGroup {
    /// Mean per-thread iCnt of the group's CTAs.
    pub mean_icnt_x1000: u64,
    /// CTA ids in the group.
    pub ctas: Vec<u32>,
    /// The representative CTA (lowest id).
    pub representative_cta: u32,
    /// Thread groups within the representative CTA.
    pub thread_groups: Vec<ThreadGroup>,
}

impl CtaGroup {
    /// Mean per-thread iCnt as a float. `0.0` for a group with no CTAs
    /// (nothing was traced into it).
    #[must_use]
    pub fn mean_icnt(&self) -> f64 {
        if self.ctas.is_empty() {
            return 0.0;
        }
        self.mean_icnt_x1000 as f64 / 1000.0
    }

    /// Fraction of the kernel's CTAs in this group. `0.0` when the launch
    /// reportedly has no CTAs at all (never a division by zero).
    #[must_use]
    pub fn cta_proportion(&self, total_ctas: u32) -> f64 {
        if total_ctas == 0 {
            return 0.0;
        }
        self.ctas.len() as f64 / f64::from(total_ctas)
    }
}

/// A representative thread together with its extrapolation totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Representative {
    /// Flat thread id of the representative.
    pub tid: u32,
    /// The representative's own fault-site count.
    pub own_sites: u64,
    /// Fault sites of the whole population it stands for (its own
    /// included).
    pub covered_sites: u64,
    /// Threads it stands for (itself included).
    pub covered_threads: u64,
}

impl Representative {
    /// Per-site extrapolation weight: covered sites per own site.
    #[must_use]
    pub fn site_weight(&self) -> f64 {
        if self.own_sites == 0 {
            0.0
        } else {
            self.covered_sites as f64 / self.own_sites as f64
        }
    }
}

/// The full two-level grouping of a kernel launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadGrouping {
    /// CTA groups, ordered by representative CTA id.
    pub groups: Vec<CtaGroup>,
    /// Total CTAs in the launch.
    pub total_ctas: u32,
    /// Threads whose iCnt matched no thread group of their CTA group's
    /// representative CTA (folded into the nearest-iCnt group; nonzero
    /// values signal that iCnt is an imperfect classifier for this kernel).
    pub mismatched_threads: u64,
}

impl ThreadGrouping {
    /// Classifies the threads of a traced launch.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no threads.
    #[must_use]
    pub fn analyze(trace: &KernelTrace) -> Self {
        Self::analyze_with(trace, CtaKey::MeanIcnt)
    }

    /// Classifies with an explicit CTA key.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no threads.
    #[must_use]
    pub fn analyze_with(trace: &KernelTrace, key: CtaKey) -> Self {
        let num_ctas = trace.num_ctas();
        assert!(num_ctas > 0, "trace has no threads");
        let per = trace.threads_per_cta;

        // 1. Key each CTA.
        let cta_key = |cta: u32| -> Vec<u32> {
            let range = trace.cta_threads(cta);
            match key {
                CtaKey::MeanIcnt => {
                    vec![range.map(|t| trace.icnt[t as usize]).sum::<u32>()]
                }
                CtaKey::Distribution => {
                    let mut v: Vec<u32> = range.map(|t| trace.icnt[t as usize]).collect();
                    v.sort_unstable();
                    v
                }
            }
        };
        let mut by_key: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        for cta in 0..num_ctas {
            let k = cta_key(cta);
            match by_key.iter_mut().find(|(kk, _)| *kk == k) {
                Some((_, ctas)) => ctas.push(cta),
                None => by_key.push((k, vec![cta])),
            }
        }
        by_key.sort_by_key(|(_, ctas)| ctas[0]);

        // 2. Thread groups inside each representative CTA, then attribute
        //    the population of every CTA in the group.
        let mut groups = Vec::with_capacity(by_key.len());
        let mut mismatched = 0u64;
        for (_, ctas) in by_key {
            let rep_cta = ctas[0];
            let mut tgroups: Vec<ThreadGroup> = Vec::new();
            for t in trace.cta_threads(rep_cta) {
                let icnt = trace.icnt[t as usize];
                match tgroups.iter_mut().find(|g| g.icnt == icnt) {
                    Some(g) => g.members.push(t),
                    None => tgroups.push(ThreadGroup {
                        icnt,
                        members: vec![t],
                        representative: t,
                        population: 0,
                        site_population: 0,
                    }),
                }
            }
            tgroups.sort_by_key(|g| g.icnt);
            // Attribute every thread of every CTA in this group.
            for &cta in &ctas {
                for t in trace.cta_threads(cta) {
                    let icnt = trace.icnt[t as usize];
                    let sites = trace.fault_bits[t as usize];
                    let slot = match tgroups.iter_mut().find(|g| g.icnt == icnt) {
                        Some(g) => g,
                        None => {
                            mismatched += 1;
                            tgroups
                                .iter_mut()
                                .min_by_key(|g| u64::from(g.icnt.abs_diff(icnt)))
                                .expect("representative CTA has at least one group")
                        }
                    };
                    slot.population += 1;
                    slot.site_population += sites;
                }
            }
            let sum_icnt: u64 = trace
                .cta_threads(rep_cta)
                .map(|t| u64::from(trace.icnt[t as usize]))
                .sum();
            groups.push(CtaGroup {
                // `per == 0` cannot happen after the no-threads assert, but
                // an empty trace must not divide by zero either way.
                mean_icnt_x1000: if per == 0 {
                    0
                } else {
                    sum_icnt * 1000 / u64::from(per)
                },
                ctas,
                representative_cta: rep_cta,
                thread_groups: tgroups,
            });
        }
        ThreadGrouping {
            groups,
            total_ctas: num_ctas,
            mismatched_threads: mismatched,
        }
    }

    /// All representative threads with their extrapolation totals.
    #[must_use]
    pub fn representatives(&self, trace: &KernelTrace) -> Vec<Representative> {
        let mut reps = Vec::new();
        for g in &self.groups {
            for tg in &g.thread_groups {
                reps.push(Representative {
                    tid: tg.representative,
                    own_sites: trace.fault_bits[tg.representative as usize],
                    covered_sites: tg.site_population,
                    covered_threads: tg.population,
                });
            }
        }
        reps
    }

    /// Number of representative threads (injection targets after stage 1).
    #[must_use]
    pub fn num_representatives(&self) -> usize {
        self.groups.iter().map(|g| g.thread_groups.len()).sum()
    }

    /// Fault sites that remain after thread-wise pruning: the sum of the
    /// representatives' own sites.
    #[must_use]
    pub fn pruned_site_count(&self, trace: &KernelTrace) -> u64 {
        self.representatives(trace)
            .iter()
            .map(|r| r.own_sites)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;
    use fsp_sim::{Launch, MemBlock, Simulator, Tracer};

    /// Kernel with iCnt diversity: even tids run a longer path, and CTA 0
    /// behaves differently from the rest (ctaid-dependent branch).
    fn diverse_trace() -> KernelTrace {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            cvt.u32.u16 $r2, %ctaid.x
            and.b32 $r3, $r1, 0x1
            set.eq.u32.u32 $p0/$o127, $r3, $r124
            @$p0.eq bra odd                     // odd threads skip the block
            add.u32 $r4, $r4, 0x1
            add.u32 $r4, $r4, 0x2
            add.u32 $r4, $r4, 0x3
            odd:
            set.eq.u32.u32 $p1/$o127, $r2, $r124
            @$p1.ne bra cta0                    // CTA 0 runs an extra block
            bra done
            cta0:
            add.u32 $r5, $r5, 0x1
            add.u32 $r5, $r5, 0x2
            done:
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p).grid(4, 1).block(8, 1, 1);
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut g = MemBlock::with_words(16);
        Simulator::new().run(&launch, &mut g, &mut tracer).unwrap();
        tracer.finish()
    }

    #[test]
    fn groups_ctas_by_mean_icnt() {
        let trace = diverse_trace();
        let grouping = ThreadGrouping::analyze(&trace);
        // CTA 0 differs from CTAs 1..3.
        assert_eq!(grouping.groups.len(), 2);
        assert_eq!(grouping.groups[0].ctas, vec![0]);
        assert_eq!(grouping.groups[1].ctas, vec![1, 2, 3]);
        assert_eq!(grouping.mismatched_threads, 0);
    }

    #[test]
    fn thread_groups_by_exact_icnt() {
        let trace = diverse_trace();
        let grouping = ThreadGrouping::analyze(&trace);
        for g in &grouping.groups {
            // Even vs odd threads -> two thread groups per CTA group.
            assert_eq!(g.thread_groups.len(), 2, "group {g:?}");
            // Within the rep CTA, 4 even + 4 odd members.
            assert!(g.thread_groups.iter().all(|tg| tg.members.len() == 4));
        }
        // Group covering CTAs 1..3 has population 12 per thread group.
        let big = &grouping.groups[1];
        assert!(big.thread_groups.iter().all(|tg| tg.population == 12));
    }

    #[test]
    fn weights_conserve_population() {
        let trace = diverse_trace();
        let grouping = ThreadGrouping::analyze(&trace);
        let reps = grouping.representatives(&trace);
        let covered: u64 = reps.iter().map(|r| r.covered_sites).sum();
        assert_eq!(covered, trace.total_fault_sites());
        let threads: u64 = reps.iter().map(|r| r.covered_threads).sum();
        assert_eq!(threads, u64::from(trace.num_threads()));
    }

    #[test]
    fn pruning_reduces_sites() {
        let trace = diverse_trace();
        let grouping = ThreadGrouping::analyze(&trace);
        let pruned = grouping.pruned_site_count(&trace);
        assert!(pruned < trace.total_fault_sites());
        assert_eq!(grouping.num_representatives(), 4);
    }

    #[test]
    fn distribution_key_is_at_least_as_fine() {
        let trace = diverse_trace();
        let by_mean = ThreadGrouping::analyze_with(&trace, CtaKey::MeanIcnt);
        let by_dist = ThreadGrouping::analyze_with(&trace, CtaKey::Distribution);
        assert!(by_dist.groups.len() >= by_mean.groups.len());
    }

    #[test]
    fn degenerate_group_accessors_return_zero() {
        // A group that covers nothing (e.g. deserialized from a truncated
        // report) must not divide by zero in its accessors.
        let empty = CtaGroup {
            mean_icnt_x1000: 0,
            ctas: Vec::new(),
            representative_cta: 0,
            thread_groups: Vec::new(),
        };
        assert_eq!(empty.mean_icnt(), 0.0);
        assert_eq!(empty.cta_proportion(0), 0.0);
        assert_eq!(empty.cta_proportion(4), 0.0);
        let one = CtaGroup {
            mean_icnt_x1000: 1500,
            ctas: vec![0],
            representative_cta: 0,
            thread_groups: Vec::new(),
        };
        assert_eq!(one.cta_proportion(0), 0.0, "zero-CTA launch stays finite");
        assert!((one.mean_icnt() - 1.5).abs() < 1e-12);
    }
}
