//! Protect jobs through the engine: the hardened kernel's `Detected`
//! outcomes must round-trip through the persistent store and the JSON
//! result document, and a warm resubmission of the same spec must read
//! everything from the store and reproduce the cold result byte for byte.

use std::path::PathBuf;
use std::time::Duration;

use fsp_serve::json::Json;
use fsp_serve::{run_local, Engine, EngineConfig, JobSpec};

const SAMPLES: usize = 300;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsp-protect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> JobSpec {
    // Full budget guarantees the compare groups see the sampled faults,
    // so the result document must carry a nonzero `detected` weight.
    JobSpec::protect("hotspot", 1.0, SAMPLES)
}

fn run_to_completion(engine: &Engine, spec: JobSpec) -> (String, Json) {
    let id = engine.submit(spec).unwrap();
    assert!(
        engine.wait_idle(Duration::from_secs(300)),
        "protect job never finished"
    );
    let status = engine.job_json(&id).expect("job known");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed"),
        "job must complete: {status}"
    );
    let result = engine.result_json(&id).expect("completed");
    (result.to_string(), status)
}

#[test]
fn protect_job_detected_outcomes_round_trip_cold_vs_warm() {
    let dir = tmp_dir("roundtrip");

    // Cold: every site of both campaigns is injected.
    let engine = Engine::open(EngineConfig::new(&dir).job_workers(1)).unwrap();
    let (cold, cold_status) = run_to_completion(&engine, spec());
    engine.shutdown();
    drop(engine);

    let parsed = Json::parse(&cold).unwrap();
    let profile = parsed.get("profile").expect("profile in result");
    let detected = profile
        .get("detected")
        .and_then(Json::as_f64)
        .expect("protect result must expose a detected weight");
    assert!(
        detected > 0.0,
        "full-budget DMR must detect some injected faults"
    );
    // Weight conservation: the outcome classes partition the sampled
    // population exactly (Eq. 1 over the sample; crashes and hangs are
    // subsets of `other`).
    let total: f64 = ["masked", "sdc", "other", "detected"]
        .iter()
        .map(|k| profile.get(k).and_then(Json::as_f64).unwrap())
        .sum();
    assert!(
        (total - SAMPLES as f64).abs() < 1e-9,
        "profile weights must sum to the sample population, got {total}"
    );
    // The result is keyed under the hardened program, not the baseline.
    let unprotected_fp = fsp_workloads::by_id("hotspot", fsp_workloads::Scale::Eval)
        .unwrap()
        .fingerprint();
    assert_ne!(
        parsed.get("fingerprint").and_then(Json::as_u64),
        Some(unprotected_fp),
        "protect results must carry the hardened kernel's fingerprint"
    );
    // A protect job runs two campaigns over the same sample.
    assert_eq!(
        cold_status.get("total").and_then(Json::as_u64),
        Some(2 * SAMPLES as u64)
    );

    // Warm: a fresh engine over the same store resubmits the same spec.
    // Planning is deterministic, so both campaigns are pure store reads
    // and the result document is byte-identical.
    let engine = Engine::open(EngineConfig::new(&dir).job_workers(1)).unwrap();
    let (warm, warm_status) = run_to_completion(&engine, spec());
    engine.shutdown();

    assert_eq!(
        warm, cold,
        "warm resubmission must reproduce the cold result byte for byte"
    );
    assert_eq!(
        warm_status.get("cache_hits").and_then(Json::as_u64),
        Some(2 * SAMPLES as u64),
        "warm protect job must resolve every site of both campaigns from the store"
    );

    // Library-path parity: `fsp submit --local` of the same spec produces
    // the same canonical result document without any store.
    let local = run_local(&spec(), 2).unwrap().to_string();
    assert_eq!(local, cold, "run_local must match the service result");

    let _ = std::fs::remove_dir_all(&dir);
}
