//! Kill-and-resume: an engine stopped mid-job must, after reopening on
//! the same data directory, finish the job from the outcome store and
//! produce a profile bit-identical to an uninterrupted run's.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use fsp_serve::json::Json;
use fsp_serve::{Engine, EngineConfig, JobSpec};

const SAMPLES: usize = 2000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsp-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> JobSpec {
    JobSpec::sampled("gemm", SAMPLES)
}

/// Runs the spec to completion on a fresh engine; returns the canonical
/// result document text.
fn uninterrupted(dir: &PathBuf) -> String {
    let engine = Engine::open(EngineConfig::new(dir).job_workers(1)).unwrap();
    let id = engine.submit(spec()).unwrap();
    assert!(
        engine.wait_idle(Duration::from_secs(300)),
        "job never finished"
    );
    let result = engine.result_json(&id).expect("completed").to_string();
    engine.shutdown();
    result
}

#[test]
fn killed_engine_resumes_and_matches_uninterrupted_run() {
    let reference_dir = tmp_dir("reference");
    let reference = uninterrupted(&reference_dir);

    // Interrupted run: same spec, different data dir. Stop the engine once
    // the job is visibly mid-campaign; `shutdown` is deliberately
    // crash-shaped (does not wait for the job).
    let dir = tmp_dir("killed");
    let engine = Engine::open(EngineConfig::new(&dir).job_workers(1)).unwrap();
    let id = engine.submit(spec()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let done = engine
            .job_json(&id)
            .and_then(|j| j.get("done").and_then(Json::as_u64))
            .unwrap_or(0) as usize;
        if done >= SAMPLES / 10 {
            break;
        }
        assert!(Instant::now() < deadline, "job made no progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.shutdown();
    let status = engine.job_json(&id).expect("job known");
    let done = status.get("done").and_then(Json::as_u64).unwrap() as usize;
    assert!(
        done < SAMPLES,
        "engine outlived the whole campaign ({done}/{SAMPLES}); nothing to resume"
    );
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("running"),
        "an interrupted job stays running on disk"
    );
    drop(engine);

    // Reopen: the job requeues, drains the store, and finishes.
    let engine = Engine::open(EngineConfig::new(&dir).job_workers(1)).unwrap();
    assert!(
        engine.wait_idle(Duration::from_secs(300)),
        "resume never finished"
    );
    let status = engine.job_json(&id).expect("job survived restart");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed")
    );
    let hits = status.get("cache_hits").and_then(Json::as_u64).unwrap();
    assert!(
        hits > 0,
        "resume must reuse pre-kill outcomes from the store"
    );
    let resumed = engine.result_json(&id).expect("completed").to_string();
    engine.shutdown();

    assert_eq!(
        resumed, reference,
        "resumed result must be byte-identical to an uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&reference_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
