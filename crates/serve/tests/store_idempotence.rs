//! Property test for the outcome store under fleet-shaped duplication.
//!
//! The at-least-once delivery of the lease protocol means the store must
//! absorb the same chunk of records **any number of times**, interleaved
//! with checkpoint/recover cycles at arbitrary points, and end up in a
//! state indistinguishable from a single clean application. If this ever
//! breaks, stolen-lease rival submissions would corrupt resumed campaigns.

use std::path::PathBuf;

use fsp_inject::FaultSite;
use fsp_serve::{OutcomeKey, OutcomeStore};
use fsp_stats::Outcome;
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsp-store-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One generated chunk record: raw site coordinates plus an outcome pick.
fn record_strategy() -> impl Strategy<Value = (u32, u32, u32, Outcome)> {
    (0u32..512, 0u32..4096, 0u32..32).prop_map(|(tid, dyn_idx, bit)| {
        // Derive the outcome from the site so duplicated sites in a chunk
        // always agree, exactly like the deterministic simulator.
        let pick = (tid ^ dyn_idx ^ bit) % 4;
        let outcome = [Outcome::Masked, Outcome::Sdc, Outcome::CRASH, Outcome::HANG][pick as usize];
        (tid, dyn_idx, bit, outcome)
    })
}

fn keyed(fingerprint: u64, launch: u64, r: &(u32, u32, u32, Outcome)) -> (OutcomeKey, Outcome) {
    let site = FaultSite {
        tid: r.0,
        dyn_idx: r.1,
        bit: r.2,
    };
    (
        OutcomeKey {
            fingerprint,
            launch,
            model: 0,
            site,
        },
        r.3,
    )
}

/// Reads back every key and the length — the store's whole observable
/// state from the engine's point of view.
fn observe(store: &OutcomeStore, keys: &[(OutcomeKey, Outcome)]) -> (usize, Vec<Option<Outcome>>) {
    (
        store.len(),
        keys.iter().map(|(k, _)| store.get(k)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replayed_chunks_recover_to_the_clean_store(
        chunk in proptest::collection::vec(record_strategy(), 1..40),
        fingerprint in any::<u64>(),
        launch in any::<u64>(),
        // Each replay optionally checkpoints, then always reopens the
        // store from disk (a crash/recover boundary between deliveries).
        schedule in proptest::collection::vec(any::<bool>(), 1..6),
    ) {
        let records: Vec<(OutcomeKey, Outcome)> =
            chunk.iter().map(|r| keyed(fingerprint, launch, r)).collect();

        // Reference: one clean application.
        let clean_dir = tmp_dir("clean");
        let mut clean = OutcomeStore::open(&clean_dir).expect("open clean store");
        for (key, outcome) in &records {
            clean.insert(*key, *outcome).expect("insert");
        }
        clean.flush().expect("flush");
        let reference = observe(&clean, &records);

        // Replayed: the same chunk delivered once per schedule entry,
        // with a recovery boundary (and sometimes a checkpoint) between
        // deliveries.
        let replay_dir = tmp_dir("replay");
        let mut store = OutcomeStore::open(&replay_dir).expect("open replay store");
        for checkpoint in &schedule {
            for (key, outcome) in &records {
                store.insert(*key, *outcome).expect("insert replay");
            }
            store.flush().expect("flush replay");
            if *checkpoint {
                store.checkpoint().expect("checkpoint");
            }
            drop(store);
            store = OutcomeStore::open(&replay_dir).expect("recover store");
        }

        let recovered = observe(&store, &records);
        prop_assert_eq!(&recovered, &reference, "replayed store diverged from clean store");
        // Duplicates are invisible: the store holds exactly the distinct
        // keys, never one record per delivery.
        let distinct = records
            .iter()
            .map(|(k, _)| k.site)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        prop_assert_eq!(recovered.0, distinct);

        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&replay_dir);
    }
}
