//! A minimal HTTP/1.1 server over `std::net` exposing the engine.
//!
//! | Method | Path                     | Body / response                        |
//! |--------|--------------------------|----------------------------------------|
//! | POST   | `/jobs`                  | job spec JSON (+ optional `"fleet"`) → `{"id": "job-n"}` |
//! | GET    | `/jobs`                  | array of job status documents          |
//! | GET    | `/jobs/:id`              | job status document                    |
//! | GET    | `/jobs/:id/progress`     | live per-outcome estimates + intervals |
//! | GET    | `/jobs/:id/result`       | canonical result document (409 early)  |
//! | POST   | `/jobs/:id/cancel`       | `{"cancelled": true}`                  |
//! | POST   | `/leases`                | `{"worker": name}` → lease grant or `{"lease": null, "pending": n}` |
//! | POST   | `/leases/:id/heartbeat`  | `{"worker": name}` → `{"ttl_ms": n}` (404 gone, 409 stolen) |
//! | POST   | `/leases/:id/outcomes`   | checksummed outcome frame → `{"accepted": n}` |
//! | GET    | `/fleet`                 | fleet status (chunks, workers)         |
//! | GET    | `/kernels`               | kernel registry with fingerprints      |
//! | GET    | `/metrics`               | Prometheus text exposition             |
//! | GET    | `/trace`                 | Chrome trace-event JSON (span timeline) |
//! | GET    | `/dashboard`             | self-contained live-monitoring page    |
//!
//! Connections are `Connection: close`, one thread per request — campaign
//! throughput, not HTTP throughput, is the bottleneck by design. Every
//! connection gets a read/write deadline ([`SOCKET_TIMEOUT`]) so a stalled
//! or half-open peer cannot pin its handler thread forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{kernels_json, Engine, ResultError};
use crate::job::JobSpec;
use crate::json::Json;

/// Largest accepted request body (a job spec is tiny; the largest outcome
/// frame — a full lease chunk of hex-armored 32-byte records — stays well
/// under this).
const MAX_BODY: usize = 1 << 20;

/// Per-connection socket deadline, applied to both reads and writes. One
/// slow, stalled or half-open client (a worker dying mid-request, a
/// dropped network link) would otherwise pin its handler thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound, not-yet-serving HTTP server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7071"`, or port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Engine>) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
        })
    }

    /// The bound address (useful with ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread.
    pub fn run(self) {
        let stop = AtomicBool::new(false);
        serve_until(&self.listener, &self.engine, &stop);
    }

    /// Serves on a background thread; the handle stops it cleanly.
    ///
    /// # Errors
    ///
    /// Propagates address lookup or thread-spawn failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("fsp-http".to_owned())
                .spawn(move || serve_until(&self.listener, &self.engine, &stop))?
        };
        Ok(ServerHandle { addr, stop, thread })
    }
}

/// Handle to a background server started by [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Does not touch
    /// the engine — shut that down separately.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() call.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

fn serve_until(listener: &TcpListener, engine: &Arc<Engine>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match stream {
            Ok(stream) => {
                // A stalled client must never pin its handler thread:
                // bound every socket operation. `Some(..)` is never zero,
                // so set_* cannot fail with InvalidInput.
                let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                let engine = Arc::clone(engine);
                let spawned = std::thread::Builder::new()
                    .name("fsp-http-conn".to_owned())
                    .spawn(move || {
                        if let Err(e) = handle_connection(stream, &engine) {
                            // Deadline expiries are routine (slow or gone
                            // peers); close silently rather than spam.
                            if !matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) {
                                eprintln!("fsp-serve: connection error: {e}");
                            }
                        }
                    });
                if let Err(e) = spawned {
                    eprintln!("fsp-serve: spawning connection handler failed: {e}");
                }
            }
            Err(e) => eprintln!("fsp-serve: accept failed: {e}"),
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(()); // e.g. the wake-up connection from ServerHandle::stop
    };
    let (method, path) = (method.to_owned(), path.to_owned());

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line
            .split_once(':')
            .filter(|(name, _)| name.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.trim())
        {
            content_length = value.parse().unwrap_or(0);
        }
    }
    let body = if content_length > 0 && content_length <= MAX_BODY {
        let mut buf = vec![0u8; content_length];
        reader.read_exact(&mut buf)?;
        String::from_utf8_lossy(&buf).into_owned()
    } else {
        String::new()
    };

    let (status, content_type, response_body) = {
        let _request = fsp_obs::span_labeled("http.request", format!("{method} {path}"));
        route(engine, &method, &path, &body)
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    };
    let stream = reader.get_mut();
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{response_body}",
        response_body.len()
    )?;
    stream.flush()
}

fn error_body(message: &str) -> String {
    Json::obj([("error", Json::Str(message.to_owned()))]).to_string()
}

const JSON: &str = "application/json";

fn route(engine: &Engine, method: &str, path: &str, body: &str) -> (u16, &'static str, String) {
    match (method, path) {
        ("POST", "/jobs") => match Json::parse(body).and_then(|v| {
            let fleet = v.get("fleet").and_then(Json::as_bool).unwrap_or(false);
            JobSpec::from_json(&v).and_then(|spec| engine.submit_with(spec, fleet))
        }) {
            Ok(id) => (200, JSON, Json::obj([("id", Json::Str(id))]).to_string()),
            Err(e) => (400, JSON, error_body(&e)),
        },
        ("GET", "/jobs") => (200, JSON, engine.jobs_json().to_string()),
        ("POST", "/leases") => match Json::parse(body) {
            Ok(v) => {
                let worker = v
                    .get("worker")
                    .and_then(Json::as_str)
                    .unwrap_or("anonymous");
                (200, JSON, engine.fleet_acquire(worker).to_string())
            }
            Err(e) => (400, JSON, error_body(&e)),
        },
        ("POST", _) if path.starts_with("/leases/") && path.ends_with("/heartbeat") => {
            let id = &path["/leases/".len()..path.len() - "/heartbeat".len()];
            match Json::parse(body) {
                Ok(v) => {
                    let worker = v
                        .get("worker")
                        .and_then(Json::as_str)
                        .unwrap_or("anonymous");
                    let (status, response) = engine.fleet_heartbeat(id, worker);
                    (status, JSON, response.to_string())
                }
                Err(e) => (400, JSON, error_body(&e)),
            }
        }
        ("POST", _) if path.starts_with("/leases/") && path.ends_with("/outcomes") => {
            let id = &path["/leases/".len()..path.len() - "/outcomes".len()];
            match Json::parse(body) {
                Ok(v) => {
                    let (status, response) = engine.fleet_submit_outcomes(id, &v);
                    (status, JSON, response.to_string())
                }
                Err(e) => (400, JSON, error_body(&e)),
            }
        }
        ("GET", "/fleet") => (200, JSON, engine.fleet_status_json().to_string()),
        ("GET", "/kernels") => (200, JSON, kernels_json().to_string()),
        ("GET", "/metrics") => (200, "text/plain; version=0.0.4", engine.metrics_text()),
        ("GET", "/dashboard") => (
            200,
            "text/html; charset=utf-8",
            crate::dashboard::PAGE.to_owned(),
        ),
        ("GET", "/trace") => (200, JSON, engine.trace_json()),
        ("GET", _) if path.starts_with("/jobs/") && path.ends_with("/progress") => {
            let id = &path["/jobs/".len()..path.len() - "/progress".len()];
            match engine.progress_json(id) {
                Some(progress) => (200, JSON, progress.to_string()),
                None => (404, JSON, error_body("no such job")),
            }
        }
        ("GET", _) if path.starts_with("/jobs/") && path.ends_with("/result") => {
            let id = &path["/jobs/".len()..path.len() - "/result".len()];
            match engine.result_json(id) {
                Ok(result) => (200, JSON, result.to_string()),
                Err(ResultError::NotFound) => (404, JSON, error_body("no such job")),
                Err(ResultError::NotReady(state)) => (
                    409,
                    JSON,
                    Json::obj([
                        ("error", Json::Str("job not completed".to_owned())),
                        ("state", Json::Str(state.name().to_owned())),
                    ])
                    .to_string(),
                ),
                Err(ResultError::Failed(e)) => (500, JSON, error_body(&e)),
            }
        }
        ("POST", _) if path.starts_with("/jobs/") && path.ends_with("/cancel") => {
            let id = &path["/jobs/".len()..path.len() - "/cancel".len()];
            if engine.cancel(id) {
                (
                    200,
                    JSON,
                    Json::obj([("cancelled", Json::Bool(true))]).to_string(),
                )
            } else {
                (409, JSON, error_body("job not cancellable"))
            }
        }
        ("GET", _) if path.starts_with("/jobs/") => {
            match engine.job_json(&path["/jobs/".len()..]) {
                Some(job) => (200, JSON, job.to_string()),
                None => (404, JSON, error_body("no such job")),
            }
        }
        ("GET" | "POST", _) => (404, JSON, error_body("no such route")),
        _ => (405, JSON, error_body("method not allowed")),
    }
}
