//! A minimal blocking HTTP client for the service, used by `fsp submit`,
//! `fsp status` and `fsp fetch`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::job::JobSpec;
use crate::json::Json;

/// Client for one fsp-serve instance.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7071"`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side rejections (as their message).
    pub fn submit(&self, spec: &JobSpec) -> Result<String, String> {
        let body =
            expect_json(self.request("POST", "/jobs", Some(&spec.to_json().to_string()))?)?;
        body.get("id")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| "malformed submit response".to_owned())
    }

    /// Submits a job for fleet execution: the campaign is sharded into
    /// leases drained by `fsp worker` processes instead of the server's
    /// in-process pool. Returns its id.
    ///
    /// # Errors
    ///
    /// Transport failures and server-side rejections (as their message).
    pub fn submit_fleet(&self, spec: &JobSpec) -> Result<String, String> {
        let mut doc = spec.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("fleet".to_owned(), Json::Bool(true)));
        }
        let body = expect_json(self.request("POST", "/jobs", Some(&doc.to_string()))?)?;
        body.get("id")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| "malformed submit response".to_owned())
    }

    /// The fleet status document (`GET /fleet`): chunk counts by state
    /// and per-worker lease/heartbeat/throughput counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn fleet_status(&self) -> Result<Json, String> {
        expect_json(self.request("GET", "/fleet", None)?)
    }

    /// The job's status document.
    ///
    /// # Errors
    ///
    /// Transport failures and 4xx/5xx responses.
    pub fn status(&self, id: &str) -> Result<Json, String> {
        expect_json(self.request("GET", &format!("/jobs/{id}"), None)?)
    }

    /// The job's live statistical progress document: per-outcome point
    /// estimates with confidence intervals, achieved-vs-requested margin
    /// and projected sites remaining.
    ///
    /// # Errors
    ///
    /// Transport failures and 4xx/5xx responses.
    pub fn progress(&self, id: &str) -> Result<Json, String> {
        expect_json(self.request("GET", &format!("/jobs/{id}/progress"), None)?)
    }

    /// The canonical result document of a completed job.
    ///
    /// # Errors
    ///
    /// Transport failures; 409 (not completed yet) surfaces the state.
    pub fn result(&self, id: &str) -> Result<Json, String> {
        expect_json(self.request("GET", &format!("/jobs/{id}/result"), None)?)
    }

    /// Polls until the job leaves the queued/running states, then returns
    /// its final status document. Polling backs off exponentially with
    /// jitter (the fleet retry schedule, [`fsp_fleet::Backoff`]): quick
    /// first checks for short jobs, a capped gentle cadence for long ones,
    /// and decorrelated load when many clients wait at once.
    ///
    /// # Errors
    ///
    /// Transport failures, or `timeout` elapsing first.
    pub fn wait(&self, id: &str, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        let mut backoff = fsp_fleet::Backoff::poll(fsp_fleet::wire::frame_fnv(id.as_bytes()));
        loop {
            let status = self.status(id)?;
            match status.get("state").and_then(Json::as_str) {
                Some("queued" | "running") => {}
                Some(_) => return Ok(status),
                None => return Err("status document missing `state`".to_owned()),
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(format!("timed out waiting for {id}"));
            }
            // Never sleep past the caller's deadline.
            std::thread::sleep(backoff.next_delay().min(deadline - now));
        }
    }

    /// Requests cancellation of a job.
    ///
    /// # Errors
    ///
    /// Transport failures and non-cancellable states.
    pub fn cancel(&self, id: &str) -> Result<(), String> {
        expect_json(self.request("POST", &format!("/jobs/{id}/cancel"), None)?).map(|_| ())
    }

    /// Status documents of every job on the server.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn jobs(&self) -> Result<Json, String> {
        expect_json(self.request("GET", "/jobs", None)?)
    }

    /// The kernel registry with fingerprints.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn kernels(&self) -> Result<Json, String> {
        expect_json(self.request("GET", "/kernels", None)?)
    }

    /// The raw Prometheus metrics text.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&self) -> Result<String, String> {
        let (status, body) = self.request("GET", "/metrics", None)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(format!("GET /metrics returned {status}"))
        }
    }

    /// The live span timeline as Chrome trace-event JSON (requires the
    /// server to run with tracing enabled — `fsp serve --trace`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace(&self) -> Result<String, String> {
        let (status, body) = self.request("GET", "/trace", None)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(format!("GET /trace returned {status}"))
        }
    }

    /// One scrape value from `/metrics` (e.g. `"fsp_cache_hits_total"`).
    ///
    /// # Errors
    ///
    /// Transport failures or an absent metric.
    pub fn metric(&self, name: &str) -> Result<f64, String> {
        self.metrics()?
            .lines()
            .find_map(|l| {
                l.strip_prefix(name)
                    .and_then(|rest| rest.strip_prefix(' '))
                    .and_then(|v| v.trim().parse().ok())
            })
            .ok_or_else(|| format!("metric `{name}` not exposed"))
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to {}: {e}", self.addr))?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        )
        .map_err(|e| format!("sending request: {e}"))?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| format!("reading response: {e}"))?;
        let (head, response_body) = response
            .split_once("\r\n\r\n")
            .ok_or("truncated HTTP response")?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or("malformed status line")?;
        Ok((status, response_body.to_owned()))
    }
}

fn expect_json((status, body): (u16, String)) -> Result<Json, String> {
    let value = Json::parse(&body).map_err(|e| format!("malformed response ({status}): {e}"))?;
    if status == 200 {
        Ok(value)
    } else {
        let detail = value
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown error");
        let state = value
            .get("state")
            .and_then(Json::as_str)
            .map(|s| format!(" (state: {s})"))
            .unwrap_or_default();
        Err(format!("server returned {status}: {detail}{state}"))
    }
}
