//! The resumable job engine: a bounded worker pool draining a queue of
//! campaign jobs against the persistent outcome store.
//!
//! # Resume protocol
//!
//! A job is persisted to `jobs/<id>.json` on every state transition, and
//! every injected outcome is persisted to the outcome store chunk by
//! chunk. A crash (or [`Engine::shutdown`], which deliberately behaves
//! like one for in-flight work) therefore loses nothing but liveness: on
//! the next [`Engine::open`], jobs still marked queued/running are
//! requeued, re-planned (planning is deterministic), and their campaign
//! re-run — at which point every site injected before the crash is a
//! store hit, so the engine only executes the remainder. A completed
//! job's profile is recomputed from the full outcome vector in site
//! order, making it bit-identical to an uninterrupted run's.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fsp_core::{PruningConfig, PruningPipeline};
use fsp_fleet::lease::{ChunkSpec, FleetConfig, LeaseTable, Submission};
use fsp_fleet::wire::{OutcomeFrame, TraceFrame};
use fsp_inject::{CampaignObserver, Experiment, InjectionTarget, WeightedSite};
use fsp_protect::{
    harden, harden_and_verify, plan_protection, remap_sites, HardenConfig, PlanInputs,
    ProtectScope, ProtectedTarget,
};
use fsp_stats::stream::{EarlyStop, StopRule, StreamEstimator};
use fsp_stats::{Outcome, ResilienceProfile};
use fsp_workloads::{program_fingerprint, Scale, Workload};

/// Launch-hash component of store keys and result documents: the
/// workload's launch-configuration hash mixed with the outcome
/// classifier's calibration ([`fsp_inject::classifier_hash`]), the
/// static analysis version ([`fsp_analyze::absint_version`]), *and* the
/// batched-injection format tag ([`fsp_inject::batch_version`]), so
/// outcomes persisted under a different hang-budget calibration — or
/// planned by an older abstract-interpretation semantics, or produced by
/// an incompatible lane-batching scheme — miss instead of being served
/// as current.
fn keyed_launch_hash(w: &Workload) -> u64 {
    w.launch_hash()
        ^ fsp_inject::classifier_hash()
        ^ fsp_analyze::absint_version()
        ^ fsp_inject::batch_version()
}
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::job::{
    CampaignMode, EarlyStopReport, JobRecord, JobResult, JobSpec, JobState, StopSpec,
};
use crate::json::Json;
use crate::metrics::{mode_index, Metrics};
use crate::store::{OutcomeKey, OutcomeStore};

/// Log records accumulated before the engine folds them into a fresh
/// checkpoint (bounds recovery replay time).
const CHECKPOINT_EVERY: u64 = 100_000;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Root of the persistent state (`store/` and `jobs/` live here).
    pub data_dir: PathBuf,
    /// Concurrent jobs (the bounded worker pool).
    pub job_workers: usize,
    /// OS threads per job's injection campaign.
    pub campaign_workers: usize,
    /// Lease TTL and chunk granularity for fleet-executed jobs.
    pub fleet: FleetConfig,
    /// Enable the span tracer at engine start (`GET /trace` then serves a
    /// live Chrome trace; fleet grants instruct workers to trace too).
    pub trace: bool,
}

impl EngineConfig {
    /// Defaults: the worker pool spans the machine
    /// (`available_parallelism`), one campaign thread per job worker.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> EngineConfig {
        EngineConfig {
            data_dir: data_dir.into(),
            job_workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            campaign_workers: 1,
            fleet: FleetConfig::default(),
            trace: false,
        }
    }

    /// Enables (or disables) the span tracer at engine start.
    #[must_use]
    pub fn trace(mut self, on: bool) -> EngineConfig {
        self.trace = on;
        self
    }

    /// Overrides the worker-pool width (`0` is clamped to 1).
    #[must_use]
    pub fn job_workers(mut self, n: usize) -> EngineConfig {
        self.job_workers = n.max(1);
        self
    }

    /// Overrides the fleet lease TTL (heartbeat deadline).
    #[must_use]
    pub fn lease_ttl(mut self, ttl: Duration) -> EngineConfig {
        self.fleet.lease_ttl = ttl;
        self
    }

    /// Overrides the fleet chunk granularity (`0` is clamped to 1).
    #[must_use]
    pub fn chunk_sites(mut self, n: usize) -> EngineConfig {
        self.fleet.chunk_sites = n.max(1);
        self
    }
}

/// Why `GET /jobs/:id/result` cannot produce a result yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultError {
    /// No such job.
    NotFound,
    /// The job exists but is not completed; carries its current state.
    NotReady(JobState),
    /// The job failed, with its error message.
    Failed(String),
}

struct Shared {
    jobs_dir: PathBuf,
    store: Mutex<OutcomeStore>,
    jobs: Mutex<BTreeMap<String, JobRecord>>,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    cancel_flags: Mutex<HashMap<String, Arc<AtomicBool>>>,
    metrics: Metrics,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    campaign_workers: usize,
    leases: LeaseTable,
}

/// The campaign orchestration engine. Open one per data directory; share
/// it (via `Arc`) with the HTTP server.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("jobs_dir", &self.shared.jobs_dir)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Opens the engine over `data_dir`: recovers the outcome store,
    /// reloads persisted jobs, requeues unfinished ones and starts the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from store recovery or directory creation.
    pub fn open(config: EngineConfig) -> std::io::Result<Engine> {
        let EngineConfig {
            data_dir,
            job_workers,
            campaign_workers,
            fleet,
            trace,
        } = config;
        if trace {
            fsp_obs::set_tracing(true);
        }
        let store = OutcomeStore::open(data_dir.join("store"))?;
        let jobs_dir = data_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)?;

        let mut jobs = BTreeMap::new();
        let mut max_id = 0u64;
        let mut requeue: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&jobs_dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let record = match Json::parse(&text).and_then(|v| JobRecord::from_json(&v)) {
                Ok(record) => record,
                Err(e) => {
                    eprintln!(
                        "fsp-serve: skipping unreadable job file {}: {e}",
                        path.display()
                    );
                    continue;
                }
            };
            if let Some(n) = record.id.strip_prefix("job-").and_then(|n| n.parse().ok()) {
                max_id = max_id.max(n);
            }
            if record.state.is_active() {
                requeue.push(record.id.clone());
            }
            jobs.insert(record.id.clone(), record);
        }
        // Oldest first, so recovery preserves submission order.
        requeue.sort_by_key(|id| {
            id.strip_prefix("job-")
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(u64::MAX)
        });

        let shared = Arc::new(Shared {
            jobs_dir,
            store: Mutex::new(store),
            jobs: Mutex::new(jobs),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cancel_flags: Mutex::new(HashMap::new()),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(max_id + 1),
            campaign_workers: campaign_workers.max(1),
            leases: LeaseTable::new(fleet),
        });
        {
            let mut jobs = shared.jobs.lock().expect("engine poisoned");
            let mut queue = shared.queue.lock().expect("engine poisoned");
            for id in requeue {
                if let Some(record) = jobs.get_mut(&id) {
                    record.state = JobState::Queued;
                    persist(&shared.jobs_dir, record);
                    queue.push_back(id);
                }
            }
        }

        let engine = Engine {
            shared: Arc::clone(&shared),
            workers: Mutex::new(Vec::new()),
        };
        let mut workers = engine.workers.lock().expect("engine poisoned");
        for i in 0..job_workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fsp-job-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning job worker"),
            );
        }
        drop(workers);
        Ok(engine)
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// Rejects unknown kernels (with the known ids in the message).
    pub fn submit(&self, spec: JobSpec) -> Result<String, String> {
        self.submit_with(spec, false)
    }

    /// Submits a job, optionally placing its campaign on the worker fleet
    /// (leased chunks drained by `fsp worker` processes) instead of the
    /// in-process pool. Protect jobs ignore the placement flag: their
    /// re-injection campaign targets a hardened program workers cannot
    /// re-derive from a kernel id, so they always run in-process.
    ///
    /// # Errors
    ///
    /// Rejects unknown kernels (with the known ids in the message).
    pub fn submit_with(&self, spec: JobSpec, fleet: bool) -> Result<String, String> {
        if fsp_workloads::by_id(&spec.kernel, Scale::Eval).is_none() {
            return Err(format!(
                "unknown kernel `{}` (try: {})",
                spec.kernel,
                fsp_workloads::registry_ids().join(", ")
            ));
        }
        if spec.stop.is_some() && matches!(spec.mode, CampaignMode::Protect { .. }) {
            return Err("early stopping is not supported for protect jobs".to_owned());
        }
        let id = format!(
            "job-{}",
            self.shared.next_id.fetch_add(1, Ordering::Relaxed)
        );
        let mut record = JobRecord::new(id.clone(), spec);
        record.fleet = fleet && !matches!(record.spec.mode, CampaignMode::Protect { .. });
        {
            let mut jobs = self.shared.jobs.lock().expect("engine poisoned");
            persist(&self.shared.jobs_dir, &record);
            jobs.insert(id.clone(), record);
        }
        self.shared
            .queue
            .lock()
            .expect("engine poisoned")
            .push_back(id.clone());
        self.shared.queue_cv.notify_one();
        self.shared.metrics.jobs_submitted.inc();
        Ok(id)
    }

    /// The job's full status document, or `None` if unknown.
    #[must_use]
    pub fn job_json(&self, id: &str) -> Option<Json> {
        self.shared
            .jobs
            .lock()
            .expect("engine poisoned")
            .get(id)
            .map(JobRecord::to_json)
    }

    /// The live statistical progress document (`GET /jobs/:id/progress`),
    /// or `None` if unknown. Assembled from the job record's per-outcome
    /// counters, so in-process and fleet jobs render identically.
    #[must_use]
    pub fn progress_json(&self, id: &str) -> Option<Json> {
        self.shared
            .jobs
            .lock()
            .expect("engine poisoned")
            .get(id)
            .map(crate::job::progress_to_json)
    }

    /// Status documents of every known job, in id order.
    #[must_use]
    pub fn jobs_json(&self) -> Json {
        Json::Arr(
            self.shared
                .jobs
                .lock()
                .expect("engine poisoned")
                .values()
                .map(JobRecord::to_json)
                .collect(),
        )
    }

    /// The canonical result document of a completed job.
    ///
    /// # Errors
    ///
    /// [`ResultError`] when the job is unknown, unfinished or failed.
    pub fn result_json(&self, id: &str) -> Result<Json, ResultError> {
        let jobs = self.shared.jobs.lock().expect("engine poisoned");
        let record = jobs.get(id).ok_or(ResultError::NotFound)?;
        match (&record.result, record.state) {
            (Some(result), JobState::Completed) => {
                Ok(crate::job::result_to_json(&record.spec, result))
            }
            (_, JobState::Failed) => Err(ResultError::Failed(
                record.error.clone().unwrap_or_else(|| "failed".to_owned()),
            )),
            (_, state) => Err(ResultError::NotReady(state)),
        }
    }

    /// Requests cancellation: queued jobs cancel immediately, running jobs
    /// at their next chunk boundary. Returns whether a cancellation was
    /// initiated.
    pub fn cancel(&self, id: &str) -> bool {
        let mut jobs = self.shared.jobs.lock().expect("engine poisoned");
        match jobs.get_mut(id).map(|r| r.state) {
            Some(JobState::Queued) => {
                let record = jobs.get_mut(id).expect("checked above");
                record.state = JobState::Cancelled;
                persist(&self.shared.jobs_dir, record);
                self.shared.metrics.jobs_cancelled.inc();
                true
            }
            Some(JobState::Running) => {
                let flags = self.shared.cancel_flags.lock().expect("engine poisoned");
                flags.get(id).is_some_and(|flag| {
                    flag.store(true, Ordering::Relaxed);
                    true
                })
            }
            _ => false,
        }
    }

    /// Grants a lease to `worker`, requeuing expired leases first
    /// (`POST /leases`). When nothing is available the body carries the
    /// count of still-pending chunks so idle workers can tell a drained
    /// fleet from a fully-leased one.
    #[must_use]
    pub fn fleet_acquire(&self, worker: &str) -> Json {
        let acquired = self.shared.leases.acquire(worker);
        match acquired.grant {
            Some(grant) => {
                fsp_obs::instant(
                    "serve.lease.grant",
                    Some(format!("{worker} {}", grant.lease)),
                );
                grant.to_json()
            }
            None => Json::obj([
                ("lease", Json::Null),
                ("pending", Json::u64(acquired.pending as u64)),
            ]),
        }
    }

    /// Renews a lease's deadline (`POST /leases/:id/heartbeat`). Returns
    /// `(status, body)`: 404 for a lease that no longer exists, 409 for
    /// one stolen by another worker — either way the renewing worker
    /// should abandon the chunk.
    #[must_use]
    pub fn fleet_heartbeat(&self, lease: &str, worker: &str) -> (u16, Json) {
        match self.shared.leases.heartbeat(lease, worker) {
            Ok(ttl) => (
                200,
                Json::obj([("ttl_ms", Json::u64(ttl.as_millis() as u64))]),
            ),
            Err(fsp_fleet::HeartbeatError::Unknown) => (404, error_json("unknown lease")),
            Err(fsp_fleet::HeartbeatError::NotHolder) => {
                (409, error_json("lease stolen by another worker"))
            }
        }
    }

    /// Accepts a worker's outcome frame (`POST /leases/:id/outcomes`).
    ///
    /// Every record is validated against the lease's key fields, then
    /// persisted to the outcome store *before* the lease is marked done —
    /// the store is the durability boundary, so a coordinator crash after
    /// this call can never lose an acknowledged chunk. Duplicate and
    /// stale deliveries (the normal weather of at-least-once delivery)
    /// return 200 with `accepted: 0` so workers move on quietly.
    #[must_use]
    pub fn fleet_submit_outcomes(&self, lease: &str, body: &Json) -> (u16, Json) {
        let frame = match OutcomeFrame::from_json(body) {
            Ok(frame) => frame,
            Err(e) => return (400, error_json(&e)),
        };
        let Some(meta) = self.shared.leases.meta(lease) else {
            return (
                200,
                Json::obj([("accepted", Json::u64(0)), ("stale", Json::Bool(true))]),
            );
        };
        let model = meta.model.code();
        if frame.records.iter().any(|(k, _)| {
            k.fingerprint != meta.fingerprint || k.launch != meta.launch || k.model != model
        }) {
            return (
                400,
                error_json("frame records do not match the lease's campaign"),
            );
        }
        // Re-anchor any spans the worker shipped with the frame onto this
        // process's clock (see [`TraceFrame`]) so `GET /trace` renders a
        // single cross-process timeline.
        if fsp_obs::tracing_enabled() {
            match TraceFrame::from_json(body) {
                Ok(Some(trace)) => {
                    let events: Vec<fsp_obs::Event> = trace
                        .spans
                        .iter()
                        .map(|s| fsp_obs::Event {
                            process: None,
                            tid: s.tid,
                            name: s.name.clone().into(),
                            label: s.label.clone(),
                            start_ns: u64::try_from(trace.grant_ns.cast_signed() + s.rel_ns)
                                .unwrap_or(0),
                            dur_ns: s.dur_ns,
                            depth: s.depth,
                            instant: s.instant,
                        })
                        .collect();
                    fsp_obs::inject_foreign(&frame.worker, events);
                }
                Ok(None) => {}
                Err(e) => eprintln!("fsp-serve: dropping malformed trace frame: {e}"),
            }
        }
        {
            let mut store = self.shared.store.lock().expect("engine poisoned");
            for (key, outcome) in &frame.records {
                if let Err(e) = store.insert(*key, *outcome) {
                    eprintln!("fsp-serve: store append failed: {e}");
                }
            }
            let flush_start = fsp_obs::now_ns();
            let _ = store.flush();
            self.shared
                .metrics
                .store_flush_nanos
                .record(fsp_obs::now_ns() - flush_start);
        }
        let outcomes: std::collections::BTreeMap<_, _> =
            frame.records.iter().map(|(k, o)| (k.site, *o)).collect();
        match self.shared.leases.complete(lease, &frame.worker, &outcomes) {
            Submission::Accepted => {
                fsp_obs::instant(
                    "serve.lease.complete",
                    Some(format!("{} {lease}", frame.worker)),
                );
                (
                    200,
                    Json::obj([("accepted", Json::u64(frame.records.len() as u64))]),
                )
            }
            Submission::Duplicate => (
                200,
                Json::obj([("accepted", Json::u64(0)), ("duplicate", Json::Bool(true))]),
            ),
            // The lease vanished between `meta` and `complete` (job
            // retracted): the records were valid, treat as stale.
            Submission::Unknown => (
                200,
                Json::obj([("accepted", Json::u64(0)), ("stale", Json::Bool(true))]),
            ),
            Submission::Incomplete => (400, error_json("frame does not cover the lease's sites")),
        }
    }

    /// The fleet status document (`GET /fleet`): chunk counts by state,
    /// requeue/duplicate totals and per-worker counters.
    #[must_use]
    pub fn fleet_status_json(&self) -> Json {
        self.shared.leases.status_json()
    }

    /// Prometheus text exposition of the service metrics.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let by_state: Vec<(&str, u64)> = {
            let jobs = self.shared.jobs.lock().expect("engine poisoned");
            JobState::ALL
                .iter()
                .map(|s| {
                    (
                        s.name(),
                        jobs.values().filter(|r| r.state == *s).count() as u64,
                    )
                })
                .collect()
        };
        let store_len = self.shared.store.lock().expect("engine poisoned").len() as u64;
        let mut text = self.shared.metrics.render(&by_state, store_len);
        self.shared.leases.render_metrics(&mut text);
        // Process-wide metrics (injection-engine histograms and counters)
        // registered on the global registry by whichever layers ran.
        text.push_str(&fsp_obs::registry().render());
        text
    }

    /// The live span timeline as Chrome trace-event JSON (`GET /trace`):
    /// this process's spans plus any worker spans re-anchored from
    /// submitted frames. Non-destructive — the ring keeps accumulating.
    #[must_use]
    pub fn trace_json(&self) -> String {
        fsp_obs::chrome_trace_json(&fsp_obs::snapshot(), "coordinator")
    }

    /// Blocks until no job is queued or running, or `timeout` elapses;
    /// returns whether the engine went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let busy = {
                let jobs = self.shared.jobs.lock().expect("engine poisoned");
                jobs.values().any(|r| r.state.is_active())
            };
            if !busy {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops the worker pool without waiting for in-flight jobs to finish
    /// — deliberately equivalent to a crash for resumability: running jobs
    /// stop at their next chunk boundary, stay `running` on disk, and
    /// resume (from the store) on the next [`Engine::open`]. Flushes and
    /// checkpoints the store before returning.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("engine poisoned")
            .drain(..)
            .collect();
        for w in workers {
            let _ = w.join();
        }
        let mut store = self.shared.store.lock().expect("engine poisoned");
        if let Err(e) = store.flush().and_then(|()| store.checkpoint()) {
            eprintln!("fsp-serve: checkpoint on shutdown failed: {e}");
        }
    }
}

/// The kernel registry document for `GET /kernels`: ids, names, geometry
/// and the store-key fingerprints at evaluation scale.
#[must_use]
pub fn kernels_json() -> Json {
    Json::Arr(
        fsp_workloads::all(Scale::Eval)
            .iter()
            .map(|w| {
                Json::obj([
                    ("id", Json::Str(w.registry_id().to_owned())),
                    ("app", Json::Str(w.app().to_owned())),
                    ("kernel", Json::Str(w.kernel().to_owned())),
                    ("threads", Json::u64(u64::from(w.launch().num_threads()))),
                    ("fingerprint", Json::u64(w.fingerprint())),
                    ("launch", Json::u64(keyed_launch_hash(w))),
                ])
            })
            .collect(),
    )
}

/// Runs a job spec in-process, without a server or a store — the library
/// path `fsp submit --local` uses, producing the same canonical result
/// document as `GET /jobs/:id/result` for the same spec.
///
/// # Errors
///
/// Returns a message for unknown kernels or workload faults.
pub fn run_local(spec: &JobSpec, workers: usize) -> Result<Json, String> {
    let workload = fsp_workloads::by_id(&spec.kernel, Scale::Eval)
        .ok_or_else(|| format!("unknown kernel `{}`", spec.kernel))?;
    if spec.stop.is_some() && matches!(spec.mode, CampaignMode::Protect { .. }) {
        return Err("early stopping is not supported for protect jobs".to_owned());
    }
    if let CampaignMode::Protect {
        budget_millis,
        scope,
        samples,
    } = spec.mode
    {
        let outcome = harden_and_verify(
            &workload,
            &protect_config(spec, budget_millis, scope, samples, workers),
        )
        .map_err(|e| e.to_string())?;
        return Ok(crate::job::result_to_json(
            spec,
            &JobResult {
                fingerprint: program_fingerprint(&outcome.hardened.program),
                launch: keyed_launch_hash(&workload),
                sites: outcome.report.samples,
                profile: outcome.report.protected,
                early: None,
            },
        ));
    }
    let experiment = Experiment::prepare(&workload).map_err(|e| e.to_string())?;
    let planned = plan_sites(spec, &workload, &experiment)?;
    if let Some(stop) = spec.stop {
        // Same incremental engine + prefix tracker as the service path,
        // so `--local` and served early-stopped runs agree on the exact
        // stopping prefix and produce byte-identical result documents.
        let stopper = Mutex::new(new_stopper(stop, &planned));
        let run = experiment.run_campaign_incremental(
            &planned.sites,
            spec.model,
            workers,
            &[],
            &StopObserver { stopper: &stopper },
        );
        let tracker = stopper.into_inner().expect("stop tracker poisoned");
        let used = tracker.stop_len().unwrap_or(planned.sites.len());
        let prefix: Vec<Outcome> = run.outcomes[..used]
            .iter()
            .map(|o| o.expect("contiguous stopped prefix is resolved"))
            .collect();
        let mut profile = profile_in_site_order(&planned.sites[..used], &prefix);
        planned.settle(&mut profile);
        let early = early_report(
            stop,
            &planned,
            &planned.sites[..used],
            &prefix,
            tracker.stop_len().is_some(),
        );
        return Ok(crate::job::result_to_json(
            spec,
            &JobResult {
                fingerprint: workload.fingerprint(),
                launch: keyed_launch_hash(&workload),
                sites: planned.sites.len(),
                profile,
                early: Some(early),
            },
        ));
    }
    let result = experiment.run_campaign_with(&planned.sites, spec.model, workers);
    let mut profile = result.profile;
    planned.settle(&mut profile);
    Ok(crate::job::result_to_json(
        spec,
        &JobResult {
            fingerprint: workload.fingerprint(),
            launch: keyed_launch_hash(&workload),
            sites: planned.sites.len(),
            profile,
            early: None,
        },
    ))
}

/// The [`HardenConfig`] equivalent of a protect job spec. The engine path
/// mirrors every field of this (same seed, same sample count, no ACE
/// scaling) so the library and service paths plan identical protections
/// and report identical profiles.
fn protect_config(
    spec: &JobSpec,
    budget_millis: u32,
    scope: ProtectScope,
    samples: usize,
    workers: usize,
) -> HardenConfig {
    HardenConfig {
        scope,
        budget: f64::from(budget_millis) / 1000.0,
        samples,
        seed: spec.seed,
        model: spec.model,
        workers,
        use_ace: false,
    }
}

/// A planned campaign: the sites to run plus the weight the planner
/// accounted statically (assumed masked, predicted DUEs) and the
/// per-stage accounting for the metrics endpoint.
struct PlannedCampaign {
    sites: Vec<WeightedSite>,
    assumed_masked: f64,
    predicted_crash: f64,
    predicted_detected: f64,
    stages: Option<fsp_core::StageCounts>,
}

impl PlannedCampaign {
    /// The statically settled mass as per-class certain weight in
    /// `Outcome::code()` order, for streaming estimators.
    fn certain(&self) -> [f64; 5] {
        [
            self.assumed_masked,
            0.0,
            self.predicted_crash,
            0.0,
            self.predicted_detected,
        ]
    }

    /// The `[masked, crash, detected]` triple persisted on job records.
    fn settled3(&self) -> [f64; 3] {
        [
            self.assumed_masked,
            self.predicted_crash,
            self.predicted_detected,
        ]
    }

    /// Folds the statically-accounted weight into a campaign profile.
    fn settle(&self, profile: &mut ResilienceProfile) {
        profile.record_weighted(Outcome::Masked, self.assumed_masked);
        if self.predicted_crash > 0.0 {
            profile.record_weighted(Outcome::CRASH, self.predicted_crash);
        }
        if self.predicted_detected > 0.0 {
            profile.record_weighted(Outcome::Detected, self.predicted_detected);
        }
    }
}

/// Deterministically expands a spec into its weighted site list and
/// statically-accounted weights. Shared by the engine and [`run_local`],
/// so the service and library paths run byte-identical campaigns.
fn plan_sites(
    spec: &JobSpec,
    workload: &fsp_workloads::Workload,
    experiment: &Experiment<'_, fsp_workloads::Workload>,
) -> Result<PlannedCampaign, String> {
    match spec.mode {
        CampaignMode::Pruned {
            static_ace,
            loop_samples,
        } => {
            let config = PruningConfig {
                static_ace,
                loop_samples,
                loop_seed: spec.seed,
                ..PruningConfig::default()
            };
            let plan = PruningPipeline::new(config)
                .plan_for(experiment)
                .map_err(|e| format!("planning failed: {e}"))?;
            Ok(PlannedCampaign {
                sites: plan.sites,
                assumed_masked: plan.assumed_masked_weight,
                predicted_crash: plan.predicted_crash_weight,
                predicted_detected: plan.predicted_detected_weight,
                stages: Some(plan.stages),
            })
        }
        CampaignMode::Sampled { samples } => {
            let space = experiment.site_space(0..workload.launch().num_threads());
            let mut rng = StdRng::seed_from_u64(spec.seed);
            Ok(PlannedCampaign {
                sites: space
                    .sample_many(samples, &mut rng)
                    .into_iter()
                    .map(WeightedSite::from)
                    .collect(),
                assumed_masked: 0.0,
                predicted_crash: 0.0,
                predicted_detected: 0.0,
                stages: None,
            })
        }
        // Protect jobs run two campaigns against two programs; both
        // callers branch to their protect paths before planning sites.
        CampaignMode::Protect { .. } => unreachable!("protect jobs never reach plan_sites"),
    }
}

/// Builds the early-stop prefix tracker for a planned campaign.
fn new_stopper(stop: StopSpec, planned: &PlannedCampaign) -> EarlyStop {
    EarlyStop::new(
        StopRule::new(stop.confidence, stop.margin),
        planned.sites.iter().map(|ws| ws.weight).collect(),
        planned.certain(),
    )
}

/// Recomputes the early-stop report over the used plan prefix — a pure
/// function of the prefix outcomes, so local, fleet and resumed runs
/// agree byte-for-byte.
fn early_report(
    stop: StopSpec,
    planned: &PlannedCampaign,
    sites: &[WeightedSite],
    outcomes: &[Outcome],
    stopped: bool,
) -> EarlyStopReport {
    let mut est = StreamEstimator::with_certain(planned.certain());
    for (ws, o) in sites.iter().zip(outcomes) {
        est.record_weighted(*o, ws.weight);
    }
    EarlyStopReport {
        stopped,
        sites_injected: sites.len(),
        achieved_margin: est.achieved_margin(stop.confidence),
    }
}

/// Observer for `run_local` early-stopped campaigns: feeds the prefix
/// tracker and cancels the worker pool once the rule fires.
struct StopObserver<'a> {
    stopper: &'a Mutex<EarlyStop>,
}

impl CampaignObserver for StopObserver<'_> {
    fn on_chunk(&self, indices: &[usize], outcomes: &[Outcome]) {
        let mut tracker = self.stopper.lock().expect("stop tracker poisoned");
        for (&i, &o) in indices.iter().zip(outcomes) {
            tracker.resolve(i, o);
        }
    }

    fn should_cancel(&self) -> bool {
        self.stopper
            .lock()
            .expect("stop tracker poisoned")
            .should_stop()
    }
}

fn persist(jobs_dir: &std::path::Path, record: &JobRecord) {
    let path = jobs_dir.join(format!("{}.json", record.id));
    let tmp = jobs_dir.join(format!("{}.json.tmp", record.id));
    let write = || -> std::io::Result<()> {
        std::fs::write(&tmp, record.to_json().to_string())?;
        std::fs::rename(&tmp, &path)
    };
    if let Err(e) = write() {
        eprintln!("fsp-serve: persisting {} failed: {e}", record.id);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().expect("engine poisoned");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = shared.queue_cv.wait(queue).expect("engine poisoned");
            }
        };
        run_job(shared, &id);
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
}

enum RunEnd {
    Completed(JobResult),
    /// Stopped by engine shutdown: stays `running` on disk, resumes on
    /// the next open.
    Interrupted,
    Cancelled,
    Failed(String),
}

fn run_job(shared: &Shared, id: &str) {
    let (spec, fleet) = {
        let mut jobs = shared.jobs.lock().expect("engine poisoned");
        let Some(record) = jobs.get_mut(id) else {
            return;
        };
        // A queued job can have been cancelled before a worker claimed it.
        if record.state != JobState::Queued {
            return;
        }
        record.state = JobState::Running;
        persist(&shared.jobs_dir, record);
        (record.spec.clone(), record.fleet)
    };
    let cancel = Arc::new(AtomicBool::new(false));
    shared
        .cancel_flags
        .lock()
        .expect("engine poisoned")
        .insert(id.to_owned(), Arc::clone(&cancel));
    let end = {
        let _job = fsp_obs::span_labeled("serve.job", format!("{id} {}", spec.kernel));
        execute(shared, id, &spec, fleet, &cancel)
    };
    shared
        .cancel_flags
        .lock()
        .expect("engine poisoned")
        .remove(id);
    let mut jobs = shared.jobs.lock().expect("engine poisoned");
    let Some(record) = jobs.get_mut(id) else {
        return;
    };
    match end {
        RunEnd::Completed(result) => {
            record.state = JobState::Completed;
            // An early-stopped campaign legitimately finishes with
            // unresolved tail sites; keep its true progress count.
            if !result.early.is_some_and(|e| e.stopped) {
                record.done = record.total;
            }
            record.partial = result.profile;
            record.result = Some(result);
            shared.metrics.jobs_completed.inc();
            shared.metrics.jobs_completed_by_mode[mode_index(spec.mode.mode_name())].inc();
        }
        RunEnd::Interrupted => return, // stays `running` on disk
        RunEnd::Cancelled => {
            record.state = JobState::Cancelled;
            shared.metrics.jobs_cancelled.inc();
        }
        RunEnd::Failed(error) => {
            record.state = JobState::Failed;
            record.error = Some(error);
            shared.metrics.jobs_failed.inc();
        }
    }
    persist(&shared.jobs_dir, record);
}

#[allow(clippy::too_many_lines)]
fn execute(shared: &Shared, id: &str, spec: &JobSpec, fleet: bool, cancel: &AtomicBool) -> RunEnd {
    let Some(workload) = fsp_workloads::by_id(&spec.kernel, Scale::Eval) else {
        return RunEnd::Failed(format!("unknown kernel `{}`", spec.kernel));
    };
    let experiment = match Experiment::prepare(&workload) {
        Ok(e) => e,
        Err(e) => return RunEnd::Failed(format!("golden run failed: {e}")),
    };
    if let CampaignMode::Protect {
        budget_millis,
        scope,
        samples,
    } = spec.mode
    {
        return execute_protect(
            shared,
            id,
            spec,
            cancel,
            &workload,
            &experiment,
            budget_millis,
            scope,
            samples,
        );
    }
    let planned = match plan_sites(spec, &workload, &experiment) {
        Ok(planned) => planned,
        Err(e) => return RunEnd::Failed(e),
    };
    if let Some(stages) = &planned.stages {
        shared
            .metrics
            .record_plan(stages, planned.predicted_crash, planned.predicted_detected);
    }
    let sites = &planned.sites;
    let fingerprint = workload.fingerprint();
    let launch = keyed_launch_hash(&workload);
    reset_progress(shared, id, sites.len(), planned.settled3());
    let stopper = spec
        .stop
        .map(|stop| Mutex::new(new_stopper(stop, &planned)));
    let campaign = if fleet {
        fleet_campaign_through_store(
            shared,
            id,
            spec,
            sites,
            fingerprint,
            launch,
            workload.launch().threads_per_cta(),
            cancel,
            stopper.as_ref(),
        )
    } else {
        campaign_through_store(
            shared,
            id,
            spec,
            &experiment,
            sites,
            fingerprint,
            launch,
            cancel,
            stopper.as_ref(),
        )
    };
    let outcomes = match campaign {
        Ok(outcomes) => outcomes,
        Err(end) => return end,
    };
    // Early-stopped campaigns score only the contiguous stopped prefix in
    // plan order — the deterministic basis that makes reruns and
    // local/fleet placements byte-identical. Without a stopper the prefix
    // is the whole plan.
    let stopped_at = stopper
        .as_ref()
        .and_then(|s| s.lock().expect("stop tracker poisoned").stop_len());
    let used = stopped_at.unwrap_or(sites.len());
    let prefix: Vec<Outcome> = outcomes[..used]
        .iter()
        .map(|o| o.expect("contiguous resolved prefix"))
        .collect();
    // Final profile: recomputed over the complete outcome vector in site
    // order, so cold, warm and resumed runs agree bit-for-bit.
    let mut profile = profile_in_site_order(&sites[..used], &prefix);
    planned.settle(&mut profile);
    let early = spec.stop.map(|stop| {
        early_report(
            stop,
            &planned,
            &sites[..used],
            &prefix,
            stopped_at.is_some(),
        )
    });
    if early.is_some() {
        // Cancellation is best-effort, so workers may overshoot the
        // stopped prefix; re-baseline the record's streaming counters to
        // the scored prefix so the progress document of a finished job
        // agrees with its result document.
        let mut counts = [0u64; 5];
        let mut sum_w2 = 0.0;
        for (ws, o) in sites[..used].iter().zip(&prefix) {
            counts[o.code() as usize] += 1;
            sum_w2 += ws.weight * ws.weight;
        }
        let mut jobs = shared.jobs.lock().expect("engine poisoned");
        if let Some(record) = jobs.get_mut(id) {
            record.outcome_counts = counts;
            record.sum_w2 = sum_w2;
            if stopped_at.is_some() {
                record.done = used;
                record.cache_hits = record.cache_hits.min(used);
            }
        }
    }
    RunEnd::Completed(JobResult {
        fingerprint,
        launch,
        sites: sites.len(),
        profile,
        early,
    })
}

/// The engine path of a protect job, mirroring
/// [`fsp_protect::harden_and_verify`] with both campaigns routed through
/// the outcome store: the baseline campaign shares cache entries with
/// plain sampled jobs of the same kernel, and the re-injection campaign
/// keys its outcomes under the *hardened* program's fingerprint, so
/// resubmitting the same protect spec is a pure warm read.
#[allow(clippy::too_many_arguments)]
fn execute_protect(
    shared: &Shared,
    id: &str,
    spec: &JobSpec,
    cancel: &AtomicBool,
    workload: &fsp_workloads::Workload,
    experiment: &Experiment<'_, fsp_workloads::Workload>,
    budget_millis: u32,
    scope: ProtectScope,
    samples: usize,
) -> RunEnd {
    let launch = workload.launch();
    let space = experiment.site_space(0..launch.num_threads());
    if space.total_sites() == 0 {
        return RunEnd::Failed("kernel has no fault sites".to_owned());
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let sites: Vec<WeightedSite> = space
        .sample_many(samples, &mut rng)
        .into_iter()
        .map(WeightedSite::from)
        .collect();
    let launch_hash = keyed_launch_hash(workload);
    // Two campaigns of equal site count: baseline, then re-injection.
    reset_progress(shared, id, sites.len() * 2, [0.0; 3]);
    let baseline_outcomes: Vec<Outcome> = match campaign_through_store(
        shared,
        id,
        spec,
        experiment,
        &sites,
        workload.fingerprint(),
        launch_hash,
        cancel,
        None,
    ) {
        Ok(outcomes) => outcomes
            .into_iter()
            .map(|o| o.expect("uncancelled campaign resolves every site"))
            .collect(),
        Err(end) => return end,
    };

    // Plan and transform. Planning is deterministic in (spec, store
    // outcomes), so a resumed or resubmitted job re-derives the same
    // hardened program and hits the same store keys.
    let program = launch.program();
    let plan = plan_protection(
        &PlanInputs {
            program,
            space: &space,
            sites: &sites,
            outcomes: &baseline_outcomes,
            ace: None,
            classify: None,
        },
        scope,
        f64::from(budget_millis) / 1000.0,
    );
    let hardened = match harden(program, &plan.selected_pcs) {
        Ok(hardened) => hardened,
        Err(e) => return RunEnd::Failed(format!("hardening failed: {e}")),
    };
    let protected_target = ProtectedTarget::new(workload, hardened.program.clone());
    let protected_exp = match Experiment::prepare(&protected_target) {
        Ok(e) => e,
        Err(e) => return RunEnd::Failed(format!("hardened golden run failed: {e}")),
    };
    if protected_exp.golden() != experiment.golden() {
        return RunEnd::Failed("hardened kernel broke output transparency".to_owned());
    }
    let tids: BTreeSet<u32> = sites.iter().map(|ws| ws.site.tid).collect();
    let protected_space = protected_exp.site_space(tids);
    let mapped = remap_sites(&hardened, &space, &protected_space, &sites);

    let outcomes: Vec<Outcome> = match campaign_through_store(
        shared,
        id,
        spec,
        &protected_exp,
        &mapped,
        program_fingerprint(&hardened.program),
        launch_hash,
        cancel,
        None,
    ) {
        Ok(outcomes) => outcomes
            .into_iter()
            .map(|o| o.expect("uncancelled campaign resolves every site"))
            .collect(),
        Err(end) => return end,
    };
    RunEnd::Completed(JobResult {
        fingerprint: program_fingerprint(&hardened.program),
        launch: launch_hash,
        sites: sites.len(),
        profile: profile_in_site_order(&mapped, &outcomes),
        early: None,
    })
}

/// Resets a job's progress counters for a (re)run. Resumed jobs reload
/// stale `done`/`partial` values from disk; the store replay below
/// re-derives them.
fn reset_progress(shared: &Shared, id: &str, total: usize, settled: [f64; 3]) {
    let mut jobs = shared.jobs.lock().expect("engine poisoned");
    if let Some(record) = jobs.get_mut(id) {
        record.total = total;
        record.done = 0;
        record.cache_hits = 0;
        record.partial = ResilienceProfile::new();
        record.outcome_counts = [0; 5];
        record.sum_w2 = 0.0;
        record.settled = settled;
        persist(&shared.jobs_dir, record);
    }
}

/// Runs one campaign with the store as cache: resolves hits under the
/// given program fingerprint, injects only the misses (persisting each
/// chunk), and returns the complete outcome vector in site order.
/// Progress is *added* to the job record so a job can chain campaigns.
///
/// `Err` carries the terminal [`RunEnd`] when the campaign was stopped.
#[allow(clippy::too_many_arguments)]
fn campaign_through_store<T: InjectionTarget>(
    shared: &Shared,
    id: &str,
    spec: &JobSpec,
    experiment: &Experiment<'_, T>,
    sites: &[WeightedSite],
    fingerprint: u64,
    launch: u64,
    cancel: &AtomicBool,
    stopper: Option<&Mutex<EarlyStop>>,
) -> Result<Vec<Option<Outcome>>, RunEnd> {
    let _campaign = fsp_obs::span_labeled("serve.campaign", id.to_owned());
    let keys: Vec<OutcomeKey> = sites
        .iter()
        .map(|ws| OutcomeKey::new(fingerprint, launch, spec.model, ws.site))
        .collect();

    // Drain the store: anything this service ever injected for these keys
    // is a hit; only the misses run.
    let resolved: Vec<Option<Outcome>> = {
        let store = shared.store.lock().expect("engine poisoned");
        keys.iter().map(|k| store.get(k)).collect()
    };
    let hits = resolved.iter().filter(|o| o.is_some()).count();
    {
        let mut jobs = shared.jobs.lock().expect("engine poisoned");
        if let Some(record) = jobs.get_mut(id) {
            record.done += hits;
            record.cache_hits += hits;
            for (ws, o) in sites.iter().zip(&resolved) {
                if let Some(o) = o {
                    record.partial.record_weighted(*o, ws.weight);
                    record.outcome_counts[o.code() as usize] += 1;
                    record.sum_w2 += ws.weight * ws.weight;
                    shared.metrics.job_outcome_total[o.code() as usize].inc();
                }
            }
            persist(&shared.jobs_dir, record);
        }
    }
    if let Some(stopper) = stopper {
        let mut tracker = stopper.lock().expect("stop tracker poisoned");
        for (i, o) in resolved.iter().enumerate() {
            if let Some(o) = o {
                tracker.resolve(i, *o);
            }
        }
    }

    let observer = EngineObserver {
        shared,
        id,
        keys: &keys,
        sites,
        cancel,
        stopper,
    };
    let started = Instant::now();
    let run = experiment.run_campaign_incremental(
        sites,
        spec.model,
        shared.campaign_workers,
        &resolved,
        &observer,
    );
    shared.metrics.record_campaign(
        mode_index(spec.mode.mode_name()),
        hits as u64,
        run.injected as u64,
        started.elapsed().as_nanos() as u64,
    );
    shared.metrics.record_fast_path(
        run.checkpoint_hits,
        run.skipped_instructions,
        run.early_converged,
    );
    {
        let mut store = shared.store.lock().expect("engine poisoned");
        let flush_start = fsp_obs::now_ns();
        let _ = store.flush();
        shared
            .metrics
            .store_flush_nanos
            .record(fsp_obs::now_ns() - flush_start);
        if store.appended_since_checkpoint() >= CHECKPOINT_EVERY {
            if let Err(e) = store.checkpoint() {
                eprintln!("fsp-serve: store checkpoint failed: {e}");
            }
        }
    }
    if run.cancelled {
        if shared.shutdown.load(Ordering::Relaxed) {
            return Err(RunEnd::Interrupted);
        }
        if cancel.load(Ordering::Relaxed) {
            return Err(RunEnd::Cancelled);
        }
        // Cancelled by the stop tracker: the contiguous resolved prefix
        // is complete, which is all the caller scores.
        debug_assert!(
            stopper.is_some_and(|s| s.lock().expect("stop tracker poisoned").should_stop())
        );
    }
    Ok(run.outcomes)
}

/// Shards miss indices into lease chunks aligned to batch groups. The
/// worker's batched fast path co-schedules sites that share a CTA onto
/// one golden replay, so a lease boundary that split a CTA group would
/// strand its lanes in thinner batches across two workers. Misses are
/// sorted by (CTA, dynamic index) — sites sharing a resume checkpoint
/// end up adjacent — and a chunk only closes at a CTA boundary once it
/// has reached `chunk_len` (with a 2x hard cap so one huge CTA can't
/// produce an unbounded lease). Outcomes are assembled by plan index,
/// so reordering the misses is invisible to the final profile.
fn batch_aligned_chunks(
    sites: &[WeightedSite],
    mut miss: Vec<usize>,
    chunk_len: usize,
    threads_per_cta: u32,
) -> Vec<Vec<usize>> {
    let tpc = threads_per_cta.max(1);
    miss.sort_by_key(|&i| {
        let s = sites[i].site;
        (s.tid / tpc, s.dyn_idx, s.tid, s.bit)
    });
    let mut chunks: Vec<Vec<usize>> = Vec::new();
    for &i in &miss {
        let cta = sites[i].site.tid / tpc;
        match chunks.last_mut() {
            Some(chunk)
                if chunk.len() < chunk_len * 2
                    && (chunk.len() < chunk_len
                        || sites[*chunk.last().expect("chunk non-empty")].site.tid / tpc
                            == cta) =>
            {
                chunk.push(i);
            }
            _ => chunks.push(vec![i]),
        }
    }
    chunks
}

/// Runs one campaign on the worker fleet: resolves store hits exactly
/// like the in-process path, shards the misses into chunk leases, then
/// supervises until every chunk is delivered by some worker.
///
/// The supervisor never touches the store — outcome frames are persisted
/// (and flushed) by the HTTP submission path *before* a lease is marked
/// done, so by the time a chunk appears here its records are durable.
/// Outcomes are assembled into the plan's site order, which makes the
/// final profile byte-identical to the in-process path regardless of
/// worker count, chunk interleaving, lease steals or duplicate
/// deliveries.
///
/// `Err` carries the terminal [`RunEnd`] when the job was stopped; the
/// job's published leases are retracted so workers stop pulling them.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn fleet_campaign_through_store(
    shared: &Shared,
    id: &str,
    spec: &JobSpec,
    sites: &[WeightedSite],
    fingerprint: u64,
    launch: u64,
    threads_per_cta: u32,
    cancel: &AtomicBool,
    stopper: Option<&Mutex<EarlyStop>>,
) -> Result<Vec<Option<Outcome>>, RunEnd> {
    let _campaign = fsp_obs::span_labeled("serve.fleet_campaign", id.to_owned());
    let keys: Vec<OutcomeKey> = sites
        .iter()
        .map(|ws| OutcomeKey::new(fingerprint, launch, spec.model, ws.site))
        .collect();
    let mut outcomes: Vec<Option<Outcome>> = {
        let store = shared.store.lock().expect("engine poisoned");
        keys.iter().map(|k| store.get(k)).collect()
    };
    let hits = outcomes.iter().filter(|o| o.is_some()).count();
    {
        let mut jobs = shared.jobs.lock().expect("engine poisoned");
        if let Some(record) = jobs.get_mut(id) {
            record.done += hits;
            record.cache_hits += hits;
            for (ws, o) in sites.iter().zip(&outcomes) {
                if let Some(o) = o {
                    record.partial.record_weighted(*o, ws.weight);
                    record.outcome_counts[o.code() as usize] += 1;
                    record.sum_w2 += ws.weight * ws.weight;
                    shared.metrics.job_outcome_total[o.code() as usize].inc();
                }
            }
            persist(&shared.jobs_dir, record);
        }
    }
    if let Some(stopper) = stopper {
        let mut tracker = stopper.lock().expect("stop tracker poisoned");
        for (i, o) in outcomes.iter().enumerate() {
            if let Some(o) = o {
                tracker.resolve(i, *o);
            }
        }
        if tracker.should_stop() {
            // The cached prefix alone satisfies the rule: nothing to lease.
            return Ok(outcomes);
        }
    }

    // Shard the misses, aligned to batch groups; a sampled plan may
    // repeat a site, and every index gets its outcome from its own
    // chunk's map, so repeats are harmless.
    let miss: Vec<usize> = (0..sites.len())
        .filter(|&i| outcomes[i].is_none())
        .collect();
    let misses = miss.len();
    let chunk_len = shared.leases.config().chunk_sites.max(1);
    let chunks = batch_aligned_chunks(sites, miss, chunk_len, threads_per_cta);
    let specs: Vec<ChunkSpec> = chunks
        .iter()
        .enumerate()
        .map(|(chunk_idx, indices)| ChunkSpec {
            job: id.to_owned(),
            chunk_idx,
            kernel: spec.kernel.clone(),
            model: spec.model,
            fingerprint,
            launch,
            sites: indices.iter().map(|&i| sites[i].site).collect(),
        })
        .collect();
    let started = Instant::now();
    let mut remaining = specs.len();
    shared.leases.publish(specs);

    while remaining > 0 {
        if shared.shutdown.load(Ordering::Relaxed) || cancel.load(Ordering::Relaxed) {
            shared.leases.retract_job(id);
            if shared.shutdown.load(Ordering::Relaxed) {
                return Err(RunEnd::Interrupted);
            }
            return Err(RunEnd::Cancelled);
        }
        let delivered = shared.leases.take_completed(id);
        if delivered.is_empty() {
            shared.leases.wait_progress(Duration::from_millis(200));
            continue;
        }
        let mut fresh: Vec<(usize, Outcome)> = Vec::new();
        {
            let mut jobs = shared.jobs.lock().expect("engine poisoned");
            for (chunk_idx, map) in delivered {
                for &i in &chunks[chunk_idx] {
                    let o = *map
                        .get(&sites[i].site)
                        .expect("lease completion covers every chunk site");
                    outcomes[i] = Some(o);
                    fresh.push((i, o));
                    if let Some(record) = jobs.get_mut(id) {
                        record.done += 1;
                        record.partial.record_weighted(o, sites[i].weight);
                        record.outcome_counts[o.code() as usize] += 1;
                        record.sum_w2 += sites[i].weight * sites[i].weight;
                        shared.metrics.job_outcome_total[o.code() as usize].inc();
                    }
                }
                remaining -= 1;
            }
            if let Some(record) = jobs.get_mut(id) {
                persist(&shared.jobs_dir, record);
            }
        }
        shared.leases.prune_delivered(id);
        if let Some(stopper) = stopper {
            let mut tracker = stopper.lock().expect("stop tracker poisoned");
            for (i, o) in fresh {
                tracker.resolve(i, o);
            }
            if tracker.should_stop() {
                // CI convergence: stop issuing leases and retract the
                // job's remaining chunks; in-flight workers see their
                // submissions answered as stale and move on.
                shared.leases.retract_job(id);
                break;
            }
        }
    }
    shared.metrics.record_campaign(
        mode_index(spec.mode.mode_name()),
        hits as u64,
        misses as u64,
        started.elapsed().as_nanos() as u64,
    );
    {
        let mut store = shared.store.lock().expect("engine poisoned");
        if store.appended_since_checkpoint() >= CHECKPOINT_EVERY {
            if let Err(e) = store.checkpoint() {
                eprintln!("fsp-serve: store checkpoint failed: {e}");
            }
        }
    }
    Ok(outcomes)
}

fn error_json(message: &str) -> Json {
    Json::obj([("error", Json::Str(message.to_owned()))])
}

/// The weighted profile of a complete campaign, accumulated in site order
/// (bit-identical across worker counts and cache splits).
fn profile_in_site_order(sites: &[WeightedSite], outcomes: &[Outcome]) -> ResilienceProfile {
    let mut profile = ResilienceProfile::new();
    for (ws, o) in sites.iter().zip(outcomes) {
        profile.record_weighted(*o, ws.weight);
    }
    profile
}

struct EngineObserver<'a> {
    shared: &'a Shared,
    id: &'a str,
    keys: &'a [OutcomeKey],
    sites: &'a [WeightedSite],
    cancel: &'a AtomicBool,
    stopper: Option<&'a Mutex<EarlyStop>>,
}

impl CampaignObserver for EngineObserver<'_> {
    fn on_chunk(&self, indices: &[usize], outcomes: &[Outcome]) {
        {
            let mut store = self.shared.store.lock().expect("engine poisoned");
            // Every reported site is a fresh injection (pre-resolved sites
            // are never re-reported), so each one is appended.
            for (&i, &o) in indices.iter().zip(outcomes) {
                if let Err(e) = store.insert(self.keys[i], o) {
                    eprintln!("fsp-serve: store append failed: {e}");
                }
            }
            // One flush per chunk: a crash loses at most the torn tail of
            // the final in-flight record.
            let flush_start = fsp_obs::now_ns();
            let _ = store.flush();
            self.shared
                .metrics
                .store_flush_nanos
                .record(fsp_obs::now_ns() - flush_start);
        }
        {
            let mut jobs = self.shared.jobs.lock().expect("engine poisoned");
            if let Some(record) = jobs.get_mut(self.id) {
                for (&i, &o) in indices.iter().zip(outcomes) {
                    record.done += 1;
                    record.partial.record_weighted(o, self.sites[i].weight);
                    record.outcome_counts[o.code() as usize] += 1;
                    record.sum_w2 += self.sites[i].weight * self.sites[i].weight;
                    self.shared.metrics.job_outcome_total[o.code() as usize].inc();
                }
            }
        }
        if let Some(stopper) = self.stopper {
            let mut tracker = stopper.lock().expect("stop tracker poisoned");
            for (&i, &o) in indices.iter().zip(outcomes) {
                tracker.resolve(i, o);
            }
        }
    }

    fn should_cancel(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
            || self.cancel.load(Ordering::Relaxed)
            || self
                .stopper
                .is_some_and(|s| s.lock().expect("stop tracker poisoned").should_stop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::FaultSite;

    fn site(tid: u32, dyn_idx: u32) -> WeightedSite {
        WeightedSite::from(FaultSite {
            tid,
            dyn_idx,
            bit: 0,
        })
    }

    /// Chunks cover every miss exactly once, never mix CTAs before
    /// reaching the target length, and respect the 2x hard cap.
    #[test]
    fn chunk_formation_aligns_to_cta_groups() {
        let tpc = 4;
        // CTA 0: 3 sites; CTA 1: 11 sites (forces a within-CTA split at
        // the 2x cap); CTA 2: 1 site.
        let sites: Vec<WeightedSite> = (0..3)
            .map(|i| site(i % tpc, i))
            .chain((0..11).map(|i| site(4 + i % tpc, i)))
            .chain([site(9, 0)])
            .collect();
        let miss: Vec<usize> = (0..sites.len()).collect();
        let chunks = batch_aligned_chunks(&sites, miss, 4, tpc);
        let mut seen: Vec<usize> = chunks.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..sites.len()).collect::<Vec<_>>());
        for chunk in &chunks {
            assert!(chunk.len() <= 8, "2x cap violated: {}", chunk.len());
            let ctas: std::collections::BTreeSet<u32> =
                chunk.iter().map(|&i| sites[i].site.tid / tpc).collect();
            // A chunk may only span CTAs past the target length — and
            // then only because the previous CTA's tail filled it.
            if chunk.len() <= 4 {
                assert!(ctas.len() <= 2, "short chunk spans {} CTAs", ctas.len());
            }
        }
        // All three CTAs are covered, and the chunk sequence never
        // returns to a CTA it has moved past (group contiguity).
        let cta_seq: Vec<u32> = chunks
            .iter()
            .flatten()
            .map(|&i| sites[i].site.tid / tpc)
            .collect();
        let mut deduped = cta_seq.clone();
        deduped.dedup();
        assert_eq!(deduped, vec![0, 1, 2], "CTA groups torn: {cta_seq:?}");
    }
}
