//! The service JSON layer: re-exported from the fleet wire stack.
//!
//! The hand-rolled JSON value (bit-exact `f64` round trip, insertion-order
//! objects) moved down into [`fsp_fleet::json`] when the distributed layer
//! was introduced — lease grants and outcome frames share the exact
//! encoder with job documents, so a profile computed by a fleet of workers
//! serializes identically to one computed in-process. This module keeps
//! the historical `fsp_serve::json::Json` path alive.

pub use fsp_fleet::json::Json;
