//! Service counters and their Prometheus text rendering.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic service counters, shared lock-free between the worker pool
/// and the HTTP layer.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /jobs` (plus jobs recovered on restart).
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached the completed state.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (bad kernel, workload fault).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled by request.
    pub jobs_cancelled: AtomicU64,
    /// Fault sites actually injected (cache misses that ran).
    pub sites_injected: AtomicU64,
    /// Sites resolved from the persistent outcome store.
    pub cache_hits: AtomicU64,
    /// Sites that had to be injected because the store missed.
    pub cache_misses: AtomicU64,
    /// Wall-clock nanoseconds spent inside injection campaigns.
    pub injection_nanos: AtomicU64,
}

impl Metrics {
    /// Adds a campaign's cache accounting in one shot.
    pub fn record_campaign(&self, hits: u64, injected: u64, nanos: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(injected, Ordering::Relaxed);
        self.sites_injected.fetch_add(injected, Ordering::Relaxed);
        self.injection_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition format. `jobs_by_state`
    /// supplies the current gauge of jobs per state (queued/running/...),
    /// which lives in the job table rather than in atomic counters.
    #[must_use]
    pub fn render(&self, jobs_by_state: &[(&str, u64)], store_len: u64) -> String {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let injected = self.sites_injected.load(Ordering::Relaxed);
        let nanos = self.injection_nanos.load(Ordering::Relaxed);
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let sites_per_sec = if nanos == 0 {
            0.0
        } else {
            injected as f64 / (nanos as f64 / 1e9)
        };
        let mut out = String::new();
        out.push_str("# HELP fsp_jobs Jobs by state.\n# TYPE fsp_jobs gauge\n");
        for (state, count) in jobs_by_state {
            let _ = writeln!(out, "fsp_jobs{{state=\"{state}\"}} {count}");
        }
        let counters: [(&str, &str, u64); 6] = [
            (
                "fsp_jobs_submitted_total",
                "Jobs accepted since start.",
                self.jobs_submitted.load(Ordering::Relaxed),
            ),
            (
                "fsp_jobs_completed_total",
                "Jobs completed since start.",
                self.jobs_completed.load(Ordering::Relaxed),
            ),
            (
                "fsp_jobs_failed_total",
                "Jobs failed since start.",
                self.jobs_failed.load(Ordering::Relaxed),
            ),
            (
                "fsp_sites_injected_total",
                "Fault sites injected (cache misses run).",
                injected,
            ),
            (
                "fsp_cache_hits_total",
                "Sites resolved from the outcome store.",
                hits,
            ),
            (
                "fsp_cache_misses_total",
                "Sites not found in the outcome store.",
                misses,
            ),
        ];
        for (name, help, value) in counters {
            let _ = write!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            );
        }
        let _ = write!(
            out,
            "# HELP fsp_cache_hit_rate Fraction of sites served from the store.\n\
             # TYPE fsp_cache_hit_rate gauge\nfsp_cache_hit_rate {hit_rate}\n"
        );
        let _ = write!(
            out,
            "# HELP fsp_sites_per_second Injection throughput over campaign wall time.\n\
             # TYPE fsp_sites_per_second gauge\nfsp_sites_per_second {sites_per_sec:.1}\n"
        );
        let _ = write!(
            out,
            "# HELP fsp_store_outcomes Outcomes in the persistent store.\n\
             # TYPE fsp_store_outcomes gauge\nfsp_store_outcomes {store_len}\n"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.record_campaign(75, 25, 2_000_000_000);
        let text = m.render(&[("queued", 1), ("completed", 2)], 100);
        assert!(text.contains("fsp_jobs{state=\"queued\"} 1\n"));
        assert!(text.contains("fsp_jobs_submitted_total 3\n"));
        assert!(text.contains("fsp_cache_hit_rate 0.75\n"));
        assert!(text.contains("fsp_sites_injected_total 25\n"));
        assert!(text.contains("fsp_sites_per_second 12.5\n"));
        assert!(text.contains("fsp_store_outcomes 100\n"));
    }
}
