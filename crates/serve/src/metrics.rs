//! Service counters and their Prometheus text rendering, backed by the
//! unified `fsp-obs` metrics registry.
//!
//! The registry is **per-engine** (not the process-global
//! [`fsp_obs::registry`]): tests construct several engines in one process
//! and each must see its own counters. Every metric name and label the
//! pre-registry implementation exposed renders byte-identically; the
//! migration only *adds* series (cancelled jobs, campaign nanoseconds and
//! whatever the injection layer publishes globally — appended by the
//! engine's `metrics_text`).

use fsp_core::StageCounts;
use fsp_obs::{Counter, Gauge, GaugeFormat, Registry};

/// Stable metric labels of the campaign modes, in breakout order.
pub const MODES: [&str; 3] = ["pruned", "sampled", "protect"];

/// Stable metric labels of the pruning stages, in pipeline order
/// (surviving sites *after* each stage; `exhaustive` is the population).
pub const STAGES: [&str; 7] = [
    "exhaustive",
    "static_ace",
    "absint",
    "thread",
    "instruction",
    "loop",
    "bit",
];

/// Index of a [`CampaignMode::mode_name`] into the per-mode counters.
/// Unknown names fold into slot 0 rather than panicking in a metrics path.
#[must_use]
pub fn mode_index(mode: &str) -> usize {
    MODES.iter().position(|m| *m == mode).unwrap_or(0)
}

/// Monotonic service counters, shared lock-free between the worker pool
/// and the HTTP layer. Handles are cheap clones into the engine's
/// registry; derived gauges (rates, throughput) are recomputed at render
/// time from the raw counters.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Jobs accepted by `POST /jobs` (plus jobs recovered on restart).
    pub jobs_submitted: Counter,
    /// Jobs that reached the completed state.
    pub jobs_completed: Counter,
    /// Jobs that failed (bad kernel, workload fault).
    pub jobs_failed: Counter,
    /// Jobs cancelled by request.
    pub jobs_cancelled: Counter,
    /// Fault sites actually injected (cache misses that ran).
    pub sites_injected: Counter,
    /// Sites resolved from the persistent outcome store.
    pub cache_hits: Counter,
    /// Sites that had to be injected because the store missed.
    pub cache_misses: Counter,
    /// Wall-clock nanoseconds spent inside injection campaigns.
    pub injection_nanos: Counter,
    /// Injected runs that resumed from a golden checkpoint instead of
    /// replaying the shared prefix.
    pub checkpoint_hits: Counter,
    /// Golden-prefix instructions skipped via checkpoint resume.
    pub skipped_instructions: Counter,
    /// Injected runs classified Masked by early convergence (divergence
    /// set emptied before the run finished).
    pub early_converged: Counter,
    /// Completed jobs per campaign mode (indexed by [`MODES`]).
    pub jobs_completed_by_mode: [Counter; MODES.len()],
    /// Injected sites per campaign mode.
    pub sites_injected_by_mode: [Counter; MODES.len()],
    /// Campaign wall-clock nanoseconds per campaign mode.
    pub injection_nanos_by_mode: [Counter; MODES.len()],
    /// Sites surviving after each pruning stage, summed over planned
    /// pruned campaigns (indexed by [`STAGES`]).
    pub stage_sites: [Counter; STAGES.len()],
    /// Exhaustive-site weight statically predicted `CRASH` and skipped
    /// (rounded to whole sites).
    pub predicted_crash_weight: Counter,
    /// Exhaustive-site weight statically predicted `Detected` and skipped
    /// (rounded to whole sites).
    pub predicted_detected_weight: Counter,
    /// Latency of outcome-store flushes (per chunk, per campaign tail and
    /// per fleet submission frame).
    pub store_flush_nanos: fsp_obs::Histogram,
    /// Sites resolved per outcome class (cache hits, in-process chunks and
    /// fleet deliveries alike), indexed by `Outcome::code()` — the same
    /// counts the per-job `outcomes` field and the dashboard report.
    pub job_outcome_total: [Counter; fsp_stats::stream::CLASSES],
    cache_hit_rate: Gauge,
    sites_per_second: Gauge,
    sites_per_second_by_mode: [Gauge; MODES.len()],
    store_outcomes: Gauge,
}

impl Default for Metrics {
    // One registration call per exposed series; length is the roster, not
    // complexity.
    #[allow(clippy::too_many_lines)]
    fn default() -> Self {
        let r = Registry::new();
        // Registration order is render order; it mirrors the historical
        // hand-rolled output so diffs against old scrapes stay readable.
        let jobs_submitted = r.counter("fsp_jobs_submitted_total", "Jobs accepted since start.");
        let jobs_completed = r.counter("fsp_jobs_completed_total", "Jobs completed since start.");
        let jobs_failed = r.counter("fsp_jobs_failed_total", "Jobs failed since start.");
        let jobs_cancelled = r.counter("fsp_jobs_cancelled_total", "Jobs cancelled since start.");
        let sites_injected = r.counter(
            "fsp_sites_injected_total",
            "Fault sites injected (cache misses run).",
        );
        let cache_hits = r.counter(
            "fsp_cache_hits_total",
            "Sites resolved from the outcome store.",
        );
        let cache_misses = r.counter(
            "fsp_cache_misses_total",
            "Sites not found in the outcome store.",
        );
        let checkpoint_hits = r.counter(
            "fsp_checkpoint_hits_total",
            "Injected runs resumed from a golden checkpoint.",
        );
        let skipped_instructions = r.counter(
            "fsp_skipped_instructions_total",
            "Golden-prefix instructions skipped via checkpoint resume.",
        );
        let early_converged = r.counter(
            "fsp_early_converged_total",
            "Injected runs classified Masked by early convergence.",
        );
        let injection_nanos = r.counter(
            "fsp_injection_nanos_total",
            "Wall-clock nanoseconds spent inside injection campaigns.",
        );
        let cache_hit_rate = r.gauge(
            "fsp_cache_hit_rate",
            "Fraction of sites served from the store.",
            GaugeFormat::Auto,
        );
        let sites_per_second = r.gauge(
            "fsp_sites_per_second",
            "Injection throughput over campaign wall time.",
            GaugeFormat::Fixed1,
        );
        let jobs_completed_by_mode = std::array::from_fn(|i| {
            r.counter_labeled(
                "fsp_jobs_completed_by_mode",
                &[("mode", MODES[i])],
                "Jobs completed, by campaign mode.",
            )
        });
        let sites_injected_by_mode = std::array::from_fn(|i| {
            r.counter_labeled(
                "fsp_sites_injected_by_mode",
                &[("mode", MODES[i])],
                "Fault sites injected, by campaign mode.",
            )
        });
        let injection_nanos_by_mode = std::array::from_fn(|i| {
            r.counter_labeled(
                "fsp_injection_nanos_by_mode",
                &[("mode", MODES[i])],
                "Campaign wall-clock nanoseconds, by campaign mode.",
            )
        });
        let sites_per_second_by_mode = std::array::from_fn(|i| {
            r.gauge_labeled(
                "fsp_sites_per_second_by_mode",
                &[("mode", MODES[i])],
                "Injection throughput, by campaign mode.",
                GaugeFormat::Fixed1,
            )
        });
        let stage_sites = std::array::from_fn(|i| {
            r.counter_labeled(
                "fsp_plan_sites_by_stage",
                &[("stage", STAGES[i])],
                "Sites surviving each pruning stage, summed over planned campaigns.",
            )
        });
        let predicted_crash_weight = r.counter_labeled(
            "fsp_predicted_due_weight",
            &[("kind", "crash")],
            "Exhaustive-site weight statically predicted as a DUE and skipped, \
             by predicted outcome.",
        );
        let predicted_detected_weight = r.counter_labeled(
            "fsp_predicted_due_weight",
            &[("kind", "detected")],
            "Exhaustive-site weight statically predicted as a DUE and skipped, \
             by predicted outcome.",
        );
        let store_outcomes = r.gauge(
            "fsp_store_outcomes",
            "Outcomes in the persistent store.",
            GaugeFormat::Auto,
        );
        let store_flush_nanos = r.histogram(
            "fsp_store_flush_nanos",
            "Outcome-store flush latency in nanoseconds.",
        );
        // New series append after every legacy registration so historical
        // scrape output stays a byte-identical prefix-by-series.
        let job_outcome_total = std::array::from_fn(|i| {
            r.counter_labeled(
                "fsp_job_outcome_total",
                &[("outcome", fsp_stats::stream::CLASS_LABELS[i])],
                "Sites resolved by outcome class, across all jobs.",
            )
        });
        Metrics {
            registry: r,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_cancelled,
            sites_injected,
            cache_hits,
            cache_misses,
            injection_nanos,
            checkpoint_hits,
            skipped_instructions,
            early_converged,
            jobs_completed_by_mode,
            sites_injected_by_mode,
            injection_nanos_by_mode,
            stage_sites,
            predicted_crash_weight,
            predicted_detected_weight,
            store_flush_nanos,
            job_outcome_total,
            cache_hit_rate,
            sites_per_second,
            sites_per_second_by_mode,
            store_outcomes,
        }
    }
}

#[allow(clippy::cast_precision_loss)]
fn rate_per_second(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        count as f64 / (nanos as f64 / 1e9)
    }
}

impl Metrics {
    /// Adds a campaign's cache accounting in one shot, attributed to the
    /// mode at `mode` (see [`mode_index`]).
    pub fn record_campaign(&self, mode: usize, hits: u64, injected: u64, nanos: u64) {
        self.cache_hits.add(hits);
        self.cache_misses.add(injected);
        self.sites_injected.add(injected);
        self.injection_nanos.add(nanos);
        self.sites_injected_by_mode[mode].add(injected);
        self.injection_nanos_by_mode[mode].add(nanos);
    }

    /// Adds a pruned campaign's per-stage plan accounting: how many sites
    /// survived each stage, and how much weight the static analysis
    /// predicted as DUEs without running it.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn record_plan(&self, stages: &StageCounts, predicted_crash: f64, predicted_detected: f64) {
        let by_stage = [
            stages.exhaustive,
            stages.after_static,
            stages.after_absint,
            stages.after_thread,
            stages.after_instruction,
            stages.after_loop,
            stages.after_bit,
        ];
        for (counter, n) in self.stage_sites.iter().zip(by_stage) {
            counter.add(n);
        }
        self.predicted_crash_weight
            .add(predicted_crash.round() as u64);
        self.predicted_detected_weight
            .add(predicted_detected.round() as u64);
    }

    /// Adds a campaign's checkpoint-resume fast-path accounting.
    pub fn record_fast_path(&self, checkpoint_hits: u64, skipped: u64, early_converged: u64) {
        self.checkpoint_hits.add(checkpoint_hits);
        self.skipped_instructions.add(skipped);
        self.early_converged.add(early_converged);
    }

    /// Renders the Prometheus text exposition format. `jobs_by_state`
    /// supplies the current gauge of jobs per state (queued/running/...),
    /// which lives in the job table rather than in atomic counters.
    #[must_use]
    pub fn render(&self, jobs_by_state: &[(&str, u64)], store_len: u64) -> String {
        // Refresh the derived gauges from the raw counters, then let the
        // registry render everything in registration order.
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        self.cache_hit_rate.set(if hits + misses == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                hits as f64 / (hits + misses) as f64
            }
        });
        self.sites_per_second.set(rate_per_second(
            self.sites_injected.get(),
            self.injection_nanos.get(),
        ));
        for i in 0..MODES.len() {
            self.sites_per_second_by_mode[i].set(rate_per_second(
                self.sites_injected_by_mode[i].get(),
                self.injection_nanos_by_mode[i].get(),
            ));
        }
        for (state, count) in jobs_by_state {
            self.registry
                .gauge_labeled(
                    "fsp_jobs",
                    &[("state", state)],
                    "Jobs by state.",
                    GaugeFormat::Auto,
                )
                .set_u64(*count);
        }
        self.store_outcomes.set_u64(store_len);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let m = Metrics::default();
        m.jobs_submitted.add(3);
        m.record_campaign(mode_index("sampled"), 75, 25, 2_000_000_000);
        m.record_fast_path(20, 9000, 12);
        let text = m.render(&[("queued", 1), ("completed", 2)], 100);
        assert!(text.contains("fsp_jobs{state=\"queued\"} 1\n"));
        assert!(text.contains("fsp_jobs_submitted_total 3\n"));
        assert!(text.contains("fsp_cache_hit_rate 0.75\n"));
        assert!(text.contains("fsp_sites_injected_total 25\n"));
        assert!(text.contains("fsp_sites_per_second 12.5\n"));
        assert!(text.contains("fsp_store_outcomes 100\n"));
        assert!(text.contains("fsp_checkpoint_hits_total 20\n"));
        assert!(text.contains("fsp_skipped_instructions_total 9000\n"));
        assert!(text.contains("fsp_early_converged_total 12\n"));
    }

    #[test]
    fn per_outcome_job_counters_render_with_labels() {
        let m = Metrics::default();
        m.job_outcome_total[0].add(9);
        m.job_outcome_total[4].inc();
        let text = m.render(&[], 0);
        assert!(text.contains("fsp_job_outcome_total{outcome=\"masked\"} 9\n"));
        assert!(text.contains("fsp_job_outcome_total{outcome=\"sdc\"} 0\n"));
        assert!(text.contains("fsp_job_outcome_total{outcome=\"detected\"} 1\n"));
    }

    #[test]
    fn breaks_out_counters_by_mode() {
        let m = Metrics::default();
        m.record_campaign(mode_index("pruned"), 0, 40, 1_000_000_000);
        m.record_campaign(mode_index("protect"), 10, 30, 2_000_000_000);
        m.jobs_completed_by_mode[mode_index("protect")].inc();
        let text = m.render(&[], 0);
        assert!(text.contains("fsp_sites_injected_by_mode{mode=\"pruned\"} 40\n"));
        assert!(text.contains("fsp_sites_injected_by_mode{mode=\"sampled\"} 0\n"));
        assert!(text.contains("fsp_sites_injected_by_mode{mode=\"protect\"} 30\n"));
        assert!(text.contains("fsp_sites_per_second_by_mode{mode=\"pruned\"} 40.0\n"));
        assert!(text.contains("fsp_sites_per_second_by_mode{mode=\"protect\"} 15.0\n"));
        assert!(text.contains("fsp_jobs_completed_by_mode{mode=\"protect\"} 1\n"));
        assert!(text.contains("fsp_jobs_completed_by_mode{mode=\"pruned\"} 0\n"));
        // Aggregates still account for every mode's traffic.
        assert!(text.contains("fsp_sites_injected_total 70\n"));
    }

    #[test]
    fn records_per_stage_plan_counters() {
        let m = Metrics::default();
        let stages = StageCounts {
            exhaustive: 1000,
            after_static: 900,
            after_absint: 850,
            after_thread: 400,
            after_instruction: 300,
            after_loop: 200,
            after_bit: 100,
        };
        m.record_plan(&stages, 30.4, 7.6);
        m.record_plan(&stages, 0.0, 0.0);
        let text = m.render(&[], 0);
        assert!(text.contains("fsp_plan_sites_by_stage{stage=\"exhaustive\"} 2000\n"));
        assert!(text.contains("fsp_plan_sites_by_stage{stage=\"absint\"} 1700\n"));
        assert!(text.contains("fsp_plan_sites_by_stage{stage=\"bit\"} 200\n"));
        assert!(text.contains("fsp_predicted_due_weight{kind=\"crash\"} 30\n"));
        assert!(text.contains("fsp_predicted_due_weight{kind=\"detected\"} 8\n"));
    }

    #[test]
    fn unknown_mode_names_fold_into_slot_zero() {
        assert_eq!(mode_index("pruned"), 0);
        assert_eq!(mode_index("nonesuch"), 0);
        assert_eq!(mode_index("protect"), 2);
    }

    /// The registry migration's golden contract: every series the
    /// hand-rolled renderer exposed still appears, byte-identically, in
    /// the registry-backed output.
    #[test]
    fn every_legacy_series_renders_byte_identically() {
        let m = Metrics::default();
        m.jobs_submitted.add(5);
        m.jobs_completed.add(2);
        m.jobs_failed.inc();
        m.jobs_completed_by_mode[mode_index("sampled")].inc();
        m.record_campaign(mode_index("sampled"), 30, 10, 1_000_000_000);
        m.record_fast_path(7, 640, 3);
        m.record_plan(
            &StageCounts {
                exhaustive: 100,
                after_static: 90,
                after_absint: 80,
                after_thread: 40,
                after_instruction: 30,
                after_loop: 20,
                after_bit: 10,
            },
            2.0,
            1.0,
        );
        let text = m.render(
            &[
                ("queued", 1),
                ("running", 0),
                ("completed", 2),
                ("failed", 1),
                ("cancelled", 0),
            ],
            42,
        );
        for legacy in [
            "fsp_jobs{state=\"queued\"} 1\n",
            "fsp_jobs{state=\"running\"} 0\n",
            "fsp_jobs{state=\"completed\"} 2\n",
            "fsp_jobs{state=\"failed\"} 1\n",
            "fsp_jobs{state=\"cancelled\"} 0\n",
            "fsp_jobs_submitted_total 5\n",
            "fsp_jobs_completed_total 2\n",
            "fsp_jobs_failed_total 1\n",
            "fsp_sites_injected_total 10\n",
            "fsp_cache_hits_total 30\n",
            "fsp_cache_misses_total 10\n",
            "fsp_checkpoint_hits_total 7\n",
            "fsp_skipped_instructions_total 640\n",
            "fsp_early_converged_total 3\n",
            "fsp_cache_hit_rate 0.75\n",
            "fsp_sites_per_second 10.0\n",
            "fsp_jobs_completed_by_mode{mode=\"pruned\"} 0\n",
            "fsp_jobs_completed_by_mode{mode=\"sampled\"} 1\n",
            "fsp_jobs_completed_by_mode{mode=\"protect\"} 0\n",
            "fsp_sites_injected_by_mode{mode=\"pruned\"} 0\n",
            "fsp_sites_injected_by_mode{mode=\"sampled\"} 10\n",
            "fsp_sites_injected_by_mode{mode=\"protect\"} 0\n",
            "fsp_sites_per_second_by_mode{mode=\"pruned\"} 0.0\n",
            "fsp_sites_per_second_by_mode{mode=\"sampled\"} 10.0\n",
            "fsp_sites_per_second_by_mode{mode=\"protect\"} 0.0\n",
            "fsp_plan_sites_by_stage{stage=\"exhaustive\"} 100\n",
            "fsp_plan_sites_by_stage{stage=\"static_ace\"} 90\n",
            "fsp_plan_sites_by_stage{stage=\"absint\"} 80\n",
            "fsp_plan_sites_by_stage{stage=\"thread\"} 40\n",
            "fsp_plan_sites_by_stage{stage=\"instruction\"} 30\n",
            "fsp_plan_sites_by_stage{stage=\"loop\"} 20\n",
            "fsp_plan_sites_by_stage{stage=\"bit\"} 10\n",
            "fsp_predicted_due_weight{kind=\"crash\"} 2\n",
            "fsp_predicted_due_weight{kind=\"detected\"} 1\n",
            "fsp_store_outcomes 42\n",
            "# TYPE fsp_jobs gauge\n",
            "# TYPE fsp_jobs_submitted_total counter\n",
            "# TYPE fsp_cache_hit_rate gauge\n",
        ] {
            assert!(text.contains(legacy), "missing legacy series: {legacy:?}");
        }
    }
}
