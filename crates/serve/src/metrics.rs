//! Service counters and their Prometheus text rendering.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use fsp_core::StageCounts;

/// Stable metric labels of the campaign modes, in breakout order.
pub const MODES: [&str; 3] = ["pruned", "sampled", "protect"];

/// Stable metric labels of the pruning stages, in pipeline order
/// (surviving sites *after* each stage; `exhaustive` is the population).
pub const STAGES: [&str; 7] = [
    "exhaustive",
    "static_ace",
    "absint",
    "thread",
    "instruction",
    "loop",
    "bit",
];

/// Index of a [`CampaignMode::mode_name`] into the per-mode counters.
/// Unknown names fold into slot 0 rather than panicking in a metrics path.
#[must_use]
pub fn mode_index(mode: &str) -> usize {
    MODES.iter().position(|m| *m == mode).unwrap_or(0)
}

/// Monotonic service counters, shared lock-free between the worker pool
/// and the HTTP layer.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /jobs` (plus jobs recovered on restart).
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached the completed state.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (bad kernel, workload fault).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled by request.
    pub jobs_cancelled: AtomicU64,
    /// Fault sites actually injected (cache misses that ran).
    pub sites_injected: AtomicU64,
    /// Sites resolved from the persistent outcome store.
    pub cache_hits: AtomicU64,
    /// Sites that had to be injected because the store missed.
    pub cache_misses: AtomicU64,
    /// Wall-clock nanoseconds spent inside injection campaigns.
    pub injection_nanos: AtomicU64,
    /// Completed jobs per campaign mode (indexed by [`MODES`]).
    pub jobs_completed_by_mode: [AtomicU64; MODES.len()],
    /// Injected sites per campaign mode.
    pub sites_injected_by_mode: [AtomicU64; MODES.len()],
    /// Campaign wall-clock nanoseconds per campaign mode.
    pub injection_nanos_by_mode: [AtomicU64; MODES.len()],
    /// Injected runs that resumed from a golden checkpoint instead of
    /// replaying the shared prefix.
    pub checkpoint_hits: AtomicU64,
    /// Golden-prefix instructions skipped via checkpoint resume.
    pub skipped_instructions: AtomicU64,
    /// Injected runs classified Masked by early convergence (divergence
    /// set emptied before the run finished).
    pub early_converged: AtomicU64,
    /// Sites surviving after each pruning stage, summed over planned
    /// pruned campaigns (indexed by [`STAGES`]).
    pub stage_sites: [AtomicU64; STAGES.len()],
    /// Exhaustive-site weight statically predicted `CRASH` and skipped
    /// (rounded to whole sites).
    pub predicted_crash_weight: AtomicU64,
    /// Exhaustive-site weight statically predicted `Detected` and skipped
    /// (rounded to whole sites).
    pub predicted_detected_weight: AtomicU64,
}

impl Metrics {
    /// Adds a campaign's cache accounting in one shot, attributed to the
    /// mode at `mode` (see [`mode_index`]).
    pub fn record_campaign(&self, mode: usize, hits: u64, injected: u64, nanos: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(injected, Ordering::Relaxed);
        self.sites_injected.fetch_add(injected, Ordering::Relaxed);
        self.injection_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.sites_injected_by_mode[mode].fetch_add(injected, Ordering::Relaxed);
        self.injection_nanos_by_mode[mode].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds a pruned campaign's per-stage plan accounting: how many sites
    /// survived each stage, and how much weight the static analysis
    /// predicted as DUEs without running it.
    pub fn record_plan(&self, stages: &StageCounts, predicted_crash: f64, predicted_detected: f64) {
        let by_stage = [
            stages.exhaustive,
            stages.after_static,
            stages.after_absint,
            stages.after_thread,
            stages.after_instruction,
            stages.after_loop,
            stages.after_bit,
        ];
        for (counter, n) in self.stage_sites.iter().zip(by_stage) {
            counter.fetch_add(n, Ordering::Relaxed);
        }
        self.predicted_crash_weight
            .fetch_add(predicted_crash.round() as u64, Ordering::Relaxed);
        self.predicted_detected_weight
            .fetch_add(predicted_detected.round() as u64, Ordering::Relaxed);
    }

    /// Adds a campaign's checkpoint-resume fast-path accounting.
    pub fn record_fast_path(&self, checkpoint_hits: u64, skipped: u64, early_converged: u64) {
        self.checkpoint_hits
            .fetch_add(checkpoint_hits, Ordering::Relaxed);
        self.skipped_instructions
            .fetch_add(skipped, Ordering::Relaxed);
        self.early_converged
            .fetch_add(early_converged, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition format. `jobs_by_state`
    /// supplies the current gauge of jobs per state (queued/running/...),
    /// which lives in the job table rather than in atomic counters.
    #[must_use]
    pub fn render(&self, jobs_by_state: &[(&str, u64)], store_len: u64) -> String {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let injected = self.sites_injected.load(Ordering::Relaxed);
        let nanos = self.injection_nanos.load(Ordering::Relaxed);
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let sites_per_sec = if nanos == 0 {
            0.0
        } else {
            injected as f64 / (nanos as f64 / 1e9)
        };
        let mut out = String::new();
        out.push_str("# HELP fsp_jobs Jobs by state.\n# TYPE fsp_jobs gauge\n");
        for (state, count) in jobs_by_state {
            let _ = writeln!(out, "fsp_jobs{{state=\"{state}\"}} {count}");
        }
        let counters: [(&str, &str, u64); 9] = [
            (
                "fsp_jobs_submitted_total",
                "Jobs accepted since start.",
                self.jobs_submitted.load(Ordering::Relaxed),
            ),
            (
                "fsp_jobs_completed_total",
                "Jobs completed since start.",
                self.jobs_completed.load(Ordering::Relaxed),
            ),
            (
                "fsp_jobs_failed_total",
                "Jobs failed since start.",
                self.jobs_failed.load(Ordering::Relaxed),
            ),
            (
                "fsp_sites_injected_total",
                "Fault sites injected (cache misses run).",
                injected,
            ),
            (
                "fsp_cache_hits_total",
                "Sites resolved from the outcome store.",
                hits,
            ),
            (
                "fsp_cache_misses_total",
                "Sites not found in the outcome store.",
                misses,
            ),
            (
                "fsp_checkpoint_hits_total",
                "Injected runs resumed from a golden checkpoint.",
                self.checkpoint_hits.load(Ordering::Relaxed),
            ),
            (
                "fsp_skipped_instructions_total",
                "Golden-prefix instructions skipped via checkpoint resume.",
                self.skipped_instructions.load(Ordering::Relaxed),
            ),
            (
                "fsp_early_converged_total",
                "Injected runs classified Masked by early convergence.",
                self.early_converged.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            let _ = write!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            );
        }
        let _ = write!(
            out,
            "# HELP fsp_cache_hit_rate Fraction of sites served from the store.\n\
             # TYPE fsp_cache_hit_rate gauge\nfsp_cache_hit_rate {hit_rate}\n"
        );
        let _ = write!(
            out,
            "# HELP fsp_sites_per_second Injection throughput over campaign wall time.\n\
             # TYPE fsp_sites_per_second gauge\nfsp_sites_per_second {sites_per_sec:.1}\n"
        );
        self.render_by_mode(&mut out);
        self.render_by_stage(&mut out);
        let _ = write!(
            out,
            "# HELP fsp_store_outcomes Outcomes in the persistent store.\n\
             # TYPE fsp_store_outcomes gauge\nfsp_store_outcomes {store_len}\n"
        );
        out
    }

    /// Renders the per-stage plan counters and the predicted-DUE weights.
    fn render_by_stage(&self, out: &mut String) {
        out.push_str(
            "# HELP fsp_plan_sites_by_stage Sites surviving each pruning stage, \
             summed over planned campaigns.\n\
             # TYPE fsp_plan_sites_by_stage counter\n",
        );
        for (i, stage) in STAGES.iter().enumerate() {
            let n = self.stage_sites[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "fsp_plan_sites_by_stage{{stage=\"{stage}\"}} {n}");
        }
        out.push_str(
            "# HELP fsp_predicted_due_weight Exhaustive-site weight statically \
             predicted as a DUE and skipped, by predicted outcome.\n\
             # TYPE fsp_predicted_due_weight counter\n",
        );
        let crash = self.predicted_crash_weight.load(Ordering::Relaxed);
        let detected = self.predicted_detected_weight.load(Ordering::Relaxed);
        let _ = writeln!(out, "fsp_predicted_due_weight{{kind=\"crash\"}} {crash}");
        let _ = writeln!(
            out,
            "fsp_predicted_due_weight{{kind=\"detected\"}} {detected}"
        );
    }

    /// Renders the per-mode breakout counters (jobs, sites, throughput).
    fn render_by_mode(&self, out: &mut String) {
        out.push_str(
            "# HELP fsp_jobs_completed_by_mode Jobs completed, by campaign mode.\n\
             # TYPE fsp_jobs_completed_by_mode counter\n",
        );
        for (i, mode) in MODES.iter().enumerate() {
            let n = self.jobs_completed_by_mode[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "fsp_jobs_completed_by_mode{{mode=\"{mode}\"}} {n}");
        }
        out.push_str(
            "# HELP fsp_sites_injected_by_mode Fault sites injected, by campaign mode.\n\
             # TYPE fsp_sites_injected_by_mode counter\n",
        );
        for (i, mode) in MODES.iter().enumerate() {
            let n = self.sites_injected_by_mode[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "fsp_sites_injected_by_mode{{mode=\"{mode}\"}} {n}");
        }
        out.push_str(
            "# HELP fsp_sites_per_second_by_mode Injection throughput, by campaign mode.\n\
             # TYPE fsp_sites_per_second_by_mode gauge\n",
        );
        for (i, mode) in MODES.iter().enumerate() {
            let n = self.sites_injected_by_mode[i].load(Ordering::Relaxed);
            let ns = self.injection_nanos_by_mode[i].load(Ordering::Relaxed);
            let rate = if ns == 0 {
                0.0
            } else {
                n as f64 / (ns as f64 / 1e9)
            };
            let _ = writeln!(
                out,
                "fsp_sites_per_second_by_mode{{mode=\"{mode}\"}} {rate:.1}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.record_campaign(mode_index("sampled"), 75, 25, 2_000_000_000);
        m.record_fast_path(20, 9000, 12);
        let text = m.render(&[("queued", 1), ("completed", 2)], 100);
        assert!(text.contains("fsp_jobs{state=\"queued\"} 1\n"));
        assert!(text.contains("fsp_jobs_submitted_total 3\n"));
        assert!(text.contains("fsp_cache_hit_rate 0.75\n"));
        assert!(text.contains("fsp_sites_injected_total 25\n"));
        assert!(text.contains("fsp_sites_per_second 12.5\n"));
        assert!(text.contains("fsp_store_outcomes 100\n"));
        assert!(text.contains("fsp_checkpoint_hits_total 20\n"));
        assert!(text.contains("fsp_skipped_instructions_total 9000\n"));
        assert!(text.contains("fsp_early_converged_total 12\n"));
    }

    #[test]
    fn breaks_out_counters_by_mode() {
        let m = Metrics::default();
        m.record_campaign(mode_index("pruned"), 0, 40, 1_000_000_000);
        m.record_campaign(mode_index("protect"), 10, 30, 2_000_000_000);
        m.jobs_completed_by_mode[mode_index("protect")].fetch_add(1, Ordering::Relaxed);
        let text = m.render(&[], 0);
        assert!(text.contains("fsp_sites_injected_by_mode{mode=\"pruned\"} 40\n"));
        assert!(text.contains("fsp_sites_injected_by_mode{mode=\"sampled\"} 0\n"));
        assert!(text.contains("fsp_sites_injected_by_mode{mode=\"protect\"} 30\n"));
        assert!(text.contains("fsp_sites_per_second_by_mode{mode=\"pruned\"} 40.0\n"));
        assert!(text.contains("fsp_sites_per_second_by_mode{mode=\"protect\"} 15.0\n"));
        assert!(text.contains("fsp_jobs_completed_by_mode{mode=\"protect\"} 1\n"));
        assert!(text.contains("fsp_jobs_completed_by_mode{mode=\"pruned\"} 0\n"));
        // Aggregates still account for every mode's traffic.
        assert!(text.contains("fsp_sites_injected_total 70\n"));
    }

    #[test]
    fn records_per_stage_plan_counters() {
        let m = Metrics::default();
        let stages = StageCounts {
            exhaustive: 1000,
            after_static: 900,
            after_absint: 850,
            after_thread: 400,
            after_instruction: 300,
            after_loop: 200,
            after_bit: 100,
        };
        m.record_plan(&stages, 30.4, 7.6);
        m.record_plan(&stages, 0.0, 0.0);
        let text = m.render(&[], 0);
        assert!(text.contains("fsp_plan_sites_by_stage{stage=\"exhaustive\"} 2000\n"));
        assert!(text.contains("fsp_plan_sites_by_stage{stage=\"absint\"} 1700\n"));
        assert!(text.contains("fsp_plan_sites_by_stage{stage=\"bit\"} 200\n"));
        assert!(text.contains("fsp_predicted_due_weight{kind=\"crash\"} 30\n"));
        assert!(text.contains("fsp_predicted_due_weight{kind=\"detected\"} 8\n"));
    }

    #[test]
    fn unknown_mode_names_fold_into_slot_zero() {
        assert_eq!(mode_index("pruned"), 0);
        assert_eq!(mode_index("nonesuch"), 0);
        assert_eq!(mode_index("protect"), 2);
    }
}
