//! Job specifications, states and their wire/persistence encoding.

use fsp_inject::FaultModel;
use fsp_protect::ProtectScope;
use fsp_stats::ResilienceProfile;

use crate::json::Json;

/// What kind of campaign a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMode {
    /// The paper's progressive-pruning campaign (`fsp prune` as a job).
    Pruned {
        /// Enable the static-ACE Stage 0.
        static_ace: bool,
        /// Loop iterations sampled per loop (0 disables the stage).
        loop_samples: usize,
    },
    /// A uniform random-sampling campaign of `samples` injections.
    Sampled {
        /// Number of injections.
        samples: usize,
    },
    /// Selective hardening: a baseline sampled campaign plans a DMR
    /// transformation, and the same sites are re-injected into the
    /// hardened kernel (outcomes keyed under its own fingerprint).
    Protect {
        /// Budget as thousandths of the full-DMR overhead (250 = 0.25;
        /// an integer so the mode stays `Copy + Eq` and round-trips
        /// through JSON exactly).
        budget_millis: u32,
        /// Planner selection granularity.
        scope: ProtectScope,
        /// Baseline campaign size.
        samples: usize,
    },
}

/// Opt-in CI-convergence early stopping for a campaign (`submit
/// --stop-at-margin`). Unlike the `fleet` placement flag, early stopping
/// *changes the result*, so it is part of the spec's serialized fields —
/// and therefore of every fingerprint derived from them. Specs without it
/// serialize exactly as before, keeping historical documents byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopSpec {
    /// Required error margin: stop once every outcome-class confidence
    /// interval half-width fits it.
    pub margin: f64,
    /// Confidence level of the per-class intervals.
    pub confidence: f64,
}

/// A campaign job as submitted to `POST /jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Registry id of the kernel (e.g. `"gemm"`).
    pub kernel: String,
    /// Campaign kind and its stage configuration.
    pub mode: CampaignMode,
    /// Fault model for every injection.
    pub model: FaultModel,
    /// Seed: drives loop-iteration sampling (pruned) or site sampling
    /// (sampled).
    pub seed: u64,
    /// Optional early stopping; `None` runs the full plan.
    pub stop: Option<StopSpec>,
}

impl CampaignMode {
    /// Stable wire and metrics-label name of the mode.
    #[must_use]
    pub const fn mode_name(self) -> &'static str {
        match self {
            CampaignMode::Pruned { .. } => "pruned",
            CampaignMode::Sampled { .. } => "sampled",
            CampaignMode::Protect { .. } => "protect",
        }
    }
}

impl JobSpec {
    /// A pruned campaign with the paper's default stages.
    #[must_use]
    pub fn pruned(kernel: &str) -> JobSpec {
        JobSpec {
            kernel: kernel.to_owned(),
            mode: CampaignMode::Pruned {
                static_ace: true,
                loop_samples: 7,
            },
            model: FaultModel::SingleBitFlip,
            seed: 0xF5EED,
            stop: None,
        }
    }

    /// A random-sampling campaign of `samples` injections.
    #[must_use]
    pub fn sampled(kernel: &str, samples: usize) -> JobSpec {
        JobSpec {
            kernel: kernel.to_owned(),
            mode: CampaignMode::Sampled { samples },
            model: FaultModel::SingleBitFlip,
            seed: 0xF5EED,
            stop: None,
        }
    }

    /// A selective-hardening job at `budget` (fraction of full-DMR
    /// overhead, quantized to thousandths).
    #[must_use]
    pub fn protect(kernel: &str, budget: f64, samples: usize) -> JobSpec {
        JobSpec {
            kernel: kernel.to_owned(),
            mode: CampaignMode::Protect {
                budget_millis: (budget.clamp(0.0, 1.0) * 1000.0).round() as u32,
                scope: ProtectScope::default(),
                samples,
            },
            model: FaultModel::SingleBitFlip,
            seed: 0xF5EED,
            stop: None,
        }
    }

    /// Builds a copy with early stopping enabled.
    #[must_use]
    pub fn with_stop(mut self, margin: f64, confidence: f64) -> JobSpec {
        self.stop = Some(StopSpec { margin, confidence });
        self
    }

    /// Encodes the spec's fields (flat, merged into job documents).
    #[must_use]
    pub fn fields(&self) -> Vec<(String, Json)> {
        let mut pairs = vec![("kernel".to_owned(), Json::Str(self.kernel.clone()))];
        match self.mode {
            CampaignMode::Pruned {
                static_ace,
                loop_samples,
            } => {
                pairs.push(("mode".to_owned(), Json::Str("pruned".to_owned())));
                pairs.push(("static_ace".to_owned(), Json::Bool(static_ace)));
                pairs.push(("loop_samples".to_owned(), Json::u64(loop_samples as u64)));
            }
            CampaignMode::Sampled { samples } => {
                pairs.push(("mode".to_owned(), Json::Str("sampled".to_owned())));
                pairs.push(("samples".to_owned(), Json::u64(samples as u64)));
            }
            CampaignMode::Protect {
                budget_millis,
                scope,
                samples,
            } => {
                pairs.push(("mode".to_owned(), Json::Str("protect".to_owned())));
                pairs.push((
                    "budget_millis".to_owned(),
                    Json::u64(u64::from(budget_millis)),
                ));
                pairs.push(("scope".to_owned(), Json::Str(scope.name().to_owned())));
                pairs.push(("samples".to_owned(), Json::u64(samples as u64)));
            }
        }
        pairs.push(("model".to_owned(), Json::Str(self.model.name().to_owned())));
        pairs.push(("seed".to_owned(), Json::u64(self.seed)));
        if let Some(stop) = self.stop {
            pairs.push(("stop_at_margin".to_owned(), Json::Num(stop.margin)));
            pairs.push(("stop_confidence".to_owned(), Json::Num(stop.confidence)));
        }
        pairs
    }

    /// Encodes the spec as a standalone object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields())
    }

    /// Decodes a spec from a submission document. Missing optional fields
    /// take the [`JobSpec::pruned`] defaults.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(value: &Json) -> Result<JobSpec, String> {
        let kernel = value
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("missing field `kernel`")?
            .to_owned();
        let mode = match value.get("mode").and_then(Json::as_str).unwrap_or("pruned") {
            "pruned" => CampaignMode::Pruned {
                static_ace: value
                    .get("static_ace")
                    .map(|v| v.as_bool().ok_or("`static_ace` must be a boolean"))
                    .transpose()?
                    .unwrap_or(true),
                loop_samples: value
                    .get("loop_samples")
                    .map(|v| v.as_u64().ok_or("`loop_samples` must be an integer"))
                    .transpose()?
                    .unwrap_or(7) as usize,
            },
            "sampled" => CampaignMode::Sampled {
                samples: value
                    .get("samples")
                    .ok_or("sampled mode needs `samples`")?
                    .as_u64()
                    .ok_or("`samples` must be an integer")? as usize,
            },
            "protect" => CampaignMode::Protect {
                budget_millis: value
                    .get("budget_millis")
                    .map(|v| v.as_u64().ok_or("`budget_millis` must be an integer"))
                    .transpose()?
                    .unwrap_or(250)
                    .min(1000) as u32,
                scope: match value.get("scope").and_then(Json::as_str) {
                    None => ProtectScope::default(),
                    Some(name) => ProtectScope::from_name(name)
                        .ok_or_else(|| format!("unknown scope `{name}`"))?,
                },
                samples: value
                    .get("samples")
                    .map(|v| v.as_u64().ok_or("`samples` must be an integer"))
                    .transpose()?
                    .unwrap_or(500) as usize,
            },
            other => return Err(format!("unknown mode `{other}`")),
        };
        let model = match value.get("model").and_then(Json::as_str) {
            None => FaultModel::SingleBitFlip,
            Some(name) => {
                FaultModel::from_name(name).ok_or_else(|| format!("unknown model `{name}`"))?
            }
        };
        let seed = value
            .get("seed")
            .map(|v| v.as_u64().ok_or("`seed` must be an integer"))
            .transpose()?
            .unwrap_or(0xF5EED);
        let stop = match value.get("stop_at_margin") {
            None => {
                if value.get("stop_confidence").is_some() {
                    return Err("`stop_confidence` requires `stop_at_margin`".to_owned());
                }
                None
            }
            Some(m) => {
                let margin = m.as_f64().ok_or("`stop_at_margin` must be a number")?;
                let confidence = value
                    .get("stop_confidence")
                    .map(|v| v.as_f64().ok_or("`stop_confidence` must be a number"))
                    .transpose()?
                    .unwrap_or(0.998);
                if !(margin > 0.0 && margin < 1.0) {
                    return Err("`stop_at_margin` must be in (0, 1)".to_owned());
                }
                if !(confidence > 0.0 && confidence < 1.0) {
                    return Err("`stop_confidence` must be in (0, 1)".to_owned());
                }
                Some(StopSpec { margin, confidence })
            }
        };
        Ok(JobSpec {
            kernel,
            mode,
            model,
            seed,
            stop,
        })
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Being executed (or interrupted mid-run by a crash — recovery
    /// requeues it).
    Running,
    /// Finished with a result.
    Completed,
    /// Finished with an error.
    Failed,
    /// Stopped by request.
    Cancelled,
}

impl JobState {
    /// All states, for metrics gauges.
    pub const ALL: [JobState; 5] = [
        JobState::Queued,
        JobState::Running,
        JobState::Completed,
        JobState::Failed,
        JobState::Cancelled,
    ];

    /// Wire name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<JobState> {
        JobState::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether the job can still make progress.
    #[must_use]
    pub const fn is_active(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// How an early-stop-enabled campaign ended. Present on a result iff the
/// spec requested stopping — results of plain campaigns are untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopReport {
    /// Whether the stopping rule fired before the plan was exhausted.
    pub stopped: bool,
    /// Sites actually contributing to the profile: the stopped prefix
    /// length, or the full plan when the rule never fired.
    pub sites_injected: usize,
    /// The widest per-class interval half-width over those sites, at the
    /// requested confidence.
    pub achieved_margin: f64,
}

/// A completed job's payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Kernel program fingerprint the outcomes are keyed under.
    pub fingerprint: u64,
    /// Launch-configuration hash.
    pub launch: u64,
    /// Number of injected (weighted) sites in the campaign.
    pub sites: usize,
    /// The final extrapolated resilience profile.
    pub profile: ResilienceProfile,
    /// Early-stop outcome, when the spec requested stopping.
    pub early: Option<EarlyStopReport>,
}

/// One job as tracked by the engine and persisted to `jobs/<id>.json`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (`"job-<n>"`).
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Total sites in the campaign (0 until planned).
    pub total: usize,
    /// Sites resolved so far (cache hits + injections).
    pub done: usize,
    /// Sites served by the outcome store when the job started running.
    pub cache_hits: usize,
    /// The running (partial) weighted profile, for status reports.
    pub partial: ResilienceProfile,
    /// Raw per-outcome resolution counts in `Outcome::code()` order
    /// (masked / sdc / crash / hang / detected) — the dashboard's and
    /// Prometheus's shared source of truth.
    pub outcome_counts: [u64; 5],
    /// Second moment of the resolved-site weights, for the effective
    /// sample size of streaming interval estimates.
    pub sum_w2: f64,
    /// Statically settled certain weight `[masked, crash, detected]`
    /// from the pruning stages, folded into live estimates.
    pub settled: [f64; 3],
    /// Failure message, when `state == Failed`.
    pub error: Option<String>,
    /// The result, when `state == Completed`.
    pub result: Option<JobResult>,
    /// Whether the campaign executes on the worker fleet instead of the
    /// in-process pool. Deliberately *not* part of [`JobSpec`]: execution
    /// placement must never leak into the canonical result document,
    /// which is byte-identical however the outcomes were computed.
    pub fleet: bool,
}

/// Encodes a profile's raw weights (bit-exact round trip).
#[must_use]
pub fn profile_to_json(p: &ResilienceProfile) -> Json {
    Json::obj([
        ("masked", Json::Num(p.masked())),
        ("sdc", Json::Num(p.sdc())),
        ("other", Json::Num(p.other())),
        ("crashes", Json::Num(p.crashes())),
        ("hangs", Json::Num(p.hangs())),
        ("detected", Json::Num(p.detected())),
    ])
}

/// Decodes a profile encoded by [`profile_to_json`].
///
/// # Errors
///
/// Returns a message when a weight is missing or malformed.
pub fn profile_from_json(value: &Json) -> Result<ResilienceProfile, String> {
    let field = |name: &str| -> Result<f64, String> {
        value
            .get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("profile missing `{name}`"))
    };
    Ok(ResilienceProfile::from_parts(
        field("masked")?,
        field("sdc")?,
        field("other")?,
        field("crashes")?,
        field("hangs")?,
        // Documents persisted before detection-aware campaigns existed
        // have no `detected` weight; default to zero.
        value.get("detected").and_then(Json::as_f64).unwrap_or(0.0),
    ))
}

impl JobRecord {
    /// A freshly submitted job.
    #[must_use]
    pub fn new(id: String, spec: JobSpec) -> JobRecord {
        JobRecord {
            id,
            spec,
            state: JobState::Queued,
            total: 0,
            done: 0,
            cache_hits: 0,
            partial: ResilienceProfile::new(),
            outcome_counts: [0; 5],
            sum_w2: 0.0,
            settled: [0.0; 3],
            error: None,
            result: None,
            fleet: false,
        }
    }

    /// The full job document: status fields plus (when completed) the
    /// result. This is both the `GET /jobs/:id` body and the on-disk
    /// persistence format.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("id".to_owned(), Json::Str(self.id.clone()))];
        pairs.extend(self.spec.fields());
        pairs.push(("state".to_owned(), Json::Str(self.state.name().to_owned())));
        pairs.push(("total".to_owned(), Json::u64(self.total as u64)));
        pairs.push(("done".to_owned(), Json::u64(self.done as u64)));
        pairs.push(("cache_hits".to_owned(), Json::u64(self.cache_hits as u64)));
        if self.fleet {
            pairs.push(("fleet".to_owned(), Json::Bool(true)));
        }
        pairs.push(("partial".to_owned(), profile_to_json(&self.partial)));
        pairs.push((
            "outcomes".to_owned(),
            Json::Obj(
                fsp_stats::stream::CLASS_LABELS
                    .iter()
                    .zip(self.outcome_counts)
                    .map(|(label, count)| ((*label).to_owned(), Json::u64(count)))
                    .collect(),
            ),
        ));
        pairs.push(("sum_w2".to_owned(), Json::Num(self.sum_w2)));
        pairs.push((
            "settled".to_owned(),
            Json::Arr(self.settled.iter().map(|&w| Json::Num(w)).collect()),
        ));
        if let Some(error) = &self.error {
            pairs.push(("error".to_owned(), Json::Str(error.clone())));
        }
        if let Some(result) = &self.result {
            pairs.push(("result".to_owned(), result_to_json(&self.spec, result)));
        }
        Json::Obj(pairs)
    }

    /// Decodes a persisted job document.
    ///
    /// # Errors
    ///
    /// Returns a message on any missing or malformed field.
    pub fn from_json(value: &Json) -> Result<JobRecord, String> {
        let spec = JobSpec::from_json(value)?;
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .ok_or("missing field `id`")?
            .to_owned();
        let state = value
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::from_name)
            .ok_or("missing or unknown `state`")?;
        let int =
            |name: &str| -> usize { value.get(name).and_then(Json::as_u64).unwrap_or(0) as usize };
        let partial = match value.get("partial") {
            Some(p) => profile_from_json(p)?,
            None => ResilienceProfile::new(),
        };
        let result = value
            .get("result")
            .map(|r| -> Result<JobResult, String> {
                let early = r
                    .get("early_stopped")
                    .map(|flag| -> Result<EarlyStopReport, String> {
                        Ok(EarlyStopReport {
                            stopped: flag.as_bool().ok_or("`early_stopped` must be a boolean")?,
                            sites_injected: r
                                .get("sites_injected")
                                .and_then(Json::as_u64)
                                .ok_or("early-stop result missing `sites_injected`")?
                                as usize,
                            achieved_margin: r
                                .get("achieved_margin")
                                .and_then(Json::as_f64)
                                .ok_or("early-stop result missing `achieved_margin`")?,
                        })
                    })
                    .transpose()?;
                Ok(JobResult {
                    fingerprint: r
                        .get("fingerprint")
                        .and_then(Json::as_u64)
                        .ok_or("result missing `fingerprint`")?,
                    launch: r
                        .get("launch")
                        .and_then(Json::as_u64)
                        .ok_or("result missing `launch`")?,
                    sites: r.get("sites").and_then(Json::as_u64).unwrap_or(0) as usize,
                    profile: profile_from_json(
                        r.get("profile").ok_or("result missing `profile`")?,
                    )?,
                    early,
                })
            })
            .transpose()?;
        // Documents persisted before streaming progress existed carry no
        // per-outcome counts or weight moments; default to zero.
        let mut outcome_counts = [0u64; 5];
        if let Some(counts) = value.get("outcomes") {
            for (k, label) in fsp_stats::stream::CLASS_LABELS.iter().enumerate() {
                outcome_counts[k] = counts.get(label).and_then(Json::as_u64).unwrap_or(0);
            }
        }
        let mut settled = [0.0f64; 3];
        if let Some(Json::Arr(items)) = value.get("settled") {
            for (slot, item) in settled.iter_mut().zip(items) {
                *slot = item.as_f64().unwrap_or(0.0);
            }
        }
        Ok(JobRecord {
            id,
            spec,
            state,
            total: int("total"),
            done: int("done"),
            cache_hits: int("cache_hits"),
            partial,
            outcome_counts,
            sum_w2: value.get("sum_w2").and_then(Json::as_f64).unwrap_or(0.0),
            settled,
            error: value.get("error").and_then(Json::as_str).map(str::to_owned),
            result,
            fleet: value.get("fleet").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// The canonical result document for a finished campaign. `fsp submit
/// --local` prints exactly this for an in-process run, so CI can diff the
/// service path against the library path byte-for-byte.
#[must_use]
pub fn result_to_json(spec: &JobSpec, result: &JobResult) -> Json {
    let mut pairs = spec.fields();
    pairs.push(("fingerprint".to_owned(), Json::u64(result.fingerprint)));
    pairs.push(("launch".to_owned(), Json::u64(result.launch)));
    pairs.push(("sites".to_owned(), Json::u64(result.sites as u64)));
    pairs.push(("profile".to_owned(), profile_to_json(&result.profile)));
    let (m, s, o) = result.profile.percentages();
    pairs.push((
        "percentages".to_owned(),
        Json::Arr(vec![Json::Num(m), Json::Num(s), Json::Num(o)]),
    ));
    if let Some(early) = &result.early {
        pairs.push(("early_stopped".to_owned(), Json::Bool(early.stopped)));
        pairs.push((
            "sites_injected".to_owned(),
            Json::u64(early.sites_injected as u64),
        ));
        pairs.push((
            "achieved_margin".to_owned(),
            Json::Num(early.achieved_margin),
        ));
        pairs.push((
            "stream_version".to_owned(),
            Json::u64(fsp_stats::stream_version()),
        ));
    }
    Json::Obj(pairs)
}

/// The live statistical progress document (`GET /jobs/:id/progress`):
/// per-outcome point estimates with Wilson intervals at the requested (or
/// paper-default) confidence, the achieved-vs-requested margin, and a
/// projection of sites remaining to convergence. Assembled purely from
/// the job record's counters, so in-process and fleet jobs — and resumed
/// jobs restored from disk — all render identically.
#[must_use]
pub fn progress_to_json(record: &JobRecord) -> Json {
    use fsp_stats::stream::CLASS_LABELS;
    use fsp_stats::{StopRule, StreamEstimator};

    let stop = record.spec.stop;
    let confidence = stop.map_or(0.998, |s| s.confidence);
    // No requested margin still yields a useful projection: report
    // distance from the paper's baseline ±0.63% criterion.
    let margin = stop.map_or(0.0063, |s| s.margin);
    let p = &record.partial;
    let mut weights = [p.masked(), p.sdc(), p.crashes(), p.hangs(), p.detected()];
    let certain = [
        record.settled[0],
        0.0,
        record.settled[1],
        0.0,
        record.settled[2],
    ];
    // A completed job's partial profile is the *settled* final profile;
    // peel the certain mass back out so it is not counted twice.
    if record.state == JobState::Completed {
        for (w, c) in weights.iter_mut().zip(certain) {
            *w = (*w - c).max(0.0);
        }
    }
    let est = StreamEstimator::from_parts(record.outcome_counts, weights, record.sum_w2, certain);
    let intervals = est.intervals(confidence);
    let rule = StopRule::new(confidence, margin);
    let projected = rule.projected_total(&est);
    let mut pairs = vec![
        ("id".to_owned(), Json::Str(record.id.clone())),
        (
            "state".to_owned(),
            Json::Str(record.state.name().to_owned()),
        ),
        ("kernel".to_owned(), Json::Str(record.spec.kernel.clone())),
        (
            "mode".to_owned(),
            Json::Str(record.spec.mode.mode_name().to_owned()),
        ),
        ("fleet".to_owned(), Json::Bool(record.fleet)),
        ("total".to_owned(), Json::u64(record.total as u64)),
        ("done".to_owned(), Json::u64(record.done as u64)),
        ("cache_hits".to_owned(), Json::u64(record.cache_hits as u64)),
        (
            "stream_version".to_owned(),
            Json::u64(fsp_stats::stream_version()),
        ),
        ("confidence".to_owned(), Json::Num(confidence)),
        (
            "margin".to_owned(),
            stop.map_or(Json::Null, |s| Json::Num(s.margin)),
        ),
        ("stop_requested".to_owned(), Json::Bool(stop.is_some())),
        (
            "outcomes".to_owned(),
            Json::Arr(
                CLASS_LABELS
                    .iter()
                    .enumerate()
                    .map(|(k, label)| {
                        Json::obj([
                            ("outcome", Json::Str((*label).to_owned())),
                            ("count", Json::u64(record.outcome_counts[k])),
                            ("weight", Json::Num(certain[k] + weights[k])),
                            ("estimate", Json::Num(intervals[k].estimate)),
                            ("lo", Json::Num(intervals[k].lo)),
                            ("hi", Json::Num(intervals[k].hi)),
                            ("half_width", Json::Num(intervals[k].half_width())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "achieved_margin".to_owned(),
            Json::Num(est.achieved_margin(confidence)),
        ),
        (
            "converged".to_owned(),
            Json::Bool(est.converged(confidence, margin)),
        ),
        ("projected_total".to_owned(), Json::u64(projected)),
        (
            "projected_remaining".to_owned(),
            Json::u64(
                projected
                    .saturating_sub(est.len())
                    .min(record.total.saturating_sub(record.done) as u64),
            ),
        ),
    ];
    if let Some(early) = record.result.as_ref().and_then(|r| r.early) {
        pairs.push(("early_stopped".to_owned(), Json::Bool(early.stopped)));
        pairs.push((
            "sites_injected".to_owned(),
            Json::u64(early.sites_injected as u64),
        ));
        pairs.push((
            "final_achieved_margin".to_owned(),
            Json::Num(early.achieved_margin),
        ));
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_stats::Outcome;

    #[test]
    fn spec_round_trips_both_modes() {
        for spec in [
            JobSpec::pruned("gemm"),
            JobSpec {
                kernel: "hotspot".to_owned(),
                mode: CampaignMode::Sampled { samples: 1234 },
                model: FaultModel::StuckAt1,
                seed: u64::MAX,
                stop: None,
            },
            JobSpec::sampled("fdtd", 900).with_stop(0.0063, 0.998),
            JobSpec {
                kernel: "pathfinder".to_owned(),
                mode: CampaignMode::Protect {
                    budget_millis: 375,
                    scope: ProtectScope::Opcode,
                    samples: 200,
                },
                model: FaultModel::SingleBitFlip,
                seed: 7,
                stop: None,
            },
        ] {
            let text = spec.to_json().to_string();
            let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn spec_defaults_fill_in() {
        let spec = JobSpec::from_json(&Json::parse(r#"{"kernel":"mvt"}"#).unwrap()).unwrap();
        assert_eq!(spec, JobSpec::pruned("mvt"));
        assert!(JobSpec::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(
            JobSpec::from_json(&Json::parse(r#"{"kernel":"x","mode":"sampled"}"#).unwrap())
                .is_err(),
            "sampled mode requires a sample count"
        );
        let spec =
            JobSpec::from_json(&Json::parse(r#"{"kernel":"bfs","mode":"protect"}"#).unwrap())
                .unwrap();
        assert_eq!(spec, JobSpec::protect("bfs", 0.25, 500));
        assert!(
            JobSpec::from_json(
                &Json::parse(r#"{"kernel":"x","mode":"protect","scope":"warp"}"#).unwrap()
            )
            .is_err(),
            "unknown scope names are rejected"
        );
    }

    #[test]
    fn record_round_trips_with_result() {
        let mut p = ResilienceProfile::new();
        p.record_weighted(Outcome::Sdc, 1.0 / 3.0);
        p.record_weighted(Outcome::HANG, 0.1 + 0.2);
        let mut record = JobRecord::new("job-7".to_owned(), JobSpec::sampled("gemm", 50));
        record.state = JobState::Completed;
        record.total = 50;
        record.done = 50;
        record.cache_hits = 20;
        record.partial = p;
        record.result = Some(JobResult {
            fingerprint: u64::MAX - 1,
            launch: 42,
            sites: 50,
            profile: p,
            early: None,
        });
        let text = record.to_json().to_string();
        let back = JobRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.id, record.id);
        assert_eq!(back.spec, record.spec);
        assert_eq!(back.state, record.state);
        assert_eq!(back.cache_hits, record.cache_hits);
        assert_eq!(back.partial, record.partial, "profile survives bit-exactly");
        assert_eq!(back.result.unwrap().profile, p);
    }
}
