//! Campaign orchestration service: a persistent outcome store, a
//! resumable job engine and a small HTTP API over them.
//!
//! The expensive artifact in fault-site-pruning experiments is the
//! injection outcome, and it is a pure function of (kernel program,
//! launch configuration, fault model, fault site). This crate makes that
//! function's results durable: every outcome a campaign produces lands in
//! a crash-safe on-disk store ([`OutcomeStore`]) keyed by exactly that
//! tuple, and every campaign first drains the store before injecting
//! anything. Resubmitting a finished campaign injects zero sites;
//! restarting a killed server resumes its in-flight jobs from whatever
//! the store already holds.
//!
//! Layers, bottom up:
//!
//! - [`store`] — append-only log + checkpoint outcome store.
//! - [`job`] / [`engine`] — job specs and the bounded worker pool that
//!   plans, runs, persists and resumes them.
//! - [`http`] / [`client`] — the wire: `POST /jobs`, `GET /jobs/:id`,
//!   `GET /jobs/:id/result`, `GET /kernels`, `GET /metrics`.
//! - [`json`] — a hand-rolled, dependency-free JSON layer whose `f64`
//!   round trip is bit-exact, so profiles survive the wire unchanged.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_sign_loss)]
#![allow(clippy::missing_panics_doc)]

pub mod client;
pub mod dashboard;
pub mod engine;
pub mod http;
pub mod job;
pub mod json;
pub mod metrics;
pub mod store;

pub use client::Client;
pub use engine::{kernels_json, run_local, Engine, EngineConfig, ResultError};
pub use http::{Server, ServerHandle};
pub use job::{
    progress_to_json, CampaignMode, EarlyStopReport, JobRecord, JobResult, JobSpec, JobState,
    StopSpec,
};
pub use json::Json;
pub use metrics::Metrics;
pub use store::{OutcomeKey, OutcomeStore};
