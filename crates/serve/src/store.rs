//! The persistent, content-addressed outcome store.
//!
//! Every injection outcome the service ever computes is durably keyed by
//! *(kernel fingerprint, launch-config hash, fault model, fault site)* —
//! the complete set of inputs that determine the outcome on this
//! deterministic simulator. Any campaign (a resumed job, an identical
//! resubmission, an overlapping pruning config, a different seed hitting
//! the same sites) first drains cache hits from the store and only injects
//! the misses.
//!
//! # On-disk layout
//!
//! ```text
//! store/
//!   checkpoint.bin   full index snapshot, replaced by write-then-rename
//!   outcomes.log     fixed-size records appended since the checkpoint
//! ```
//!
//! Both files hold the same fixed 32-byte record format (little-endian
//! fields plus a 16-bit FNV checksum). Recovery loads the checkpoint, then
//! replays the log and truncates it at the first short or corrupt record —
//! a crash mid-append therefore loses at most the torn tail record, never
//! checkpointed state. [`OutcomeStore::checkpoint`] writes the whole index
//! to a temporary file, atomically renames it over `checkpoint.bin`, and
//! only then truncates the log; a crash between those steps merely replays
//! records that are already in the checkpoint (inserts are idempotent).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::PathBuf;

use fsp_stats::Outcome;

// The record codec lives in the fleet wire layer (`fsp_fleet::wire`):
// the on-disk record format *is* the distributed outcome-frame format, so
// a worker's submission decodes directly into store inserts, byte for
// byte. Re-exported here so store users keep their historical paths.
pub use fsp_fleet::wire::{decode_record, encode_record, OutcomeKey, RECORD_LEN};

/// The on-disk outcome store: append-only log + atomic checkpoints, with
/// the full index held in memory for O(1) lookups.
#[derive(Debug)]
pub struct OutcomeStore {
    dir: PathBuf,
    index: HashMap<OutcomeKey, Outcome>,
    log: BufWriter<File>,
    appended: u64,
}

impl OutcomeStore {
    /// Opens (creating if absent) the store in `dir`, recovering from the
    /// checkpoint and the append log. A torn log tail — the footprint of a
    /// crash mid-append — is detected by record framing and checksum, and
    /// truncated away.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a corrupt *checkpoint* (which is only ever
    /// replaced atomically) is an error, not recoverable damage.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<OutcomeStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();

        let checkpoint = dir.join("checkpoint.bin");
        if checkpoint.exists() {
            let bytes = std::fs::read(&checkpoint)?;
            for chunk in bytes.chunks(RECORD_LEN) {
                let (key, outcome) = decode_record(chunk).ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "corrupt store checkpoint (atomic replace should make this impossible)",
                    )
                })?;
                index.insert(key, outcome);
            }
        }

        let log_path = dir.join("outcomes.log");
        let mut valid_len = 0u64;
        if log_path.exists() {
            let bytes = std::fs::read(&log_path)?;
            for chunk in bytes.chunks(RECORD_LEN) {
                match decode_record(chunk) {
                    Some((key, outcome)) => {
                        index.insert(key, outcome);
                        valid_len += RECORD_LEN as u64;
                    }
                    // Torn tail: stop replaying and drop it below.
                    None => break,
                }
            }
            if valid_len != bytes.len() as u64 {
                OpenOptions::new()
                    .write(true)
                    .open(&log_path)?
                    .set_len(valid_len)?;
            }
        }

        let mut log_file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&log_path)?;
        log_file.seek(SeekFrom::Start(valid_len))?;
        Ok(OutcomeStore {
            dir,
            index,
            log: BufWriter::new(log_file),
            appended: valid_len / RECORD_LEN as u64,
        })
    }

    /// Looks an outcome up.
    #[must_use]
    pub fn get(&self, key: &OutcomeKey) -> Option<Outcome> {
        self.index.get(key).copied()
    }

    /// Number of cached outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records an outcome: updates the index and appends to the log.
    /// Callers batch inserts and then [`OutcomeStore::flush`] once per
    /// campaign chunk.
    ///
    /// # Errors
    ///
    /// Propagates log-append I/O errors.
    pub fn insert(&mut self, key: OutcomeKey, outcome: Outcome) -> std::io::Result<()> {
        if self.index.insert(key, outcome) != Some(outcome) {
            self.log.write_all(&encode_record(&key, outcome))?;
            self.appended += 1;
        }
        Ok(())
    }

    /// Flushes buffered log appends to the operating system.
    ///
    /// # Errors
    ///
    /// Propagates flush I/O errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.log.flush()
    }

    /// Log records appended since the last checkpoint (compaction
    /// heuristic input).
    #[must_use]
    pub fn appended_since_checkpoint(&self) -> u64 {
        self.appended
    }

    /// Writes the full index to a fresh checkpoint (write-then-rename, so
    /// the old checkpoint survives a crash at any point), then empties the
    /// log.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        self.log.flush()?;
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            // Deterministic order keeps checkpoints byte-stable for a
            // given index (useful for backups and tests).
            let mut entries: Vec<(&OutcomeKey, &Outcome)> = self.index.iter().collect();
            entries.sort_unstable_by_key(|(k, _)| **k);
            for (key, outcome) in entries {
                out.write_all(&encode_record(key, *outcome))?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join("checkpoint.bin"))?;
        // A crash before this truncation only leaves log records that the
        // checkpoint already contains; replay is idempotent.
        self.log.get_ref().set_len(0)?;
        self.log.get_ref().sync_all()?;
        self.log.seek(SeekFrom::Start(0))?;
        self.appended = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::{FaultModel, FaultSite};

    fn key(bit: u32) -> OutcomeKey {
        OutcomeKey::new(
            0xDEAD_BEEF_0102_0304,
            0x0505_0606_0707_0808,
            FaultModel::SingleBitFlip,
            FaultSite {
                tid: 7,
                dyn_idx: 21,
                bit,
            },
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut s = OutcomeStore::open(&dir).unwrap();
            s.insert(key(0), Outcome::Masked).unwrap();
            s.insert(key(1), Outcome::CRASH).unwrap();
            s.flush().unwrap();
        }
        let s = OutcomeStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&key(0)), Some(Outcome::Masked));
        assert_eq!(s.get(&key(1)), Some(Outcome::CRASH));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_inserts_do_not_grow_the_log() {
        let dir = tmp_dir("dedup");
        let mut s = OutcomeStore::open(&dir).unwrap();
        s.insert(key(0), Outcome::Masked).unwrap();
        s.insert(key(0), Outcome::Masked).unwrap();
        assert_eq!(s.appended_since_checkpoint(), 1);
        // A changed outcome for the same key is re-logged (last wins).
        s.insert(key(0), Outcome::Sdc).unwrap();
        assert_eq!(s.appended_since_checkpoint(), 2);
        s.flush().unwrap();
        drop(s);
        let s = OutcomeStore::open(&dir).unwrap();
        assert_eq!(s.get(&key(0)), Some(Outcome::Sdc));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The crash-safety contract: a checkpoint plus a log whose final
    /// record was torn mid-write must reopen with every complete record
    /// intact and only the torn tail dropped (and truncated away).
    #[test]
    fn torn_log_tail_drops_only_the_tail() {
        let dir = tmp_dir("torn");
        {
            let mut s = OutcomeStore::open(&dir).unwrap();
            s.insert(key(0), Outcome::Masked).unwrap();
            s.insert(key(1), Outcome::Sdc).unwrap();
            s.checkpoint().unwrap();
            for bit in 2..5 {
                s.insert(key(bit), Outcome::CRASH).unwrap();
            }
            s.flush().unwrap();
        }
        // Simulate a crash mid-append: tear the last record in half.
        let log = dir.join("outcomes.log");
        let bytes = std::fs::read(&log).unwrap();
        assert_eq!(bytes.len(), 3 * RECORD_LEN);
        std::fs::write(&log, &bytes[..2 * RECORD_LEN + RECORD_LEN / 2]).unwrap();

        let s = OutcomeStore::open(&dir).unwrap();
        assert_eq!(s.len(), 4, "checkpoint + 2 complete log records survive");
        for bit in 0..4 {
            assert!(s.get(&key(bit)).is_some(), "bit {bit} lost");
        }
        assert_eq!(s.get(&key(4)), None, "torn record must not resurface");
        assert_eq!(
            std::fs::metadata(&log).unwrap().len(),
            2 * RECORD_LEN as u64,
            "recovery truncates the log to the valid prefix"
        );

        // A corrupt (not just short) trailing record is dropped the same way.
        let mut bytes = std::fs::read(&log).unwrap();
        let flipped = bytes.len() - 5;
        bytes[flipped] ^= 0x10;
        std::fs::write(&log, &bytes).unwrap();
        let s = OutcomeStore::open(&dir).unwrap();
        assert_eq!(s.len(), 3, "corrupt record and nothing else dropped");
        assert_eq!(std::fs::metadata(&log).unwrap().len(), RECORD_LEN as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_log_then_reopen() {
        let dir = tmp_dir("checkpoint");
        {
            let mut s = OutcomeStore::open(&dir).unwrap();
            s.insert(key(0), Outcome::Masked).unwrap();
            s.checkpoint().unwrap();
            assert_eq!(s.appended_since_checkpoint(), 0);
            s.insert(key(1), Outcome::HANG).unwrap();
            s.flush().unwrap();
        }
        let s = OutcomeStore::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&key(1)), Some(Outcome::HANG));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
