//! The self-contained live-monitoring page served at `GET /dashboard`.
//!
//! Deliberately a single static HTML string with inline CSS and
//! dependency-free JavaScript: the service has no asset pipeline and no
//! network egress, so the page must carry everything it needs. It polls
//! `GET /jobs` for the roster and `GET /jobs/:id/progress` for the
//! selected job, rendering per-outcome point estimates with their
//! confidence intervals as horizontal bars plus the convergence summary
//! (achieved vs requested margin, projected sites remaining).

/// The dashboard document, byte-stable per build.
pub const PAGE: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>fsp live campaign analytics</title>
<style>
  :root { color-scheme: dark; }
  body { font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         background: #101418; color: #d7dde4; margin: 0; padding: 1.2rem 1.6rem; }
  h1 { font-size: 1.1rem; margin: 0 0 .8rem; color: #8ecdf7; }
  h1 small { color: #5b6672; font-weight: normal; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 1.1rem; }
  th, td { text-align: left; padding: .28rem .6rem; border-bottom: 1px solid #222a33; }
  th { color: #8a97a5; font-weight: normal; }
  tr.job { cursor: pointer; }
  tr.job:hover td { background: #182029; }
  tr.selected td { background: #1c2733; }
  .state-completed { color: #7fd78f; }
  .state-running { color: #f2c66d; }
  .state-failed, .state-cancelled { color: #e07a6a; }
  .state-queued { color: #8a97a5; }
  .bar { position: relative; height: 12px; background: #1b232d; border-radius: 2px;
         min-width: 220px; }
  .bar .ci { position: absolute; top: 2px; bottom: 2px; background: #2d4a63;
             border-radius: 2px; }
  .bar .pt { position: absolute; top: 0; bottom: 0; width: 2px; background: #8ecdf7; }
  .num { text-align: right; font-variant-numeric: tabular-nums; }
  #summary { color: #8a97a5; margin: .4rem 0 1rem; }
  #summary b { color: #d7dde4; }
  .converged { color: #7fd78f; }
  .pending { color: #f2c66d; }
  #error { color: #e07a6a; }
</style>
</head>
<body>
<h1>fsp live campaign analytics <small id="tick"></small></h1>
<div id="error"></div>
<table id="jobs"><thead>
<tr><th>job</th><th>kernel</th><th>mode</th><th>state</th>
<th class="num">done</th><th class="num">total</th><th class="num">cache</th></tr>
</thead><tbody></tbody></table>
<div id="summary"></div>
<table id="progress" hidden><thead>
<tr><th>outcome</th><th class="num">count</th><th class="num">estimate</th>
<th class="num">&plusmn; half width</th><th>interval</th></tr>
</thead><tbody></tbody></table>
<script>
"use strict";
let selected = null;
const $ = (id) => document.getElementById(id);
const pct = (x) => (100 * x).toFixed(3) + "%";

async function fetchJson(path) {
  const response = await fetch(path, { cache: "no-store" });
  if (!response.ok) throw new Error(path + " -> " + response.status);
  return response.json();
}

function renderJobs(jobs) {
  const body = $("jobs").querySelector("tbody");
  body.replaceChildren();
  for (const job of jobs) {
    const row = document.createElement("tr");
    row.className = "job" + (job.id === selected ? " selected" : "");
    row.onclick = () => { selected = job.id; refresh(); };
    const cells = [job.id, job.kernel, job.mode, job.state,
                   job.done, job.total, job.cache_hits];
    cells.forEach((value, i) => {
      const cell = document.createElement("td");
      cell.textContent = value;
      if (i === 3) cell.className = "state-" + job.state;
      if (i >= 4) cell.className = "num";
      row.appendChild(cell);
    });
    body.appendChild(row);
    if (selected === null) selected = job.id;
  }
}

function renderProgress(doc) {
  $("progress").hidden = false;
  const body = $("progress").querySelector("tbody");
  body.replaceChildren();
  for (const entry of doc.outcomes) {
    const row = document.createElement("tr");
    const bar = document.createElement("div");
    bar.className = "bar";
    const ci = document.createElement("div");
    ci.className = "ci";
    ci.style.left = pct(entry.lo);
    ci.style.width = pct(Math.max(0, entry.hi - entry.lo));
    const pt = document.createElement("div");
    pt.className = "pt";
    pt.style.left = pct(entry.estimate);
    bar.append(ci, pt);
    const texts = [entry.outcome, entry.count, pct(entry.estimate),
                   pct(entry.half_width)];
    texts.forEach((value, i) => {
      const cell = document.createElement("td");
      cell.textContent = value;
      if (i >= 1) cell.className = "num";
      row.appendChild(cell);
    });
    const cell = document.createElement("td");
    cell.appendChild(bar);
    row.appendChild(cell);
    body.appendChild(row);
  }
  const target = doc.margin === null
    ? "no stop requested (baseline ±0.63%)"
    : "requested ±" + pct(doc.margin);
  const tail = doc.converged
    ? '<span class="converged">converged</span>'
    : '<span class="pending">~' + doc.projected_remaining + " sites to go</span>";
  const stopped = doc.early_stopped
    ? " &middot; early-stopped at " + doc.sites_injected + " sites" : "";
  $("summary").innerHTML =
    "<b>" + doc.id + "</b> &middot; " + doc.state +
    " &middot; achieved ±" + pct(doc.achieved_margin) +
    " at " + (100 * doc.confidence) + "% confidence &middot; " + target +
    " &middot; " + tail + stopped;
}

async function refresh() {
  try {
    renderJobs(await fetchJson("/jobs"));
    if (selected !== null) renderProgress(await fetchJson("/jobs/" + selected + "/progress"));
    $("error").textContent = "";
    $("tick").textContent = "polled " + new Date().toLocaleTimeString();
  } catch (e) {
    $("error").textContent = String(e);
  }
}

refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::PAGE;

    #[test]
    fn page_is_self_contained_html() {
        assert!(PAGE.starts_with("<!doctype html>"));
        // No external assets: everything inline, nothing fetched beyond
        // the service's own JSON endpoints.
        for forbidden in ["http://", "https://", "src=", "@import"] {
            assert!(
                !PAGE.contains(forbidden),
                "external reference {forbidden:?}"
            );
        }
        for required in ["/jobs", "/progress", "achieved", "projected_remaining"] {
            assert!(PAGE.contains(required), "missing {required:?}");
        }
    }
}
