//! Static kernel linter for the hand-written PTXPlus-like assembly.
//!
//! Built on the same dataflow results as the ACE pass, the linter flags
//! structural problems the assembler cannot see:
//!
//! - **Errors** (a kernel shipping one is broken): reads of registers no
//!   path ever defines, unreachable basic blocks, and natural loops with no
//!   exit edge.
//! - **Warnings** (suspicious but possibly intentional): def/use type
//!   mismatches (float bits consumed as integers and vice versa) and
//!   `bar.sync` under potentially-divergent control flow.

use std::fmt;

use fsp_isa::{KernelProgram, MemSpace, Opcode, Operand, Register, ScalarType};

use crate::absint::{AbsContext, AbsintReport};
use crate::dataflow::{ProgramDataflow, UseKind};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intentional.
    Warning,
    /// The kernel is broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The category of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A register is read that no path to the read ever defines (it reads
    /// the zero-initialised register file).
    UndefinedRead,
    /// A value produced as float bits is consumed as an integer, or vice
    /// versa.
    TypeMismatch,
    /// A basic block no path from the entry reaches.
    UnreachableBlock,
    /// `bar.sync` in a block that does not post-dominate the entry: some
    /// threads of a CTA may branch around it, which deadlocks (or, in
    /// warp-lockstep mode, faults) on real hardware.
    DivergentBarrier,
    /// A natural loop whose body has no edge leaving it.
    InfiniteLoop,
    /// A memory access whose every possible address is out of bounds or
    /// misaligned under the launch geometry (abstract interpretation).
    ProvableOob,
    /// A shared-memory load in a kernel that never stores to shared
    /// memory, outside the parameter region — it can only read zeros.
    UninitSharedRead,
    /// Threads of a CTA store differing (thread-dependent) values to the
    /// same shared address with no guard — a write-write race.
    SharedRace,
    /// A memory access whose base register merges a guarded definition
    /// with another definition: the address depends on which side of a
    /// divergent guard executed.
    DivergentAddress,
}

impl LintKind {
    /// The default severity of this finding category.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintKind::UndefinedRead
            | LintKind::UnreachableBlock
            | LintKind::InfiniteLoop
            | LintKind::ProvableOob => Severity::Error,
            LintKind::TypeMismatch
            | LintKind::DivergentBarrier
            | LintKind::UninitSharedRead
            | LintKind::SharedRace
            | LintKind::DivergentAddress => Severity::Warning,
        }
    }

    /// Stable machine-readable name (what `fsp lint --json` emits).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintKind::UndefinedRead => "undefined-read",
            LintKind::TypeMismatch => "type-mismatch",
            LintKind::UnreachableBlock => "unreachable-block",
            LintKind::DivergentBarrier => "divergent-barrier",
            LintKind::InfiniteLoop => "infinite-loop",
            LintKind::ProvableOob => "provable-oob",
            LintKind::UninitSharedRead => "uninit-shared-read",
            LintKind::SharedRace => "shared-race",
            LintKind::DivergentAddress => "divergent-address",
        }
    }
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Category.
    pub kind: LintKind,
    /// Severity.
    pub severity: Severity,
    /// Instruction index the finding anchors to.
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: pc {}: {}", self.severity, self.pc, self.message)
    }
}

/// The result of linting one kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, sorted by pc.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether the kernel passed without errors.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}

/// How an instruction interprets a value: as float bits, as an integer, or
/// type-agnostically (moves, stores, bitwise logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TyKind {
    Float,
    Int,
    Bits,
}

fn kind_of(ty: ScalarType) -> TyKind {
    if ty.is_float() {
        TyKind::Float
    } else {
        TyKind::Int
    }
}

/// How the value *produced* by an instruction is typed.
fn def_kind(instr: &fsp_isa::Instruction) -> TyKind {
    match instr.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Mad
        | Opcode::Div
        | Opcode::Rem
        | Opcode::Min
        | Opcode::Max
        | Opcode::Abs
        | Opcode::Neg
        | Opcode::Cvt => kind_of(instr.ty),
        Opcode::Rcp | Opcode::Sqrt | Opcode::Rsqrt | Opcode::Ex2 | Opcode::Lg2 => TyKind::Float,
        // Moves, loads, comparisons, selections, bitwise logic and shifts
        // are bit-pattern transparent.
        _ => TyKind::Bits,
    }
}

/// How source operand `i` of an instruction is consumed.
fn use_kind(instr: &fsp_isa::Instruction, i: usize) -> TyKind {
    // Predicate operands carry condition codes, not typed values.
    if let Some(Some(Operand::Reg {
        reg: Register::Pred(_),
        ..
    })) = instr.src.get(i)
    {
        return TyKind::Bits;
    }
    match instr.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Mad
        | Opcode::Div
        | Opcode::Rem
        | Opcode::Min
        | Opcode::Max
        | Opcode::Abs
        | Opcode::Neg => kind_of(instr.ty),
        Opcode::Rcp | Opcode::Sqrt | Opcode::Rsqrt | Opcode::Ex2 | Opcode::Lg2 => TyKind::Float,
        Opcode::Cvt | Opcode::Set => kind_of(instr.src_ty),
        // selp passes its value operands through untouched; moves, stores
        // and bitwise logic are bit-pattern transparent.
        _ => TyKind::Bits,
    }
}

fn mismatch(def: TyKind, used: TyKind) -> bool {
    matches!(
        (def, used),
        (TyKind::Float, TyKind::Int) | (TyKind::Int, TyKind::Float)
    )
}

/// Lints `program`, running the dataflow passes it needs.
#[must_use]
pub fn lint(program: &KernelProgram) -> LintReport {
    lint_impl(program, None)
}

/// Lints `program` with the launch-aware sanitizer checks enabled: the
/// abstract interpreter bounds every address under `ctx`, adding provable
/// out-of-bounds accesses, uninitialized shared reads, shared-memory
/// write-write races and divergence-dependent addresses to the structural
/// checks of [`lint`].
#[must_use]
pub fn lint_with_launch(program: &KernelProgram, ctx: &AbsContext) -> LintReport {
    lint_impl(program, Some(ctx))
}

fn lint_impl(program: &KernelProgram, ctx: Option<&AbsContext>) -> LintReport {
    let pd = ProgramDataflow::new(program);
    let df = pd.run();
    let cfg = pd.cfg();
    let mut findings = Vec::new();
    let mut push = |kind: LintKind, pc: usize, message: String| {
        findings.push(Finding {
            kind,
            severity: kind.severity(),
            pc,
            message,
        });
    };

    // 1. Reads with no reaching definition on any path.
    let mut seen = std::collections::BTreeSet::new();
    for u in &df.undefined_uses {
        if seen.insert((u.pc, format!("{}", u.reg))) {
            push(
                LintKind::UndefinedRead,
                u.pc,
                format!(
                    "{} is read but never defined on any path ({})",
                    u.reg,
                    program.instr(u.pc)
                ),
            );
        }
    }

    // 2. Def/use type mismatches.
    type_mismatches(program, &df, &mut push);

    // 3. Unreachable basic blocks.
    for (b, reachable) in df.reachable.iter().enumerate() {
        if !reachable {
            let start = cfg.blocks()[b].start;
            push(
                LintKind::UnreachableBlock,
                start,
                format!("basic block at pc {start} is unreachable from the kernel entry"),
            );
        }
    }

    // 4. bar.sync under potentially-divergent control flow.
    let uniform = post_dominators_of_entry(cfg);
    for (pc, instr) in program.instructions().iter().enumerate() {
        if instr.opcode == Opcode::Bar {
            let b = cfg.block_of(pc);
            if !uniform.contains(&b) {
                push(
                    LintKind::DivergentBarrier,
                    pc,
                    "bar.sync does not post-dominate the entry; threads may diverge around it"
                        .to_string(),
                );
            }
        }
    }

    // 5. Natural loops with no exit edge.
    let forest = cfg.loops(program);
    for l in &forest.loops {
        let body_blocks: std::collections::BTreeSet<usize> =
            l.body.iter().map(|&pc| cfg.block_of(pc)).collect();
        let has_exit = body_blocks.iter().any(|&b| {
            cfg.blocks()[b]
                .successors
                .iter()
                .any(|s| !body_blocks.contains(s))
        });
        if !has_exit {
            push(
                LintKind::InfiniteLoop,
                l.header,
                format!("loop with header at pc {} has no exit edge", l.header),
            );
        }
    }

    // 6. Launch-aware sanitizer checks (abstract interpretation).
    if let Some(ctx) = ctx {
        launch_checks(program, &df, ctx, &mut push);
    }

    findings.sort_by_key(|f| (f.pc, f.severity == Severity::Warning));
    LintReport { findings }
}

/// The absint-powered sanitizer lints.
fn launch_checks(
    program: &KernelProgram,
    df: &crate::dataflow::DataflowResult,
    ctx: &AbsContext,
    push: &mut impl FnMut(LintKind, usize, String),
) {
    let abs = AbsintReport::analyze(program, ctx);
    let (plo, phi) = ctx.param_range();
    let has_shared_store = (0..program.len()).any(|pc| {
        abs.mem(pc)
            .iter()
            .any(|a| a.store && a.space == MemSpace::Shared)
    });
    let cta_threads = ctx.block.0 * ctx.block.1 * ctx.block.2;

    for pc in 0..program.len() {
        if !abs.reached(pc) {
            continue;
        }
        for a in abs.mem(pc) {
            let limit = u64::from(4 * ctx.space_bytes(a.space).div_ceil(4));
            let what = if a.store { "store" } else { "load" };
            // Provable OOB / misalignment: every possible address faults.
            if u64::from(a.addr.lo) >= limit {
                push(
                    LintKind::ProvableOob,
                    pc,
                    format!(
                        "{what} address is always out of bounds: \
                         [{:#x}, {:#x}] exceeds the {:?} space of {} bytes",
                        a.addr.lo,
                        a.addr.hi,
                        a.space,
                        ctx.space_bytes(a.space),
                    ),
                );
            } else if let Some(addr) = a.addr.as_const() {
                if addr % 4 != 0 {
                    push(
                        LintKind::ProvableOob,
                        pc,
                        format!("{what} address {addr:#x} is not word-aligned"),
                    );
                }
            }
            // Uninitialized shared read: no shared store anywhere, and the
            // load provably misses the parameter region.
            let within_params = a.addr.lo >= plo && u64::from(a.addr.hi) + 4 <= u64::from(phi);
            if !a.store && a.space == MemSpace::Shared && !has_shared_store && !within_params {
                push(
                    LintKind::UninitSharedRead,
                    pc,
                    "shared load in a kernel that never stores to shared memory \
                     (reads zero-initialised words)"
                        .to_string(),
                );
            }
            // Shared write-write race: every thread of the CTA stores a
            // thread-dependent value through a thread-uniform address.
            if a.store
                && a.space == MemSpace::Shared
                && cta_threads > 1
                && !a.addr_tid_dep
                && a.value_tid_dep
                && program.instr(pc).guard.is_none()
            {
                push(
                    LintKind::SharedRace,
                    pc,
                    "threads of a CTA race a thread-dependent value into the same \
                     shared address"
                        .to_string(),
                );
            }
        }
    }

    // Divergence-dependent addresses: the base register of an access can
    // hold the result of a guarded definition or its predecessor.
    let mut reaching: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (id, sites) in df.use_sites.iter().enumerate() {
        for s in sites {
            reaching.entry((s.pc, s.use_index)).or_default().push(id);
        }
    }
    for ((pc, ui), def_ids) in &reaching {
        let u = &df.def_use[*pc].uses[*ui];
        if !matches!(u.kind, UseKind::MemBase { .. }) {
            continue;
        }
        let guarded = def_ids
            .iter()
            .filter(|&&id| df.defs[id].def.guarded)
            .count();
        if guarded >= 1 && def_ids.len() >= 2 {
            push(
                LintKind::DivergentAddress,
                *pc,
                format!(
                    "address base {} merges a guarded definition with {} other \
                     definition(s); the access target depends on divergent control flow",
                    u.reg,
                    def_ids.len() - 1,
                ),
            );
        }
    }
}

/// The chain of blocks every thread must pass through: the entry and its
/// post-dominators (post-dominators of a node form a chain).
fn post_dominators_of_entry(cfg: &fsp_isa::Cfg) -> std::collections::BTreeSet<usize> {
    let mut chain = std::collections::BTreeSet::new();
    if cfg.blocks().is_empty() {
        return chain;
    }
    let ipdom = cfg.post_dominators();
    let mut b = 0usize;
    chain.insert(b);
    while let Some(next) = ipdom[b] {
        if !chain.insert(next) {
            break;
        }
        b = next;
    }
    chain
}

/// Reports float/int interpretation clashes between register writes and the
/// reads that consume them.
fn type_mismatches(
    program: &KernelProgram,
    df: &crate::dataflow::DataflowResult,
    push: &mut impl FnMut(LintKind, usize, String),
) {
    // Per-use reaching-def chains are not stored, so fall back to a
    // flow-insensitive over-approximation: only report a read when *every*
    // write of the register anywhere in the program disagrees with it.
    // This cannot false-positive on registers that are re-used for values
    // of different types on different paths.
    for use_pc in 0..program.len() {
        for (i, op) in program.instr(use_pc).src.iter().enumerate() {
            let Some(Operand::Reg { reg, .. }) = op else {
                continue;
            };
            if crate::dataflow::reg_index(*reg).is_none() {
                continue;
            }
            let uk = use_kind(program.instr(use_pc), i);
            if uk == TyKind::Bits {
                continue;
            }
            let def_kinds: Vec<TyKind> = df
                .defs
                .iter()
                .filter(|d| d.def.reg == *reg)
                .map(|d| def_kind(program.instr(d.pc)))
                .collect();
            if !def_kinds.is_empty() && def_kinds.iter().all(|&dk| mismatch(dk, uk)) {
                push(
                    LintKind::TypeMismatch,
                    use_pc,
                    format!(
                        "{} holds {} bits but `{}` consumes it as {}",
                        reg,
                        match def_kinds[0] {
                            TyKind::Float => "float",
                            _ => "integer",
                        },
                        program.instr(use_pc),
                        match uk {
                            TyKind::Float => "float",
                            _ => "integer",
                        },
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    fn kinds(report: &LintReport) -> Vec<LintKind> {
        report.findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x4
            ld.global.u32 $r2, [$r1]
            add.u32 $r2, $r2, 0x1
            st.global.u32 [$r1], $r2
            exit
            "#,
        )
        .unwrap();
        let r = lint(&p);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.is_clean());
    }

    #[test]
    fn undefined_read_is_an_error() {
        let p = assemble(
            "t",
            "add.u32 $r1, $r2, 0x1\nst.global.u32 [$r124], $r1\nexit",
        )
        .unwrap();
        let r = lint(&p);
        assert_eq!(kinds(&r), vec![LintKind::UndefinedRead]);
        assert_eq!(r.errors(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn unreachable_block_detected() {
        let p = assemble(
            "t",
            r#"
            bra done
            add.u32 $r1, $r1, 0x1
            done:
            exit
            "#,
        )
        .unwrap();
        let r = lint(&p);
        assert!(
            kinds(&r).contains(&LintKind::UnreachableBlock),
            "{:?}",
            r.findings
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn loop_without_exit_detected() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            bra loop
            "#,
        )
        .unwrap();
        let r = lint(&p);
        assert!(
            kinds(&r).contains(&LintKind::InfiniteLoop),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn divergent_barrier_is_a_warning() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$o127, $r124, 0x0
            @$p0.ne bra skip
            bar.sync 0x0
            skip:
            exit
            "#,
        )
        .unwrap();
        let r = lint(&p);
        let f = r
            .findings
            .iter()
            .find(|f| f.kind == LintKind::DivergentBarrier)
            .expect("divergent barrier flagged");
        assert_eq!(f.severity, Severity::Warning);
        assert!(r.is_clean(), "warnings do not fail the lint");
    }

    #[test]
    fn uniform_barrier_not_flagged() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x1
            bar.sync 0x0
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let r = lint(&p);
        assert!(!kinds(&r).contains(&LintKind::DivergentBarrier));
    }

    #[test]
    fn float_bits_consumed_as_integer_warns() {
        let p = assemble(
            "t",
            r#"
            add.f32 $r1, $r2, $r3
            add.u32 $r4, $r1, 0x1
            st.global.u32 [$r124], $r4
            exit
            "#,
        )
        .unwrap();
        let r = lint(&p);
        let f = r
            .findings
            .iter()
            .find(|f| f.kind == LintKind::TypeMismatch)
            .expect("type mismatch flagged");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.pc, 1);
    }

    #[test]
    fn mov_and_bitwise_are_type_transparent() {
        let p = assemble(
            "t",
            r#"
            add.f32 $r1, $r2, $r3
            mov.u32 $r4, $r1
            and.u32 $r5, $r1, 0x7FFFFFFF
            st.global.u32 [$r124], $r4
            st.global.u32 [$r124], $r5
            exit
            "#,
        )
        .unwrap();
        let r = lint(&p);
        assert!(
            !kinds(&r).contains(&LintKind::TypeMismatch),
            "{:?}",
            r.findings
        );
    }
}
