//! Static dataflow analysis for PTXPlus-like kernels.
//!
//! Everything here is *static*: it inspects the [`fsp_isa::KernelProgram`]
//! and its CFG without executing a single instruction. Two consumers sit on
//! top of the shared worklist framework:
//!
//! - [`ace`]: classifies destination-register bits as ACE / un-ACE before
//!   any dynamic profiling (Stage 0 of the pruning pipeline).
//! - [`lint`]: a kernel linter for the hand-written workload assembly.

pub mod ace;
pub mod dataflow;
pub mod lint;

pub use ace::{AceClass, AceSummary, SlotAce, StaticAceReport};
pub use dataflow::{DataflowResult, DefUse, ProgramDataflow};
pub use lint::{lint, Finding, LintKind, LintReport, Severity};
