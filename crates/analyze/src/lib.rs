//! Static dataflow analysis for PTXPlus-like kernels.
//!
//! Everything here is *static*: it inspects the [`fsp_isa::KernelProgram`]
//! and its CFG without executing a single instruction. Two consumers sit on
//! top of the shared worklist framework:
//!
//! - [`ace`]: classifies destination-register bits as ACE / un-ACE before
//!   any dynamic profiling (Stage 0 of the pruning pipeline).
//! - [`lint`]: a kernel linter for the hand-written workload assembly.

pub mod absint;
pub mod ace;
pub mod classify;
pub mod dataflow;
pub mod lint;

pub use absint::{prove_cmp, AbsContext, AbsVal, AbsintReport, MemAccessAbs, SlotAbs};
pub use ace::{AceClass, AceSummary, SlotAce, StaticAceReport};
pub use classify::{absint_version, ClassifyReport, ClassifySummary, PredictedKind, SlotClassify};
pub use dataflow::{DataflowResult, DefUse, ProgramDataflow, UseKind, UseSite};
pub use lint::{lint, lint_with_launch, Finding, LintKind, LintReport, Severity};
