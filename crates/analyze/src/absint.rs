//! Worklist abstract interpreter over fsp-isa programs.
//!
//! The interpreter bounds every register value with a *wrapping-aware
//! unsigned interval* enriched with a known-zero-bit mask (a stride/alignment
//! domain: `zeros` covering bits 0..k proves the value is a multiple of
//! `2^k`), tracks predicate registers as sets of possible 4-bit
//! condition-code values, and tags values that depend on the thread id
//! within a CTA. Thread-coordinate specials seed the intervals
//! (`%tid.x ∈ [0, ntid.x-1]`), so per-thread address computations stay
//! bounded without enumerating threads.
//!
//! Every transfer function over-approximates the concrete interpreter in
//! `fsp-sim::exec` — when a rule cannot mirror the concrete semantics
//! exactly it returns ⊤. Soundness is what the downstream consumers lean
//! on: [`crate::classify`] turns provably-faulting flipped addresses into
//! predicted DUEs, and the `lint` extensions report provable OOB accesses.
//! Both claims are cross-validated dynamically by the oracle tests.

use std::collections::VecDeque;

use fsp_isa::{
    CmpOp, Dest, Half, Instruction, KernelProgram, MemRef, MemSpace, Opcode, Operand, Register,
    ScalarType, Special, NUM_PREDS, PARAM_BASE,
};

use crate::dataflow::{reg_index, TRACKED_REGS};

/// Block visits before interval bounds are widened to ⊤ on the growing
/// side. Small enough to converge fast, large enough to let short chains
/// of increments stabilise exactly.
const WIDEN_AFTER: usize = 4;

/// Launch facts the interpreter folds into the abstract state: geometry
/// seeds the special-register intervals, parameters are constant-folded
/// through shared memory, and the space sizes bound addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsContext {
    /// CTA dimensions `(x, y, z)`.
    pub block: (u32, u32, u32),
    /// Grid dimensions `(x, y)`.
    pub grid: (u32, u32),
    /// Kernel parameters in declaration order (written at
    /// [`fsp_isa::PARAM_BASE`] in shared memory).
    pub params: Vec<u32>,
    /// Per-CTA shared memory size in bytes (word-aligned, as the machine
    /// rounds it).
    pub shared_bytes: u32,
    /// Global memory size in bytes.
    pub global_bytes: u32,
    /// Per-thread local memory size in bytes.
    pub local_bytes: u32,
}

impl AbsContext {
    /// Size in bytes of an address space, as the simulator enforces it.
    #[must_use]
    pub fn space_bytes(&self, space: MemSpace) -> u32 {
        match space {
            MemSpace::Global => self.global_bytes,
            MemSpace::Shared => self.shared_bytes,
            MemSpace::Local => self.local_bytes,
        }
    }

    /// Byte range of shared memory holding the kernel parameters.
    #[must_use]
    pub fn param_range(&self) -> (u32, u32) {
        (PARAM_BASE, PARAM_BASE + 4 * self.params.len() as u32)
    }
}

/// An abstract 32-bit value: an **unwrapped unsigned interval**
/// `[lo, hi]` plus a mask of bits known to be zero in every concrete
/// value. ⊤ is `[0, u32::MAX]` with no known zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Inclusive unsigned lower bound.
    pub lo: u32,
    /// Inclusive unsigned upper bound.
    pub hi: u32,
    /// Bits that are zero in every concrete value.
    pub zeros: u32,
}

/// Fills every bit at or below the highest set bit.
const fn fill_down(m: u32) -> u32 {
    let mut x = m;
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x
}

impl AbsVal {
    /// The unconstrained value.
    pub const TOP: AbsVal = AbsVal {
        lo: 0,
        hi: u32::MAX,
        zeros: 0,
    };

    /// A single concrete value.
    #[must_use]
    pub fn constant(v: u32) -> AbsVal {
        AbsVal {
            lo: v,
            hi: v,
            zeros: !v,
        }
    }

    /// An interval `[lo, hi]`, normalised.
    #[must_use]
    pub fn range(lo: u32, hi: u32) -> AbsVal {
        AbsVal { lo, hi, zeros: 0 }.normalize()
    }

    /// Reconciles the interval and zero-mask components: bits above the
    /// interval's magnitude are zero, and known-zero bits cap the interval.
    #[must_use]
    fn normalize(mut self) -> AbsVal {
        self.zeros |= !fill_down(self.hi);
        self.hi = self.hi.min(!self.zeros);
        if self.lo > self.hi {
            // Contradictory facts can only arise on infeasible paths; any
            // consistent clamp is sound there.
            self.lo = self.hi;
        }
        self
    }

    /// Whether the value is a single known constant.
    #[must_use]
    pub fn as_const(&self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            zeros: self.zeros & other.zeros,
        }
        .normalize()
    }

    /// Widening: bounds that grew since `old` jump to their extreme.
    /// `zeros` only shrinks (monotone, bounded) and needs no widening.
    #[must_use]
    fn widen_from(&self, old: &AbsVal) -> AbsVal {
        AbsVal {
            lo: if self.lo < old.lo { 0 } else { self.lo },
            hi: if self.hi > old.hi { u32::MAX } else { self.hi },
            zeros: self.zeros,
        }
        .normalize()
    }

    /// Bits provably zero, folding in what the interval magnitude implies.
    #[must_use]
    pub fn known_zeros(&self) -> u32 {
        self.zeros | !fill_down(self.hi)
    }

    /// Number of low bits provably zero in both operands (alignment run).
    fn common_alignment(a: &AbsVal, b: &AbsVal) -> u32 {
        (a.zeros & b.zeros).trailing_ones()
    }

    /// Abstract wrapping addition.
    #[must_use]
    pub fn add(&self, other: &AbsVal) -> AbsVal {
        let lo = u64::from(self.lo) + u64::from(other.lo);
        let hi = u64::from(self.hi) + u64::from(other.hi);
        // Low zero-runs survive even a wrapping add: multiples of 2^k stay
        // multiples of 2^k. This is what keeps flipped-address alignment
        // provable.
        let align = Self::common_alignment(self, other);
        let align_zeros = (1u32 << align.min(31)) - 1;
        if hi <= u64::from(u32::MAX) {
            AbsVal {
                lo: lo as u32,
                hi: hi as u32,
                zeros: align_zeros,
            }
            .normalize()
        } else {
            AbsVal {
                zeros: align_zeros,
                ..AbsVal::TOP
            }
            .normalize()
        }
    }

    /// Abstract wrapping subtraction.
    #[must_use]
    pub fn sub(&self, other: &AbsVal) -> AbsVal {
        let align = Self::common_alignment(self, other);
        let align_zeros = (1u32 << align.min(31)) - 1;
        if self.lo >= other.hi {
            AbsVal {
                lo: self.lo - other.hi,
                hi: self.hi - other.lo,
                zeros: align_zeros,
            }
            .normalize()
        } else {
            AbsVal {
                zeros: align_zeros,
                ..AbsVal::TOP
            }
            .normalize()
        }
    }

    /// Abstract wrapping multiplication.
    #[must_use]
    pub fn mul(&self, other: &AbsVal) -> AbsVal {
        let za = self.zeros.trailing_ones().min(31);
        let zb = other.zeros.trailing_ones().min(31);
        let align_zeros = (1u32 << (za + zb).min(31)) - 1;
        let hi = u64::from(self.hi) * u64::from(other.hi);
        if hi <= u64::from(u32::MAX) {
            AbsVal {
                lo: self.lo.wrapping_mul(other.lo),
                hi: hi as u32,
                zeros: align_zeros,
            }
            .normalize()
        } else {
            AbsVal {
                zeros: align_zeros,
                ..AbsVal::TOP
            }
            .normalize()
        }
    }

    /// Abstract unsigned division (exec maps `x / 0` to `u32::MAX`).
    #[must_use]
    pub fn udiv(&self, other: &AbsVal) -> AbsVal {
        if other.lo == 0 {
            return AbsVal::TOP;
        }
        AbsVal::range(self.lo / other.hi, self.hi / other.lo)
    }

    /// Abstract unsigned remainder (exec maps `x % 0` to `x`).
    #[must_use]
    pub fn urem(&self, other: &AbsVal) -> AbsVal {
        if other.lo == 0 {
            return AbsVal::range(0, self.hi);
        }
        AbsVal::range(0, self.hi.min(other.hi - 1))
    }

    /// Abstract bitwise and.
    #[must_use]
    pub fn and(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: 0,
            hi: self.hi.min(other.hi),
            zeros: self.known_zeros() | other.known_zeros(),
        }
        .normalize()
    }

    /// Abstract bitwise or.
    #[must_use]
    pub fn or(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.max(other.lo),
            hi: fill_down(self.hi) | fill_down(other.hi),
            zeros: self.known_zeros() & other.known_zeros(),
        }
        .normalize()
    }

    /// Abstract bitwise xor.
    #[must_use]
    pub fn xor(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: 0,
            hi: fill_down(self.hi) | fill_down(other.hi),
            zeros: self.known_zeros() & other.known_zeros(),
        }
        .normalize()
    }

    /// Abstract bitwise not.
    #[must_use]
    pub fn not(&self) -> AbsVal {
        AbsVal::range(!self.hi, !self.lo)
    }

    /// Abstract left shift by a constant amount (`amt < 32`).
    #[must_use]
    pub fn shl_const(&self, amt: u32) -> AbsVal {
        if amt >= 32 {
            return AbsVal::constant(0);
        }
        let low_zeros = (1u32 << amt) - 1;
        if amt == 0 {
            return *self;
        }
        if u64::from(self.hi) << amt <= u64::from(u32::MAX) {
            AbsVal {
                lo: self.lo << amt,
                hi: self.hi << amt,
                zeros: (self.zeros << amt) | low_zeros,
            }
            .normalize()
        } else {
            // The shift wraps, but the vacated low bits are still zero —
            // exactly the alignment fact address computations rely on.
            AbsVal {
                zeros: (self.zeros << amt) | low_zeros,
                ..AbsVal::TOP
            }
            .normalize()
        }
    }

    /// Abstract right shift by a constant amount.
    #[must_use]
    pub fn shr_const(&self, amt: u32, signed: bool) -> AbsVal {
        let nonneg = self.hi < 0x8000_0000 || self.known_zeros() & 0x8000_0000 != 0;
        if amt >= 32 {
            return if !signed || nonneg {
                AbsVal::constant(0)
            } else {
                // Negative signed values become all-ones.
                AbsVal::TOP
            };
        }
        if amt == 0 {
            return *self;
        }
        if !signed || nonneg {
            AbsVal::range(self.lo >> amt, self.hi >> amt)
        } else {
            AbsVal::TOP
        }
    }

    /// Abstract two's-complement negation.
    #[must_use]
    pub fn neg(&self) -> AbsVal {
        if self.hi == 0 {
            AbsVal::constant(0)
        } else if self.lo >= 1 {
            AbsVal::range(u32::MAX - self.hi + 1, u32::MAX - self.lo + 1)
        } else {
            // The range straddles zero: -0 wraps to 0, everything else to
            // the high end.
            AbsVal::TOP
        }
    }

    /// Truncation to the low 16 bits (`exec::mask` for 16-bit types).
    #[must_use]
    pub fn trunc16(&self) -> AbsVal {
        if self.hi <= 0xFFFF {
            AbsVal {
                lo: self.lo,
                hi: self.hi,
                zeros: self.zeros | 0xFFFF_0000,
            }
            .normalize()
        } else {
            AbsVal {
                lo: 0,
                hi: 0xFFFF,
                zeros: (self.zeros & 0xFFFF) | 0xFFFF_0000,
            }
            .normalize()
        }
    }

    /// Whether every concrete value is `< 2^31` (safe to reinterpret as a
    /// non-negative signed integer).
    #[must_use]
    pub fn provably_nonneg(&self) -> bool {
        self.hi < 0x8000_0000 || self.known_zeros() & 0x8000_0000 != 0
    }
}

/// Applies the interpreter's type mask to a committed result.
fn mask_ty(v: AbsVal, ty: ScalarType, wide: bool) -> AbsVal {
    if ty.bits() == 16 && !wide {
        v.trunc16()
    } else {
        v
    }
}

/// Possible 4-bit condition-code values of a predicate, as a 16-entry
/// bitset (`1 << flags` for every reachable flag word). ⊤ is `0xFFFF`.
pub type PredSet = u16;

/// Flag values a result can produce (`exec::flags_of`). `co` says whether
/// the producing opcode can set carry/overflow (only add/sub can).
fn flags_from(v: &AbsVal, float: bool, co: bool) -> PredSet {
    let may_zero = v.lo == 0;
    let may_nonzero = v.hi != 0;
    let (may_sign, may_notsign) = if float {
        // `f32 < 0.0` is false for +values, +0/-0 and NaN; it can only be
        // true when bit 31 can be set.
        if v.known_zeros() & 0x8000_0000 != 0 {
            (false, true)
        } else {
            (true, true)
        }
    } else {
        (v.hi >= 0x8000_0000, v.lo < 0x8000_0000 || may_zero)
    };
    let mut set: PredSet = 0;
    for f in 0u16..16 {
        let z = f & 0b0001 != 0;
        let s = f & 0b0010 != 0;
        let has_co = f & 0b1100 != 0;
        if z && (!may_zero || s) {
            continue; // a zero value is never negative
        }
        if !z && !may_nonzero {
            continue;
        }
        if s && !may_sign {
            continue;
        }
        if !z && !s && !may_notsign {
            continue;
        }
        if has_co && !co {
            continue;
        }
        set |= 1 << f;
    }
    set
}

/// Interval of raw 4-bit values a predicate set allows (for data reads of
/// predicate registers).
fn predset_to_val(set: PredSet) -> AbsVal {
    if set == 0 {
        return AbsVal::constant(0);
    }
    let lo = set.trailing_zeros();
    let hi = 15 - u32::from(set).leading_zeros().saturating_sub(16);
    let mut zeros = u32::MAX;
    for f in 0..16u32 {
        if set & (1 << f) != 0 {
            zeros &= !f;
        }
    }
    AbsVal {
        lo,
        hi,
        zeros: zeros | !0xF,
    }
    .normalize()
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    /// Per tracked register (dense [`reg_index`] space). Predicate entries
    /// are unused — see `preds`.
    vals: Vec<AbsVal>,
    /// Possible condition-code words per predicate register.
    preds: [PredSet; NUM_PREDS as usize],
    /// Whether each tracked register may vary across threads of one CTA.
    tid: Vec<bool>,
}

impl AbsState {
    /// The zero-initialised register file at kernel entry.
    fn entry() -> AbsState {
        AbsState {
            vals: vec![AbsVal::constant(0); TRACKED_REGS],
            preds: [1 << 0; NUM_PREDS as usize],
            tid: vec![false; TRACKED_REGS],
        }
    }

    /// Joins `other` into `self`; reports whether `self` changed.
    fn join_from(&mut self, other: &AbsState, widen: bool) -> bool {
        let mut changed = false;
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            let joined = a.join(b);
            let next = if widen { joined.widen_from(a) } else { joined };
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        for (a, b) in self.preds.iter_mut().zip(&other.preds) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        for (a, b) in self.tid.iter_mut().zip(&other.tid) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }
}

/// One memory access of an instruction, with its resolved abstract address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessAbs {
    /// Address space.
    pub space: MemSpace,
    /// Constant byte offset of the `MemRef`.
    pub offset: u32,
    /// Whether the access is a store.
    pub store: bool,
    /// The base register, if any.
    pub base: Option<Register>,
    /// Resolved absolute byte address (`base + offset`, wrapping).
    pub addr: AbsVal,
    /// Whether the address may vary across threads of one CTA.
    pub addr_tid_dep: bool,
    /// For stores: whether the stored value may vary across threads.
    pub value_tid_dep: bool,
}

/// Abstract facts about one register write-back slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAbs {
    /// Write-back slot index.
    pub slot: u8,
    /// Register written.
    pub reg: Register,
    /// Committed value bound (for predicate destinations this is the bound
    /// of the 4-bit flag word).
    pub value: AbsVal,
    /// Possible flag words, when `reg` is a predicate.
    pub flags: PredSet,
    /// Whether the committed value may vary across threads of one CTA.
    pub tid_dep: bool,
}

/// Whole-program abstract interpretation result.
#[derive(Debug, Clone)]
pub struct AbsintReport {
    /// Per-pc register write-back facts, in slot order (same order as
    /// [`crate::StaticAceReport::slots`]).
    per_pc_slots: Vec<Vec<SlotAbs>>,
    /// Per-pc memory accesses: `Mem` source operands in operand order,
    /// then `Mem` destinations.
    per_pc_mem: Vec<Vec<MemAccessAbs>>,
    /// Per-pc guard reachability (false for instructions in unreachable
    /// blocks — no facts recorded there).
    reached: Vec<bool>,
    /// Whether parameter loads were constant-folded (no shared store can
    /// overlap the parameter region).
    params_folded: bool,
    ctx: AbsContext,
}

impl AbsintReport {
    /// Runs the interpreter to fixpoint over `program` under `ctx`.
    #[must_use]
    pub fn analyze(program: &KernelProgram, ctx: &AbsContext) -> Self {
        let interp = Interp {
            program,
            ctx: ctx.clone(),
        };
        // Pass 1 (no parameter folding) bounds every shared-store address;
        // folding is only enabled when none can overlap the param region.
        let first = interp.run(false);
        let (plo, phi) = ctx.param_range();
        let mut overlap = false;
        for accesses in &first.per_pc_mem {
            for a in accesses {
                if a.store
                    && a.space == MemSpace::Shared
                    && a.addr.lo < phi
                    && u64::from(a.addr.hi) + 4 > u64::from(plo)
                {
                    overlap = true;
                }
            }
        }
        if overlap || ctx.params.is_empty() {
            first
        } else {
            let mut folded = interp.run(true);
            folded.params_folded = true;
            folded
        }
    }

    /// Write-back facts of instruction `pc`, in slot order.
    #[must_use]
    pub fn slots(&self, pc: usize) -> &[SlotAbs] {
        &self.per_pc_slots[pc]
    }

    /// Memory accesses of instruction `pc` (sources then destinations).
    #[must_use]
    pub fn mem(&self, pc: usize) -> &[MemAccessAbs] {
        &self.per_pc_mem[pc]
    }

    /// Whether instruction `pc` is reachable from the kernel entry.
    #[must_use]
    pub fn reached(&self, pc: usize) -> bool {
        self.reached[pc]
    }

    /// Whether parameter loads were constant-folded.
    #[must_use]
    pub fn params_folded(&self) -> bool {
        self.params_folded
    }

    /// The launch context the analysis ran under.
    #[must_use]
    pub fn ctx(&self) -> &AbsContext {
        &self.ctx
    }
}

struct Interp<'p> {
    program: &'p KernelProgram,
    ctx: AbsContext,
}

/// Evaluation artifacts of one instruction the recorder keeps.
#[derive(Default)]
struct Recorded {
    slots: Vec<SlotAbs>,
    mem: Vec<MemAccessAbs>,
}

impl Interp<'_> {
    fn run(&self, fold_params: bool) -> AbsintReport {
        let cfg = self.program.cfg();
        let blocks = cfg.blocks();
        let nb = blocks.len();
        let n = self.program.len();

        let mut entry: Vec<Option<AbsState>> = vec![None; nb];
        let mut visits = vec![0usize; nb];
        let mut work: VecDeque<usize> = VecDeque::new();
        if nb > 0 {
            entry[0] = Some(AbsState::entry());
            work.push_back(0);
        }
        while let Some(b) = work.pop_front() {
            let mut st = entry[b].clone().expect("queued blocks have a state");
            for pc in blocks[b].range() {
                self.exec(&mut st, pc, fold_params, None);
            }
            for &s in &blocks[b].successors {
                match &mut entry[s] {
                    Some(old) => {
                        visits[s] += 1;
                        let widen = visits[s] >= WIDEN_AFTER;
                        if old.join_from(&st, widen) && !work.contains(&s) {
                            work.push_back(s);
                        }
                    }
                    None => {
                        entry[s] = Some(st.clone());
                        if !work.contains(&s) {
                            work.push_back(s);
                        }
                    }
                }
            }
        }

        // Recording sweep over the fixed point.
        let mut per_pc_slots: Vec<Vec<SlotAbs>> = vec![Vec::new(); n];
        let mut per_pc_mem: Vec<Vec<MemAccessAbs>> = vec![Vec::new(); n];
        let mut reached = vec![false; n];
        for (b, block) in blocks.iter().enumerate() {
            let Some(start) = &entry[b] else { continue };
            let mut st = start.clone();
            for pc in block.range() {
                reached[pc] = true;
                let mut rec = Recorded::default();
                self.exec(&mut st, pc, fold_params, Some(&mut rec));
                per_pc_slots[pc] = rec.slots;
                per_pc_mem[pc] = rec.mem;
            }
        }
        AbsintReport {
            per_pc_slots,
            per_pc_mem,
            reached,
            params_folded: false,
            ctx: self.ctx.clone(),
        }
    }

    /// Bound of a special register under the launch geometry.
    fn special(&self, s: Special) -> AbsVal {
        let (bx, by, bz) = self.ctx.block;
        let (gx, gy) = self.ctx.grid;
        match s {
            Special::TidX => AbsVal::range(0, bx - 1),
            Special::TidY => AbsVal::range(0, by - 1),
            Special::TidZ => AbsVal::range(0, bz - 1),
            Special::NTidX => AbsVal::constant(bx),
            Special::NTidY => AbsVal::constant(by),
            Special::CtaIdX => AbsVal::range(0, gx - 1),
            Special::CtaIdY => AbsVal::range(0, gy - 1),
            Special::NCtaIdX => AbsVal::constant(gx),
            Special::NCtaIdY => AbsVal::constant(gy),
        }
    }

    /// Resolves a memory operand's absolute address.
    fn resolve(&self, st: &AbsState, m: &MemRef) -> (AbsVal, bool) {
        let (base, tid_dep) = match m.base {
            None => (AbsVal::constant(0), false),
            Some(reg) => self.read_reg(st, reg),
        };
        (base.add(&AbsVal::constant(m.offset)), tid_dep)
    }

    /// Abstract `exec::read_reg`: value bound and tid-dependence.
    fn read_reg(&self, st: &AbsState, reg: Register) -> (AbsVal, bool) {
        if reg.is_discard() {
            return (AbsVal::constant(0), false);
        }
        match reg {
            Register::Special(s) => (
                self.special(s),
                matches!(s, Special::TidX | Special::TidY | Special::TidZ),
            ),
            Register::Pred(p) => {
                let ri = reg_index(reg).expect("preds are tracked");
                (predset_to_val(st.preds[p as usize]), st.tid[ri])
            }
            _ => {
                let ri = reg_index(reg).expect("gprs/ofs are tracked");
                (st.vals[ri], st.tid[ri])
            }
        }
    }

    /// Abstract `exec::operand_value`, recording memory accesses.
    fn operand(
        &self,
        st: &AbsState,
        op: &Operand,
        fold_params: bool,
        rec: Option<&mut Recorded>,
    ) -> (AbsVal, bool) {
        match op {
            Operand::Imm(v) => (AbsVal::constant(*v), false),
            Operand::Reg { reg, half, neg } => {
                let (mut v, tid_dep) = self.read_reg(st, *reg);
                match half {
                    Some(Half::Lo) => v = v.and(&AbsVal::constant(0xFFFF)),
                    Some(Half::Hi) => v = v.shr_const(16, false),
                    None => {}
                }
                if *neg {
                    // Type-dependent negation is applied by the caller
                    // (float negation is a sign-bit flip); being uniformly
                    // conservative here keeps the operand path simple.
                    v = AbsVal::TOP;
                }
                (v, tid_dep)
            }
            Operand::Mem(m) => {
                let (addr, addr_tid_dep) = self.resolve(st, m);
                if let Some(rec) = rec {
                    rec.mem.push(MemAccessAbs {
                        space: m.space,
                        offset: m.offset,
                        store: false,
                        base: m.base,
                        addr,
                        addr_tid_dep,
                        value_tid_dep: false,
                    });
                }
                let value = if fold_params && m.space == MemSpace::Shared {
                    self.fold_param(&addr)
                } else {
                    None
                };
                match value {
                    Some(v) => (AbsVal::constant(v), false),
                    // Loaded contents are unmodeled; a tid-dependent
                    // address can load tid-dependent data.
                    None => (AbsVal::TOP, addr_tid_dep),
                }
            }
        }
    }

    /// Constant-folds a shared load of a kernel parameter.
    fn fold_param(&self, addr: &AbsVal) -> Option<u32> {
        let a = addr.as_const()?;
        let (plo, phi) = self.ctx.param_range();
        if a >= plo && a + 4 <= phi && a % 4 == 0 {
            Some(self.ctx.params[((a - plo) / 4) as usize])
        } else {
            None
        }
    }

    /// Abstract transfer of one instruction. With `rec` set, also records
    /// per-slot and per-access facts (used only on the post-fixpoint
    /// sweep).
    fn exec(
        &self,
        st: &mut AbsState,
        pc: usize,
        fold_params: bool,
        mut rec: Option<&mut Recorded>,
    ) {
        let instr = self.program.instr(pc);
        let guarded = instr.guard.is_some();
        let ty = instr.ty;

        // Evaluate sources in operand order, mirroring the interpreter.
        let mut srcs: Vec<(AbsVal, bool)> = Vec::with_capacity(3);
        for op in instr.src.iter().flatten() {
            srcs.push(self.operand(st, op, fold_params, rec.as_deref_mut()));
        }
        let src = |i: usize| srcs.get(i).map_or((AbsVal::TOP, true), |v| *v);
        let any_tid = |k: usize| (0..k).any(|i| src(i).1);

        // Memory destinations resolve their address too.
        let mut store_dests: Vec<(AbsVal, bool)> = Vec::new();
        for dest in instr.dests() {
            if let Dest::Mem(m) = dest {
                store_dests.push(self.resolve(st, m));
            }
        }

        let produces_result = !matches!(
            instr.opcode,
            Opcode::St
                | Opcode::Bra
                | Opcode::Ssy
                | Opcode::Bar
                | Opcode::Ret
                | Opcode::Retp
                | Opcode::Exit
                | Opcode::Trap
                | Opcode::Nop
        );

        // Result value, tid-dependence and carry/overflow producibility.
        let (value, tid_dep, co) = if produces_result {
            let v = self.compute(instr, &srcs);
            let nsrc = srcs.len();
            (
                v,
                any_tid(nsrc),
                matches!(instr.opcode, Opcode::Add | Opcode::Sub) && !ty.is_float(),
            )
        } else {
            (AbsVal::TOP, false, false)
        };

        // Record stores (source accesses were already recorded during
        // operand evaluation).
        if let Some(rec) = rec.as_deref_mut() {
            let mut di = 0;
            for dest in instr.dests() {
                if let Dest::Mem(m) = dest {
                    let (addr, addr_tid_dep) = store_dests[di];
                    di += 1;
                    rec.mem.push(MemAccessAbs {
                        space: m.space,
                        offset: m.offset,
                        store: true,
                        base: m.base,
                        addr,
                        addr_tid_dep,
                        // The stored value for `st` is src 0; for
                        // store-through-mov it is the computed result.
                        value_tid_dep: if instr.opcode == Opcode::St {
                            src(0).1
                        } else {
                            tid_dep
                        },
                    });
                }
            }
        }

        // Write-backs.
        if produces_result {
            for (slot, dest) in instr.dst.iter().enumerate() {
                let Some(Dest::Reg(reg)) = dest else { continue };
                if reg.is_discard() || matches!(reg, Register::Special(_)) {
                    continue;
                }
                match reg {
                    Register::Pred(p) => {
                        let flags = flags_from(&value, ty.is_float(), co);
                        let next = if guarded {
                            st.preds[*p as usize] | flags
                        } else {
                            flags
                        };
                        st.preds[*p as usize] = next;
                        if let Some(ri) = reg_index(*reg) {
                            st.tid[ri] = tid_dep || (guarded && st.tid[ri]);
                        }
                        if let Some(rec) = rec.as_deref_mut() {
                            rec.slots.push(SlotAbs {
                                slot: slot as u8,
                                reg: *reg,
                                value: predset_to_val(flags),
                                flags,
                                tid_dep,
                            });
                        }
                    }
                    _ => {
                        let Some(ri) = reg_index(*reg) else { continue };
                        let next = if guarded {
                            value.join(&st.vals[ri])
                        } else {
                            value
                        };
                        st.vals[ri] = next;
                        st.tid[ri] = tid_dep || (guarded && st.tid[ri]);
                        if let Some(rec) = rec.as_deref_mut() {
                            rec.slots.push(SlotAbs {
                                slot: slot as u8,
                                reg: *reg,
                                value,
                                flags: 0,
                                tid_dep,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Abstract value of the committed result (post type-mask), mirroring
    /// `exec::step`'s per-opcode arms.
    fn compute(&self, instr: &Instruction, srcs: &[(AbsVal, bool)]) -> AbsVal {
        let ty = instr.ty;
        let s = |i: usize| srcs.get(i).map_or(AbsVal::TOP, |v| v.0);
        let v = match instr.opcode {
            Opcode::Mov | Opcode::Ld => s(0),
            Opcode::Cvt => self.cvt(s(0), instr.src_ty, ty),
            Opcode::Add if !ty.is_float() => s(0).add(&s(1)),
            Opcode::Sub if !ty.is_float() => s(0).sub(&s(1)),
            Opcode::Mul | Opcode::Mad if !ty.is_float() => {
                let prod = if instr.wide {
                    self.mul_wide(s(0), s(1), ty)
                } else if instr.hi {
                    AbsVal::TOP
                } else {
                    s(0).mul(&s(1))
                };
                if instr.opcode == Opcode::Mad {
                    // The wide addend is read as u32; the committed value
                    // wraps either way, which `add` over-approximates.
                    prod.add(&s(2))
                } else {
                    prod
                }
            }
            Opcode::Div if !ty.is_float() && !ty.is_signed() => s(0).udiv(&s(1)),
            Opcode::Rem if !ty.is_float() && !ty.is_signed() => s(0).urem(&s(1)),
            Opcode::Div | Opcode::Rem if !ty.is_float() => {
                // Signed: only precise when both operands are provably
                // non-negative, where it matches the unsigned rules.
                if s(0).provably_nonneg() && s(1).provably_nonneg() {
                    if instr.opcode == Opcode::Div {
                        s(0).udiv(&s(1))
                    } else {
                        s(0).urem(&s(1))
                    }
                } else {
                    AbsVal::TOP
                }
            }
            Opcode::Min | Opcode::Max if !ty.is_float() && !ty.is_signed() => {
                let (a, b) = (s(0), s(1));
                if instr.opcode == Opcode::Min {
                    AbsVal::range(a.lo.min(b.lo), a.hi.min(b.hi))
                } else {
                    AbsVal::range(a.lo.max(b.lo), a.hi.max(b.hi))
                }
            }
            // The result is one of the operands; join is sound for any
            // type interpretation.
            Opcode::Min | Opcode::Max | Opcode::Selp => s(0).join(&s(1)),
            Opcode::Abs if ty.is_float() => {
                let a = s(0);
                AbsVal {
                    lo: if a.provably_nonneg() { a.lo } else { 0 },
                    hi: a.hi.min(0x7FFF_FFFF),
                    zeros: a.zeros | 0x8000_0000,
                }
                .normalize()
            }
            Opcode::Neg if !ty.is_float() => s(0).neg(),
            Opcode::And if !ty.is_float() => s(0).and(&s(1)),
            Opcode::Or if !ty.is_float() => s(0).or(&s(1)),
            Opcode::Xor if !ty.is_float() => s(0).xor(&s(1)),
            Opcode::Not if !ty.is_float() => s(0).not(),
            Opcode::Shl if !ty.is_float() => match s(1).as_const() {
                Some(k) => s(0).shl_const(k),
                None => AbsVal::TOP,
            },
            Opcode::Shr if !ty.is_float() => match s(1).as_const() {
                Some(k) => s(0).shr_const(k, ty.is_signed()),
                None => {
                    if ty.is_signed() && !s(0).provably_nonneg() {
                        AbsVal::TOP
                    } else {
                        // Any unsigned shift only shrinks the value.
                        AbsVal::range(0, s(0).hi)
                    }
                }
            },
            Opcode::Set => {
                // 0 or all-ones in the destination type (1.0f for floats),
                // pinned down when the compare is provable.
                let true_bits = if ty.is_float() {
                    1.0f32.to_bits()
                } else if ty.bits() == 16 {
                    0xFFFF
                } else {
                    u32::MAX
                };
                match instr
                    .cmp
                    .and_then(|cmp| prove_cmp(&s(0), &s(1), cmp, instr.src_ty))
                {
                    Some(true) => AbsVal::constant(true_bits),
                    Some(false) => AbsVal::constant(0),
                    None => AbsVal::constant(0).join(&AbsVal::constant(true_bits)),
                }
            }
            _ => AbsVal::TOP,
        };
        mask_ty(v, ty, instr.wide)
    }

    /// Abstract `exec::widen` + wide multiply: both factors are truncated
    /// to 16 bits; the 32-bit product cannot wrap for unsigned factors.
    fn mul_wide(&self, a: AbsVal, b: AbsVal, ty: ScalarType) -> AbsVal {
        let (ta, tb) = (a.trunc16(), b.trunc16());
        if ty.is_signed() && (ta.hi > 0x7FFF || tb.hi > 0x7FFF) {
            // A possibly-negative factor sign-extends; the product's bit
            // pattern is unconstrained from the interval alone.
            return AbsVal::TOP;
        }
        ta.mul(&tb)
    }

    /// Abstract `exec::convert`.
    fn cvt(&self, v: AbsVal, from: ScalarType, to: ScalarType) -> AbsVal {
        use ScalarType as T;
        if from == T::F32 || to == T::F32 {
            // Float conversions are unmodeled (except the trivial identity,
            // which `exec` special-cases).
            if from == T::F32 && to == T::F32 {
                return v;
            }
            return AbsVal::TOP;
        }
        // int → int: interpret the source per `int_value` (sign/zero
        // extension of 16-bit sources; 32-bit sources reinterpret
        // bit-identically), then mask to the destination width.
        let src = match from {
            T::U16 => v.trunc16(),
            T::S16 if v.trunc16().hi <= 0x7FFF => v.trunc16(),
            T::S16 => {
                // Possibly-negative 16-bit source: sign extension only
                // touches bits the 16-bit mask strips again.
                return if to.bits() == 16 {
                    v.trunc16()
                } else {
                    AbsVal::TOP
                };
            }
            _ => v,
        };
        if to.bits() == 16 {
            src.trunc16()
        } else {
            src
        }
    }
}

/// Tries to prove the outcome of a comparison from the operand bounds.
/// `None` means both outcomes remain possible.
/// Decides a scalar compare abstractly: `Some(r)` means *every* concrete
/// pair drawn from `a`×`b` compares to `r`; `None` means undecided. Signed
/// compares are only decided when both sides are provably non-negative
/// (where signed and unsigned order agree); float compares never are
/// (NaN semantics are invisible to bit-pattern intervals).
pub fn prove_cmp(a: &AbsVal, b: &AbsVal, cmp: CmpOp, src_ty: ScalarType) -> Option<bool> {
    if src_ty.is_float() {
        // Float compares involve NaN semantics the bit-pattern intervals
        // cannot speak to.
        return None;
    }
    if src_ty.is_signed() && !(a.provably_nonneg() && b.provably_nonneg()) {
        return None;
    }
    let disjoint = a.hi < b.lo || a.lo > b.hi;
    match cmp {
        CmpOp::Eq => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if x == y => Some(true),
            _ if disjoint => Some(false),
            _ => None,
        },
        CmpOp::Ne => match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if x == y => Some(false),
            _ if disjoint => Some(true),
            _ => None,
        },
        CmpOp::Lt if a.hi < b.lo => Some(true),
        CmpOp::Lt if a.lo >= b.hi => Some(false),
        CmpOp::Le if a.hi <= b.lo => Some(true),
        CmpOp::Le if a.lo > b.hi => Some(false),
        CmpOp::Gt if a.lo > b.hi => Some(true),
        CmpOp::Gt if a.hi <= b.lo => Some(false),
        CmpOp::Ge if a.lo >= b.hi => Some(true),
        CmpOp::Ge if a.hi < b.lo => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    fn ctx() -> AbsContext {
        AbsContext {
            block: (64, 1, 1),
            grid: (2, 1),
            params: vec![0x100, 16],
            shared_bytes: 16 * 1024,
            global_bytes: 4096,
            local_bytes: 4096,
        }
    }

    #[test]
    fn constant_propagation_through_arithmetic() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x10
            shl.u32 $r2, $r1, 0x2
            add.u32 $r3, $r2, 0x4
            st.global.u32 [$r3], $r1
            exit
            "#,
        )
        .unwrap();
        let r = AbsintReport::analyze(&p, &ctx());
        assert_eq!(r.slots(1)[0].value.as_const(), Some(0x40));
        assert_eq!(r.slots(2)[0].value.as_const(), Some(0x44));
        let st = &r.mem(3)[0];
        assert!(st.store);
        assert_eq!(st.addr.as_const(), Some(0x44));
    }

    #[test]
    fn tid_seeds_intervals_and_alignment() {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            ld.global.u32 $r3, [$r2]
            st.global.u32 [$r2], $r3
            exit
            "#,
        )
        .unwrap();
        let r = AbsintReport::analyze(&p, &ctx());
        let addr = &r.mem(2)[0];
        assert_eq!(addr.addr.lo, 0);
        assert_eq!(addr.addr.hi, 63 * 4);
        assert_eq!(addr.addr.known_zeros() & 0b11, 0b11, "word aligned");
        assert!(addr.addr_tid_dep);
        assert!(r.slots(0)[0].tid_dep);
    }

    #[test]
    fn params_fold_when_no_shared_store_overlaps() {
        let p = assemble(
            "t",
            r#"
            ld.shared.u32 $r1, s[0x10]
            st.global.u32 [$r1], $r1
            exit
            "#,
        )
        .unwrap();
        let r = AbsintReport::analyze(&p, &ctx());
        assert!(r.params_folded());
        assert_eq!(r.slots(0)[0].value.as_const(), Some(0x100));
    }

    #[test]
    fn shared_store_near_params_disables_folding() {
        let p = assemble(
            "t",
            r#"
            st.shared.u32 s[0x10], $r124
            ld.shared.u32 $r1, s[0x10]
            st.global.u32 [$r1], $r1
            exit
            "#,
        )
        .unwrap();
        let r = AbsintReport::analyze(&p, &ctx());
        assert!(!r.params_folded());
        assert!(r.slots(1)[0].value.as_const().is_none());
    }

    #[test]
    fn loop_counter_converges_with_widening() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0xA
            @$p0.ne bra loop
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        // Terminates and the counter's lower bound survives widening.
        let r = AbsintReport::analyze(&p, &ctx());
        assert!(r.reached(4));
        assert!(r.slots(1)[0].value.hi >= 0xA);
    }

    #[test]
    fn set_flags_track_provable_compares() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x5
            set.eq.u32.u32 $p0/$o127, $r1, 0x5
            @$p0.eq bra skip
            st.global.u32 [$r124], $r1
            skip:
            exit
            "#,
        )
        .unwrap();
        let r = AbsintReport::analyze(&p, &ctx());
        // set true → all-ones value → zero flag clear, sign set.
        let flags = r.slots(1)[0].flags;
        assert_eq!(flags & 0b1, 0, "value u32::MAX is never zero-flagged");
    }

    #[test]
    fn predset_to_val_bounds() {
        assert_eq!(predset_to_val(1 << 0).as_const(), Some(0));
        assert_eq!(predset_to_val(1 << 5).as_const(), Some(5));
        let v = predset_to_val((1 << 1) | (1 << 3));
        assert_eq!((v.lo, v.hi), (1, 3));
        assert_eq!(predset_to_val(0xFFFF).hi, 15);
    }

    #[test]
    fn absval_transfer_edge_cases() {
        let top = AbsVal::TOP;
        assert_eq!(top.add(&AbsVal::constant(1)).hi, u32::MAX);
        // Wrapping shl keeps low zeros.
        let v = AbsVal::TOP.shl_const(4);
        assert_eq!(v.known_zeros() & 0xF, 0xF);
        assert_eq!(AbsVal::constant(8).shl_const(33).as_const(), Some(0));
        assert_eq!(
            AbsVal::constant(0x8000_0000)
                .shr_const(33, false)
                .as_const(),
            Some(0)
        );
        assert_eq!(AbsVal::constant(0).neg().as_const(), Some(0));
        assert_eq!(AbsVal::constant(1).neg().as_const(), Some(u32::MAX));
        // Division by a possibly-zero divisor is ⊤ (exec yields MAX).
        assert_eq!(AbsVal::constant(8).udiv(&AbsVal::range(0, 2)), AbsVal::TOP);
        assert_eq!(
            AbsVal::constant(8).udiv(&AbsVal::constant(2)).as_const(),
            Some(4)
        );
    }
}
