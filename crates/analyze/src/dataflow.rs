//! Worklist-based dataflow over a kernel's [`Cfg`]: per-instruction def/use
//! sets with *bit-precise* read masks, reaching definitions with def-use
//! chains, and backward register liveness.
//!
//! Read masks mirror the interpreter in `fsp-sim::exec` exactly; every
//! refinement below cites the interpreter behaviour that justifies it. When
//! in doubt the mask stays conservative (all bits read) — the static ACE
//! consumer must never claim a live bit dead.

use fsp_isa::{
    Cfg, Dest, Half, Instruction, KernelProgram, MemSpace, Opcode, Operand, PredTest, Register,
    NUM_GPRS, NUM_OFS, NUM_PREDS,
};

/// Dense index space for the registers the analysis tracks. Specials are
/// read-only thread coordinates and `$r124`/`$o127` discard writes and read
/// zero, so none of them carry dataflow.
pub(crate) const TRACKED_REGS: usize = NUM_GPRS as usize + NUM_PREDS as usize + NUM_OFS as usize;

/// Maps a register to its dense index, or `None` for registers that carry
/// no dataflow (specials, discards, the zero register).
#[must_use]
pub fn reg_index(reg: Register) -> Option<usize> {
    match reg {
        r if r.is_discard() => None,
        Register::Gpr(n) => Some(n as usize),
        Register::Pred(n) => Some(NUM_GPRS as usize + n as usize),
        Register::Ofs(n) => Some(NUM_GPRS as usize + NUM_PREDS as usize + n as usize),
        Register::Special(_) | Register::Discard => None,
    }
}

/// A fixed-capacity bitset used for dataflow facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` elements.
    #[must_use]
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] = old | (1 << b);
        old & (1 << b) == 0
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether `i` is in the set.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a = old | b;
            changed |= *a != old;
        }
        changed
    }

    /// Iterates over the set elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// How an instruction consumes a register read — the context the abstract
/// outcome classifier needs to decide what a flipped bit can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// Read by the instruction guard (condition-code test).
    Guard,
    /// Read as an arithmetic/data source operand.
    Data,
    /// Read as the base of a memory address (`ExecCtx::resolve`).
    MemBase {
        /// Address space of the access.
        space: MemSpace,
        /// Constant byte offset added to the base.
        offset: u32,
        /// Whether the access is a store.
        store: bool,
    },
}

/// One register read of an instruction, with the mask of value bits the
/// interpreter actually consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegUse {
    /// The register read.
    pub reg: Register,
    /// Bits of the register value that can influence execution.
    pub mask: u32,
    /// Read context (guard test, data operand, or address base).
    pub kind: UseKind,
}

/// One register write of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegDef {
    /// Write-back slot (index into `Instruction::dst`).
    pub slot: u8,
    /// The register written.
    pub reg: Register,
    /// Injectable bit width of the write (`Instruction::register_dest_bits`).
    pub width: u32,
    /// Whether the write is conditional on the instruction's guard — a
    /// guarded def generates but does not kill.
    pub guarded: bool,
}

/// Def/use summary of one instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefUse {
    /// Register writes, in write-back slot order.
    pub defs: Vec<RegDef>,
    /// Register reads (guard, sources, memory bases).
    pub uses: Vec<RegUse>,
}

/// Condition-code bits a [`PredTest`] consumes: guards read only the zero
/// (bit 0) and sign (bit 1) flags (`exec::guard_passes`); carry and
/// overflow are never tested.
#[must_use]
pub fn pred_test_mask(test: PredTest) -> u32 {
    match test {
        PredTest::Eq | PredTest::Ne => 0b0001,
        PredTest::Lt | PredTest::Ge => 0b0010,
        PredTest::Le | PredTest::Gt => 0b0011,
    }
}

/// Fills every bit position at or below the highest set bit of `m`
/// (`0b0100` → `0b0111`). Used for operations where output bit `i` depends
/// on input bits `0..=i` (two's-complement negation, addition carries).
const fn fill_down(m: u32) -> u32 {
    let mut x = m;
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x
}

/// Composes a mask over an operand's *post-half-selection* value back onto
/// the register bits (`exec::operand_value`: `.lo` keeps bits `15..=0`,
/// `.hi` shifts bits `31..=16` down).
const fn through_half(value_mask: u32, half: Option<Half>) -> u32 {
    match half {
        None => value_mask,
        Some(Half::Lo) => value_mask & 0xFFFF,
        Some(Half::Hi) => (value_mask & 0xFFFF) << 16,
    }
}

/// The mask of value bits a 16-bit-result operation commits: `exec::mask`
/// truncates to the type width before write-back.
fn ty_value_mask(instr: &Instruction) -> u32 {
    match instr.ty.bits() {
        16 if !instr.wide => 0xFFFF,
        _ => u32::MAX,
    }
}

/// Extracts the bit-precise def/use summary of `instr`.
#[must_use]
pub fn def_use(instr: &Instruction) -> DefUse {
    let mut du = DefUse::default();

    // Guard: reads the tested condition-code bits of the predicate.
    if let Some(g) = &instr.guard {
        du.uses.push(RegUse {
            reg: Register::Pred(g.pred),
            mask: pred_test_mask(g.test),
            kind: UseKind::Guard,
        });
    }

    // Source operands.
    for (i, op) in instr.src.iter().enumerate() {
        let Some(op) = op else { continue };
        match op {
            Operand::Imm(_) => {}
            Operand::Mem(m) => {
                // Address bases feed `ExecCtx::resolve` in full.
                if let Some(base) = m.base {
                    if !base.is_discard() {
                        du.uses.push(RegUse {
                            reg: base,
                            mask: u32::MAX,
                            kind: UseKind::MemBase {
                                space: m.space,
                                offset: m.offset,
                                store: false,
                            },
                        });
                    }
                }
            }
            Operand::Reg { reg, half, neg } => {
                if reg.is_discard() {
                    continue;
                }
                let mut vm = source_value_mask(instr, i);
                // Integer negation makes output bit `i` depend on input
                // bits `0..=i` (carry chain); float negation only flips the
                // sign bit, which is bitwise-local.
                if *neg && !instr.ty.is_float() {
                    vm = fill_down(vm);
                }
                let mut mask = through_half(vm, *half);
                if matches!(reg, Register::Pred(_)) {
                    // Predicates read back their 4 flag bits (`read_reg`).
                    mask &= 0xF;
                }
                du.uses.push(RegUse {
                    reg: *reg,
                    mask,
                    kind: UseKind::Data,
                });
            }
        }
    }

    // Memory destinations read their address base (`ExecCtx::store`
    // resolves it), even though they define no register.
    for dest in instr.dests() {
        if let Dest::Mem(m) = dest {
            if let Some(base) = m.base {
                if !base.is_discard() {
                    du.uses.push(RegUse {
                        reg: base,
                        mask: u32::MAX,
                        kind: UseKind::MemBase {
                            space: m.space,
                            offset: m.offset,
                            store: true,
                        },
                    });
                }
            }
        }
    }

    // Destinations. Only value-producing opcodes commit register results
    // (`exec::step` leaves `result = None` for stores and control flow).
    let produces_result = !matches!(
        instr.opcode,
        Opcode::St
            | Opcode::Bra
            | Opcode::Ssy
            | Opcode::Bar
            | Opcode::Ret
            | Opcode::Retp
            | Opcode::Exit
            | Opcode::Trap
            | Opcode::Nop
    );
    if produces_result {
        for (slot, dest) in instr.dst.iter().enumerate() {
            let Some(Dest::Reg(reg)) = dest else { continue };
            if reg.is_discard() || matches!(reg, Register::Special(_)) {
                continue;
            }
            du.defs.push(RegDef {
                slot: slot as u8,
                reg: *reg,
                width: instr.register_dest_bits(*reg),
                guarded: instr.guard.is_some(),
            });
        }
    }
    du
}

/// The mask of bits of source operand `i`'s *value* (post half-selection)
/// that can influence the instruction's results, per the interpreter.
fn source_value_mask(instr: &Instruction, i: usize) -> u32 {
    let full = u32::MAX;
    match instr.opcode {
        // `convert` narrows 16-bit source types to their low half before
        // widening (`int_value`); 32-bit and float sources read in full.
        Opcode::Cvt if instr.src_ty.bits() == 16 => 0xFFFF,
        // Bitwise-local operations: output bit i depends on input bit i
        // only, and the committed value is truncated to the type width.
        // Flags derive from the committed value (`flags_of`), so no extra
        // bits leak through a predicate destination.
        Opcode::Mov | Opcode::Ld | Opcode::Not => ty_value_mask(instr),
        Opcode::And | Opcode::Or | Opcode::Xor if instr.ty.is_float() => full,
        Opcode::And => {
            let m = ty_value_mask(instr);
            match other_imm(instr, i) {
                // `a & imm`: bits where imm is 0 are forced to 0.
                Some(imm) => m & imm,
                None => m,
            }
        }
        Opcode::Or => {
            let m = ty_value_mask(instr);
            match other_imm(instr, i) {
                // `a | imm`: bits where imm is 1 are forced to 1.
                Some(imm) => m & !imm,
                None => m,
            }
        }
        Opcode::Xor => ty_value_mask(instr),
        // Shifts by a constant amount move a contiguous window of source
        // bits into the (type-truncated) result.
        Opcode::Shl if i == 0 && !instr.ty.is_float() => match shift_amount(instr) {
            Some(k) if k >= 32 => 0,
            Some(k) => ty_value_mask(instr) >> k,
            None => full,
        },
        Opcode::Shr if i == 0 && !instr.ty.is_float() => match shift_amount(instr) {
            // k >= 32 still reads the sign bit for signed types.
            Some(k) if k >= 32 => {
                if instr.ty.is_signed() {
                    0x8000_0000
                } else {
                    0
                }
            }
            Some(k) => {
                let m = ty_value_mask(instr) << k;
                if instr.ty.is_signed() {
                    // Arithmetic shift replicates bit 31 into vacated
                    // positions.
                    m | 0x8000_0000
                } else {
                    m
                }
            }
            None => full,
        },
        // `mul.wide` / `mad.wide` widen their factor operands from 16 bits
        // (`exec::widen`); the addend of `mad.wide` stays 32-bit.
        Opcode::Mul | Opcode::Mad if instr.wide && i < 2 => 0xFFFF,
        // `selp` tests its predicate operand like a guard.
        Opcode::Selp if i == 2 => {
            let test = match instr.cmp {
                Some(fsp_isa::CmpOp::Eq) => PredTest::Eq,
                Some(fsp_isa::CmpOp::Lt) => PredTest::Lt,
                Some(fsp_isa::CmpOp::Le) => PredTest::Le,
                Some(fsp_isa::CmpOp::Gt) => PredTest::Gt,
                Some(fsp_isa::CmpOp::Ge) => PredTest::Ge,
                _ => PredTest::Ne,
            };
            pred_test_mask(test)
        }
        _ => full,
    }
}

/// The immediate value of the *other* binary operand, for commutative
/// bitwise refinements.
fn other_imm(instr: &Instruction, i: usize) -> Option<u32> {
    let other = match i {
        0 => 1,
        1 => 0,
        _ => return None,
    };
    match instr.src.get(other)? {
        Some(Operand::Imm(v)) => Some(*v),
        _ => None,
    }
}

/// A constant shift amount, when the shift count is an immediate.
fn shift_amount(instr: &Instruction) -> Option<u32> {
    match instr.src.get(1)? {
        Some(Operand::Imm(v)) => Some(*v),
        _ => None,
    }
}

/// One static register definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Instruction index of the write.
    pub pc: usize,
    /// The definition itself.
    pub def: RegDef,
}

/// One use site a definition reaches: the reading instruction and the index
/// of the read within its [`DefUse::uses`] list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseSite {
    /// Instruction index of the read.
    pub pc: usize,
    /// Index into `def_use[pc].uses`.
    pub use_index: usize,
}

/// One use of a register with no reaching definition (it reads the
/// zero-initialised register file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndefinedUse {
    /// Instruction index of the read.
    pub pc: usize,
    /// The register read.
    pub reg: Register,
}

/// The result of running all dataflow passes over one program.
#[derive(Debug, Clone)]
pub struct DataflowResult {
    /// Per-instruction def/use summaries.
    pub def_use: Vec<DefUse>,
    /// All static register definitions, in program order.
    pub defs: Vec<DefSite>,
    /// Per definition (parallel to `defs`): union of the read masks of
    /// every use the definition reaches. A zero mask means the definition
    /// is dead.
    pub use_masks: Vec<u32>,
    /// Per definition (parallel to `defs`): every use site the definition
    /// reaches, in block-walk order. The outcome classifier inspects these
    /// to decide where a flipped destination bit can flow.
    pub use_sites: Vec<Vec<UseSite>>,
    /// Uses whose reaching-definition set is empty on *every* path.
    pub undefined_uses: Vec<UndefinedUse>,
    /// Per-block reachability from the CFG entry.
    pub reachable: Vec<bool>,
    /// Per-block live-in register sets (dense indices; see [`reg_index`]).
    pub live_in: Vec<BitSet>,
    /// Per-block live-out register sets.
    pub live_out: Vec<BitSet>,
}

impl DataflowResult {
    /// The definition ids at instruction `pc`, in slot order.
    #[must_use]
    pub fn defs_at(&self, pc: usize) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.pc == pc)
            .map(|(id, _)| id)
            .collect()
    }
}

/// Shared driver for the dataflow passes of one program.
#[derive(Debug)]
pub struct ProgramDataflow<'p> {
    program: &'p KernelProgram,
    cfg: Cfg,
}

impl<'p> ProgramDataflow<'p> {
    /// Prepares the analysis for `program`.
    #[must_use]
    pub fn new(program: &'p KernelProgram) -> Self {
        let cfg = program.cfg();
        ProgramDataflow { program, cfg }
    }

    /// The CFG the passes run over.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The analysed program.
    #[must_use]
    pub fn program(&self) -> &'p KernelProgram {
        self.program
    }

    /// Runs reaching definitions + def-use chains + liveness to fixpoint.
    #[must_use]
    pub fn run(&self) -> DataflowResult {
        let n = self.program.len();
        let blocks = self.cfg.blocks();
        let def_use: Vec<DefUse> = (0..n).map(|pc| def_use(self.program.instr(pc))).collect();

        // Enumerate definition sites.
        let mut defs = Vec::new();
        let mut def_ids_at: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pc, du) in def_use.iter().enumerate() {
            for d in &du.defs {
                def_ids_at[pc].push(defs.len());
                defs.push(DefSite { pc, def: *d });
            }
        }
        let defs_of_reg = |ri: usize| {
            defs.iter()
                .enumerate()
                .filter(move |(_, d)| reg_index(d.def.reg) == Some(ri))
                .map(|(id, _)| id)
        };

        let reachable = self.reachable_blocks();

        // --- Reaching definitions (forward, may) ---
        let nb = blocks.len();
        let mut gen_kill: Vec<(BitSet, BitSet)> = Vec::with_capacity(nb);
        for block in blocks {
            let mut gen = BitSet::new(defs.len());
            let mut kill = BitSet::new(defs.len());
            for pc in block.range() {
                for &id in &def_ids_at[pc] {
                    let d = &defs[id];
                    if !d.def.guarded {
                        // An unguarded write replaces the whole register
                        // (`write_reg` stores the full word), killing every
                        // other definition of it.
                        if let Some(ri) = reg_index(d.def.reg) {
                            for other in defs_of_reg(ri) {
                                kill.insert(other);
                                gen.remove(other);
                            }
                        }
                    }
                    gen.insert(id);
                    kill.remove(id);
                }
            }
            gen_kill.push((gen, kill));
        }
        let mut reach_in: Vec<BitSet> = vec![BitSet::new(defs.len()); nb];
        let mut reach_out: Vec<BitSet> = gen_kill.iter().map(|(g, _)| g.clone()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                if !reachable[b] {
                    continue;
                }
                let mut inb = BitSet::new(defs.len());
                for (p, block) in blocks.iter().enumerate() {
                    if reachable[p] && block.successors.contains(&b) {
                        inb.union_with(&reach_out[p]);
                    }
                }
                if inb != reach_in[b] {
                    let (gen, kill) = &gen_kill[b];
                    let mut out = inb.clone();
                    for k in kill.iter() {
                        out.remove(k);
                    }
                    out.union_with(gen);
                    reach_in[b] = inb;
                    // Only an OUT change can affect other blocks.
                    if out != reach_out[b] {
                        reach_out[b] = out;
                        changed = true;
                    }
                }
            }
        }

        // --- Def-use chains: walk each reachable block with its IN set ---
        let mut use_masks = vec![0u32; defs.len()];
        let mut use_sites: Vec<Vec<UseSite>> = vec![Vec::new(); defs.len()];
        let mut undefined_uses = Vec::new();
        for (b, block) in blocks.iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            let mut current = reach_in[b].clone();
            for pc in block.range() {
                // Uses read pre-write values: consume before applying defs.
                for (ui, u) in def_use[pc].uses.iter().enumerate() {
                    let Some(ri) = reg_index(u.reg) else { continue };
                    let mut any = false;
                    for id in current.iter() {
                        if reg_index(defs[id].def.reg) == Some(ri) {
                            use_masks[id] |= u.mask;
                            use_sites[id].push(UseSite { pc, use_index: ui });
                            any = true;
                        }
                    }
                    if !any {
                        undefined_uses.push(UndefinedUse { pc, reg: u.reg });
                    }
                }
                for &id in &def_ids_at[pc] {
                    let d = &defs[id];
                    if !d.def.guarded {
                        if let Some(ri) = reg_index(d.def.reg) {
                            let stale: Vec<usize> = current
                                .iter()
                                .filter(|&other| reg_index(defs[other].def.reg) == Some(ri))
                                .collect();
                            for other in stale {
                                current.remove(other);
                            }
                        }
                    }
                    current.insert(id);
                }
            }
        }

        // --- Liveness (backward, register granularity) ---
        let mut use_b: Vec<BitSet> = Vec::with_capacity(nb);
        let mut def_b: Vec<BitSet> = Vec::with_capacity(nb);
        for block in blocks {
            let mut uses = BitSet::new(TRACKED_REGS);
            let mut kills = BitSet::new(TRACKED_REGS);
            for pc in block.range() {
                for u in &def_use[pc].uses {
                    if let Some(ri) = reg_index(u.reg) {
                        if !kills.contains(ri) {
                            uses.insert(ri);
                        }
                    }
                }
                for d in &def_use[pc].defs {
                    if d.guarded {
                        continue;
                    }
                    if let Some(ri) = reg_index(d.reg) {
                        kills.insert(ri);
                    }
                }
            }
            use_b.push(uses);
            def_b.push(kills);
        }
        let mut live_in: Vec<BitSet> = vec![BitSet::new(TRACKED_REGS); nb];
        let mut live_out: Vec<BitSet> = vec![BitSet::new(TRACKED_REGS); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut out = BitSet::new(TRACKED_REGS);
                for &s in &blocks[b].successors {
                    out.union_with(&live_in[s]);
                }
                let mut inb = out.clone();
                for k in def_b[b].iter() {
                    inb.remove(k);
                }
                inb.union_with(&use_b[b]);
                if out != live_out[b] || inb != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inb;
                    changed = true;
                }
            }
        }

        DataflowResult {
            def_use,
            defs,
            use_masks,
            use_sites,
            undefined_uses,
            reachable,
            live_in,
            live_out,
        }
    }

    /// Blocks reachable from the CFG entry.
    #[must_use]
    pub fn reachable_blocks(&self) -> Vec<bool> {
        let blocks = self.cfg.blocks();
        let mut reachable = vec![false; blocks.len()];
        if blocks.is_empty() {
            return reachable;
        }
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &blocks[b].successors {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }
        reachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.remove(0);
        assert!(!s.contains(0));
        let mut t = BitSet::new(130);
        t.insert(5);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn guard_reads_only_tested_flags() {
        let p = assemble("t", "@$p0.ne bra done\nadd.u32 $r1, $r1, 0x1\ndone:\nexit").unwrap();
        let du = def_use(p.instr(0));
        assert_eq!(du.uses.len(), 1);
        assert_eq!(du.uses[0].reg, Register::Pred(0));
        assert_eq!(du.uses[0].mask, 0b0001, "ne tests the zero flag only");
        assert!(du.defs.is_empty(), "bra writes nothing");
    }

    #[test]
    fn and_with_imm_narrows_read_mask() {
        let p = assemble("t", "and.u32 $r1, $r2, 0xFF\nexit").unwrap();
        let du = def_use(p.instr(0));
        let r2 = du.uses.iter().find(|u| u.reg == Register::Gpr(2)).unwrap();
        assert_eq!(r2.mask, 0xFF);
    }

    #[test]
    fn or_with_imm_excludes_forced_bits() {
        let p = assemble("t", "or.u32 $r1, $r2, 0xF0\nexit").unwrap();
        let du = def_use(p.instr(0));
        let r2 = du.uses.iter().find(|u| u.reg == Register::Gpr(2)).unwrap();
        assert_eq!(r2.mask, !0xF0);
    }

    #[test]
    fn half_selection_composes_with_cvt_narrowing() {
        let p = assemble("t", "cvt.u32.u16 $r1, $r2.hi\nexit").unwrap();
        let du = def_use(p.instr(0));
        let r2 = du.uses.iter().find(|u| u.reg == Register::Gpr(2)).unwrap();
        assert_eq!(r2.mask, 0xFFFF_0000, "hi half then 16-bit convert");
    }

    #[test]
    fn shifts_by_immediates_window_the_source() {
        let p = assemble("t", "shl.u32 $r1, $r2, 0x4\nshr.u32 $r3, $r4, 0x8\nexit").unwrap();
        let shl = def_use(p.instr(0));
        assert_eq!(shl.uses[0].mask, u32::MAX >> 4);
        let shr = def_use(p.instr(1));
        assert_eq!(shr.uses[0].mask, u32::MAX << 8);
    }

    #[test]
    fn signed_shr_keeps_the_sign_bit() {
        let p = assemble("t", "shr.s32 $r1, $r2, 0x8\nexit").unwrap();
        let du = def_use(p.instr(0));
        assert_eq!(du.uses[0].mask, (u32::MAX << 8) | 0x8000_0000);
    }

    #[test]
    fn wide_multiply_reads_low_halves() {
        let p = assemble("t", "mul.wide.u16 $r1, $r2, $r3\nexit").unwrap();
        let du = def_use(p.instr(0));
        for u in &du.uses {
            assert_eq!(u.mask, 0xFFFF, "{:?}", u.reg);
        }
    }

    #[test]
    fn memory_base_reads_full_register() {
        let p = assemble("t", "ld.global.u32 $r1, [$r2]\nexit").unwrap();
        let du = def_use(p.instr(0));
        let r2 = du.uses.iter().find(|u| u.reg == Register::Gpr(2)).unwrap();
        assert_eq!(r2.mask, u32::MAX);
    }

    #[test]
    fn store_destination_base_is_a_use() {
        let p = assemble("t", "st.global.u32 [$r2], $r3\nexit").unwrap();
        let du = def_use(p.instr(0));
        assert!(du
            .uses
            .iter()
            .any(|u| u.reg == Register::Gpr(2) && u.mask == u32::MAX));
        assert!(du.uses.iter().any(|u| u.reg == Register::Gpr(3)));
        assert!(du.defs.is_empty());
    }

    #[test]
    fn mov_to_shared_reads_offset_base() {
        let p = assemble("t", "mov.u32 s[$ofs3+0x0040], $r2\nexit").unwrap();
        let du = def_use(p.instr(0));
        assert!(du
            .uses
            .iter()
            .any(|u| u.reg == Register::Ofs(3) && u.mask == u32::MAX));
        assert!(du.defs.is_empty(), "memory destination defines no register");
    }

    #[test]
    fn dead_def_has_zero_use_mask() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let df = ProgramDataflow::new(&p).run();
        // First def of $r1 is overwritten before any use.
        assert_eq!(df.defs.len(), 2);
        assert_eq!(df.use_masks[0], 0, "dead store");
        assert_eq!(df.use_masks[1], u32::MAX, "consumed by the store");
    }

    #[test]
    fn guarded_def_does_not_kill() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x1
            @$p0.eq mov.u32 $r1, 0x2
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let df = ProgramDataflow::new(&p).run();
        // Both defs can reach the store.
        assert_eq!(df.use_masks[0], u32::MAX);
        assert_eq!(df.use_masks[1], u32::MAX);
    }

    #[test]
    fn defs_reach_across_loop_back_edges() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0xA
            @$p0.ne bra loop
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let df = ProgramDataflow::new(&p).run();
        // The add's def flows around the loop into its own source.
        let add_def = df.defs.iter().position(|d| d.pc == 1).unwrap();
        assert_ne!(df.use_masks[add_def], 0);
        assert!(df.undefined_uses.is_empty());
    }

    #[test]
    fn undefined_use_detected() {
        let p = assemble(
            "t",
            "add.u32 $r1, $r2, 0x1\nst.global.u32 [$r124], $r1\nexit",
        )
        .unwrap();
        let df = ProgramDataflow::new(&p).run();
        assert_eq!(df.undefined_uses.len(), 1);
        assert_eq!(df.undefined_uses[0].reg, Register::Gpr(2));
        assert_eq!(df.undefined_uses[0].pc, 0);
    }

    #[test]
    fn liveness_at_block_boundaries() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x7
            set.eq.u32.u32 $p0/$o127, $r2, 0x0
            @$p0.eq bra skip
            st.global.u32 [$r124], $r1
            skip:
            exit
            "#,
        )
        .unwrap();
        let df = ProgramDataflow::new(&p).run();
        let r1 = reg_index(Register::Gpr(1)).unwrap();
        // $r1 is live out of the entry block (the store arm reads it)...
        assert!(df.live_out[0].contains(r1));
        // ...but dead at the exit block.
        let exit_block = p.cfg().block_of(p.len() - 1);
        assert!(!df.live_in[exit_block].contains(r1));
    }

    #[test]
    fn zero_register_is_untracked() {
        assert_eq!(reg_index(Register::Gpr(124)), None);
        assert_eq!(reg_index(Register::Discard), None);
        assert!(reg_index(Register::Gpr(0)).is_some());
        assert!(reg_index(Register::Pred(7)).is_some());
        assert!(reg_index(Register::Ofs(3)).is_some());
    }
}
