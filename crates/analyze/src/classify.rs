//! Static fault-site outcome pre-classification on top of [`crate::absint`].
//!
//! Two verdicts, both validated dynamically by the absint oracle test:
//!
//! - **Predicted DUE**: a destination bit whose flip provably drives an
//!   out-of-bounds / misaligned access (→ `CRASH`) or an always-taken trap
//!   guard (→ `Detected`). The injector skips these sites and the pipeline
//!   records their weight under the predicted outcome.
//! - **Equivalence classes**: remaining provably-zero address bits of one
//!   definition whose flip faults at *every* reachable use. All members of
//!   a class share their outcome per dynamic instance (the first executed
//!   use crashes, or no use executes and the flip is masked), so injecting
//!   one representative and multiplying its weight by the class size is
//!   exact — the same contract the dynamic pruning stages rely on.
//!
//! # Soundness argument (summarised in DESIGN.md §11)
//!
//! Injection targets retirements, so the flipped definition always
//! committed. Until the first dynamic use of the flipped register
//! executes, every other register, memory word and guard behaves exactly
//! as in the golden run (nothing else read the register, and guards read
//! predicates, not GPRs). A provably-faulting use therefore terminates the
//! launch with a `SimFault` the campaign maps to `CRASH`; a trap guard
//! that provably flips from failing to passing raises `DetectedExit`.
//! The crash prediction additionally requires the use to sit in the same
//! basic block as the definition with no intervening mention and no guard
//! on the use, so the use executes whenever the definition retires.

use fsp_isa::{KernelProgram, Opcode, PredTest, Register};
use serde::{Deserialize, Serialize};

use crate::absint::{AbsContext, AbsVal, AbsintReport, PredSet};
use crate::ace::StaticAceReport;
use crate::dataflow::{ProgramDataflow, UseKind};

/// Version stamp of the abstract-interpretation + classification
/// semantics. Folded into `fsp-serve` outcome-store keys so cached
/// outcomes from an older classifier miss instead of being served; bump on
/// any semantic change to `absint`/`classify`.
#[must_use]
pub fn absint_version() -> u64 {
    0x6162_7369_6E74_0001 // "absint" | revision 1
}

/// Which DUE class a predicted site falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictedKind {
    /// The flipped bit provably faults an address → `Outcome::Crash`.
    Crash,
    /// The flipped bit provably takes a trap guard → `Outcome::Detected`.
    Detected,
}

/// Static verdicts for one write-back slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotClassify {
    /// Write-back slot (index into `Instruction::dst`).
    pub slot: u8,
    /// Register written.
    pub reg: Register,
    /// Injectable bit width of the slot.
    pub width: u32,
    /// Bits predicted to crash (flip provably drives an OOB or misaligned
    /// access).
    pub crash_mask: u32,
    /// Bits predicted detected (flip provably takes a trap guard).
    pub detected_mask: u32,
    /// Equivalence-class member bits *excluding* the representative; the
    /// pruner drops them and re-weights the representative.
    pub class_mask: u32,
    /// The class representative bit, when the slot carries a class.
    pub class_rep: Option<u32>,
}

impl SlotClassify {
    /// All predicted-DUE bits of the slot.
    #[must_use]
    pub fn predicted_mask(&self) -> u32 {
        self.crash_mask | self.detected_mask
    }

    /// Class size including the representative (0 when no class).
    #[must_use]
    pub fn class_size(&self) -> u32 {
        if self.class_rep.is_some() {
            self.class_mask.count_ones() + 1
        } else {
            0
        }
    }
}

/// One equivalence class in the flat destination-bit space of a pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatClass {
    /// Write-back slot the class lives in.
    pub slot: u8,
    /// Representative flat bit (injected, carries the class weight).
    pub rep: u32,
    /// Member flat bits excluding the representative (pruned).
    pub members: Vec<u32>,
}

/// Whole-program static classification report.
#[derive(Debug, Clone)]
pub struct ClassifyReport {
    /// Per-pc slot verdicts, in write-back order (aligned with
    /// [`StaticAceReport::slots`]).
    per_pc: Vec<Vec<SlotClassify>>,
}

impl ClassifyReport {
    /// Analyzes `program` under launch context `ctx`.
    ///
    /// ACE-dead bits (Stage 0) are always excluded from predictions and
    /// classes, whether or not the pipeline runs Stage 0 — the verdict
    /// spaces stay disjoint.
    #[must_use]
    pub fn analyze(program: &KernelProgram, ctx: &AbsContext) -> Self {
        let pd = ProgramDataflow::new(program);
        let df = pd.run();
        let cfg = pd.cfg();
        let ace = StaticAceReport::analyze(program);
        let abs = AbsintReport::analyze(program, ctx);

        let mut per_pc: Vec<Vec<SlotClassify>> = vec![Vec::new(); program.len()];
        for (id, site) in df.defs.iter().enumerate() {
            let width = site.def.width;
            if width == 0 {
                continue;
            }
            let pc = site.pc;
            let reg = site.def.reg;
            let width_mask = if width >= 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let dead = ace
                .slots(pc)
                .iter()
                .find(|s| s.slot == site.def.slot)
                .map_or(0, |s| s.dead_mask);
            let mut out = SlotClassify {
                slot: site.def.slot,
                reg,
                width,
                crash_mask: 0,
                detected_mask: 0,
                class_mask: 0,
                class_rep: None,
            };

            let slot_abs = abs
                .reached(pc)
                .then(|| abs.slots(pc).iter().find(|s| s.slot == site.def.slot))
                .flatten();
            if let Some(sa) = slot_abs {
                // First in-block mention of the register after the def:
                // stop at any read (candidate use) or any redefinition.
                let block = cfg.block_of(pc);
                let mut first_use = None;
                for pc2 in cfg.blocks()[block].range() {
                    if pc2 <= pc {
                        continue;
                    }
                    if df.def_use[pc2].uses.iter().any(|u| u.reg == reg) {
                        first_use = Some(pc2);
                        break;
                    }
                    if df.def_use[pc2].defs.iter().any(|d| d.reg == reg) {
                        break;
                    }
                }

                match reg {
                    Register::Gpr(_) | Register::Ofs(_) => {
                        if let Some(upc) = first_use {
                            if program.instr(upc).guard.is_none() {
                                for k in 0..width.min(32) {
                                    let bit = 1u32 << k;
                                    if dead & bit != 0 {
                                        continue;
                                    }
                                    let faults = df.def_use[upc].uses.iter().any(|u| {
                                        u.reg == reg
                                            && matches!(
                                                u.kind,
                                                UseKind::MemBase { space, offset, .. }
                                                    if flip_provably_faults(
                                                        &sa.value, k, space, offset, ctx,
                                                    )
                                            )
                                    });
                                    if faults {
                                        out.crash_mask |= bit;
                                    }
                                }
                            }
                        }
                        classify_equivalence(&mut out, &sa.value, dead, width_mask, id, &df, ctx);
                    }
                    Register::Pred(p) => {
                        if let Some(upc) = first_use {
                            let ti = program.instr(upc);
                            if ti.opcode == Opcode::Trap {
                                if let Some(g) = &ti.guard {
                                    if g.pred == p {
                                        out.detected_mask =
                                            trap_detected_mask(sa.flags, g.test, dead, width_mask);
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            per_pc[pc].push(out);
        }
        ClassifyReport { per_pc }
    }

    /// Slot verdicts of instruction `pc`, in write-back order.
    #[must_use]
    pub fn slots(&self, pc: usize) -> &[SlotClassify] {
        &self.per_pc[pc]
    }

    /// Predicted-DUE bits of `pc` in the flat destination-bit space (the
    /// indexing `FaultSite::bit` uses), with their predicted outcome.
    #[must_use]
    pub fn predicted_flat_bits(&self, pc: usize) -> Vec<(u32, PredictedKind)> {
        let mut bits = Vec::new();
        let mut offset = 0u32;
        for slot in &self.per_pc[pc] {
            for b in 0..slot.width {
                if slot.crash_mask & (1 << b) != 0 {
                    bits.push((offset + b, PredictedKind::Crash));
                } else if slot.detected_mask & (1 << b) != 0 {
                    bits.push((offset + b, PredictedKind::Detected));
                }
            }
            offset += slot.width;
        }
        bits
    }

    /// Equivalence classes of `pc` in the flat destination-bit space.
    #[must_use]
    pub fn classes_flat(&self, pc: usize) -> Vec<FlatClass> {
        let mut classes = Vec::new();
        let mut offset = 0u32;
        for slot in &self.per_pc[pc] {
            if let Some(rep) = slot.class_rep {
                classes.push(FlatClass {
                    slot: slot.slot,
                    rep: offset + rep,
                    members: (0..slot.width)
                        .filter(|b| slot.class_mask & (1 << b) != 0)
                        .map(|b| offset + b)
                        .collect(),
                });
            }
            offset += slot.width;
        }
        classes
    }

    /// Number of predicted-crash bits at `pc`.
    #[must_use]
    pub fn crash_bits_at(&self, pc: usize) -> u32 {
        self.per_pc[pc]
            .iter()
            .map(|s| s.crash_mask.count_ones())
            .sum()
    }

    /// Number of predicted-detected bits at `pc`.
    #[must_use]
    pub fn detected_bits_at(&self, pc: usize) -> u32 {
        self.per_pc[pc]
            .iter()
            .map(|s| s.detected_mask.count_ones())
            .sum()
    }

    /// Number of class-member bits pruned at `pc` (members minus reps).
    #[must_use]
    pub fn class_pruned_bits_at(&self, pc: usize) -> u32 {
        self.per_pc[pc]
            .iter()
            .map(|s| s.class_mask.count_ones())
            .sum()
    }

    /// Summary over the whole program.
    #[must_use]
    pub fn summary(&self) -> ClassifySummary {
        let mut s = ClassifySummary::default();
        for slots in &self.per_pc {
            for slot in slots {
                s.total_bits += u64::from(slot.width);
                s.predicted_crash_bits += u64::from(slot.crash_mask.count_ones());
                s.predicted_detected_bits += u64::from(slot.detected_mask.count_ones());
                s.class_pruned_bits += u64::from(slot.class_mask.count_ones());
                if slot.class_rep.is_some() {
                    s.classes += 1;
                }
            }
        }
        s
    }
}

/// Program-level classification statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifySummary {
    /// Total static destination bits across register write-back slots.
    pub total_bits: u64,
    /// Bits predicted `CRASH` (skipped by injection).
    pub predicted_crash_bits: u64,
    /// Bits predicted `Detected` (skipped by injection).
    pub predicted_detected_bits: u64,
    /// Class-member bits folded into representatives (skipped).
    pub class_pruned_bits: u64,
    /// Number of equivalence classes.
    pub classes: usize,
}

impl ClassifySummary {
    /// All statically-skipped bits (predicted + class members).
    #[must_use]
    pub fn skipped_bits(&self) -> u64 {
        self.predicted_crash_bits + self.predicted_detected_bits + self.class_pruned_bits
    }

    /// Fraction of static destination bits skipped, in `[0, 1]`.
    #[must_use]
    pub fn skipped_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.skipped_bits() as f64 / self.total_bits as f64
        }
    }
}

/// Whether flipping bit `k` of a base register bounded by `v` provably
/// faults an access at `base + offset` into `space`.
fn flip_provably_faults(
    v: &AbsVal,
    k: u32,
    space: fsp_isa::MemSpace,
    offset: u32,
    ctx: &AbsContext,
) -> bool {
    let kz = v.known_zeros();
    // Misalignment: a word-aligned address with bit 0 or 1 flipped is
    // congruent to 2^k mod 4 — `MemBlock` rejects it. Wrapping cannot
    // restore alignment (2^32 is a multiple of 4).
    if k <= 1 && kz & 0b11 == 0b11 && offset.is_multiple_of(4) {
        return true;
    }
    // Out of bounds high: bit k is provably zero, so the flip adds 2^k;
    // if even the smallest flipped address lands past the space and the
    // largest does not wrap, every instance faults.
    if kz & (1u32 << k) != 0 {
        let limit = u64::from(4 * ctx.space_bytes(space).div_ceil(4));
        let add = 1u64 << k;
        let lo = u64::from(v.lo) + u64::from(offset) + add;
        let hi = u64::from(v.hi) + u64::from(offset) + add;
        if lo >= limit && hi <= u64::from(u32::MAX) {
            return true;
        }
    }
    false
}

/// `exec::guard_passes` over a 4-bit flag word.
fn guard_test(test: PredTest, f: u16) -> bool {
    let zero = f & 0b0001 != 0;
    let sign = f & 0b0010 != 0;
    match test {
        PredTest::Eq => zero,
        PredTest::Ne => !zero,
        PredTest::Lt => sign,
        PredTest::Ge => !sign,
        PredTest::Le => zero || sign,
        PredTest::Gt => !zero && !sign,
    }
}

/// Bits of a trap-guarding predicate whose flip provably passes the guard.
///
/// The golden run completed, so on every dynamic instance the guard
/// failed; bit `k` is predicted `Detected` when every abstractly-possible
/// failing flag word passes after the flip.
fn trap_detected_mask(flags: PredSet, test: PredTest, dead: u32, width_mask: u32) -> u32 {
    let mut mask = 0u32;
    for k in 0..4u32 {
        let bit = 1u32 << k;
        if width_mask & bit == 0 || dead & bit != 0 {
            continue;
        }
        let mut all_flip = true;
        let mut any_failing = false;
        for f in 0..16u16 {
            if flags & (1 << f) == 0 || guard_test(test, f) {
                continue;
            }
            any_failing = true;
            if !guard_test(test, f ^ (1 << k as u16)) {
                all_flip = false;
                break;
            }
        }
        if any_failing && all_flip {
            mask |= bit;
        }
    }
    mask
}

/// Folds qualifying provably-zero bits of one definition into an
/// equivalence class: a bit joins when *every* reachable use site of the
/// definition has at least one memory-base use that provably faults under
/// the flip. All members then share their outcome per dynamic instance
/// (first executed use crashes; no executed use is masked), so one
/// representative carries the class weight exactly.
fn classify_equivalence(
    out: &mut SlotClassify,
    v: &AbsVal,
    dead: u32,
    width_mask: u32,
    def_id: usize,
    df: &crate::dataflow::DataflowResult,
    ctx: &AbsContext,
) {
    let sites = &df.use_sites[def_id];
    if sites.is_empty() {
        return;
    }
    let use_pcs: std::collections::BTreeSet<usize> = sites.iter().map(|s| s.pc).collect();
    let candidates = v.known_zeros() & width_mask & !dead & !out.predicted_mask();
    let mut class = 0u32;
    for k in 0..32u32 {
        let bit = 1u32 << k;
        if candidates & bit == 0 {
            continue;
        }
        let all_fault = use_pcs.iter().all(|&upc| {
            df.def_use[upc].uses.iter().any(|u| {
                u.reg == out.reg
                    && matches!(
                        u.kind,
                        UseKind::MemBase { space, offset, .. }
                            if flip_provably_faults(v, k, space, offset, ctx)
                    )
            })
        });
        if all_fault {
            class |= bit;
        }
    }
    // A single qualifying bit is just itself — a class needs ≥ 2 members
    // to prune anything.
    if class.count_ones() >= 2 {
        let rep = class.trailing_zeros();
        out.class_rep = Some(rep);
        out.class_mask = class & !(1u32 << rep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    fn ctx(global_bytes: u32) -> AbsContext {
        AbsContext {
            block: (8, 1, 1),
            grid: (1, 1),
            params: Vec::new(),
            shared_bytes: 1024,
            global_bytes,
            local_bytes: 4096,
        }
    }

    #[test]
    fn high_address_bits_predict_crash() {
        // 8 threads, word-indexed into a 64-byte global buffer: the base
        // register is bounded by [0, 28] and word-aligned. Flipping any
        // provably-zero high bit lands past the 64-byte space.
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            ld.global.u32 $r3, [$r2]
            add.u32 $r3, $r3, 0x1
            st.global.u32 [$r2], $r3
            exit
            "#,
        )
        .unwrap();
        let r = ClassifyReport::analyze(&p, &ctx(64));
        // $r2's def at pc 1; first use at pc 2 (ld base).
        let slot = &r.slots(1)[0];
        // Bit 6 (+64) and above are provably zero and overshoot the space.
        assert_ne!(slot.crash_mask & (1 << 6), 0, "{:032b}", slot.crash_mask);
        assert_ne!(slot.crash_mask & (1 << 20), 0);
        // Bits 0/1 misalign the access.
        assert_ne!(slot.crash_mask & 0b11, 0b00);
        // In-bounds bits (2..5 cover [4,32)) are not predicted.
        assert_eq!(slot.crash_mask & (1 << 2), 0);
        assert!(!r.predicted_flat_bits(1).is_empty());
    }

    #[test]
    fn guarded_use_is_not_predicted() {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            set.eq.u32.u32 $p0/$o127, $r1, 0x0
            @$p0.eq ld.global.u32 $r3, [$r2]
            st.global.u32 [$r124], $r3
            exit
            "#,
        )
        .unwrap();
        let r = ClassifyReport::analyze(&p, &ctx(64));
        // The first mention of $r2 after its def is the guarded load —
        // no crash prediction (the guard may skip the use), but the class
        // machinery may still fold bits (every use faults when executed).
        assert_eq!(r.slots(1)[0].crash_mask, 0);
    }

    #[test]
    fn always_taken_trap_guard_predicts_detected() {
        // set.eq against an impossible value: the compare is always false,
        // so the flag word has zero SET (flags_of(0)) and the `.ne` guard
        // always fails golden; flipping the zero flag takes the trap.
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            set.eq.u32.u32 $p0/$o127, $r1, 0x100
            @$p0.ne trap
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let r = ClassifyReport::analyze(&p, &ctx(64));
        let slot = r
            .slots(1)
            .iter()
            .find(|s| matches!(s.reg, Register::Pred(0)))
            .expect("pred slot");
        // tid < 8 ≠ 0x100, so `set` writes 0 and the zero flag is set;
        // flipping bit 0 clears it and the ne guard passes.
        assert_ne!(slot.detected_mask & 0b1, 0, "{:04b}", slot.detected_mask);
        // Flipping the sign flag never makes eq pass.
        assert_eq!(slot.detected_mask & 0b10, 0);
    }

    #[test]
    fn equivalence_class_covers_oob_bits_at_every_use() {
        // The base is used by two unguarded accesses in different blocks;
        // provably-zero high bits fault at both → one class.
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            ld.global.u32 $r3, [$r2]
            set.eq.u32.u32 $p0/$o127, $r3, 0x0
            @$p0.eq bra skip
            st.global.u32 [$r2], $r3
            skip:
            exit
            "#,
        )
        .unwrap();
        let r = ClassifyReport::analyze(&p, &ctx(64));
        let slot = &r.slots(1)[0];
        // Crash-predicted bits (first use, same block) take priority; the
        // class absorbs nothing extra here because every qualifying bit
        // already faults at the first use.
        assert!(slot.crash_mask != 0);
        assert_eq!(slot.class_mask & slot.crash_mask, 0, "verdicts disjoint");
    }

    #[test]
    fn class_forms_when_first_use_is_guarded() {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            set.eq.u32.u32 $p0/$o127, $r1, 0x0
            @$p0.eq ld.global.u32 $r3, [$r2]
            @$p0.eq st.global.u32 [$r2], $r3
            exit
            "#,
        )
        .unwrap();
        let r = ClassifyReport::analyze(&p, &ctx(64));
        let slot = &r.slots(1)[0];
        assert_eq!(slot.crash_mask, 0, "guarded first use blocks prediction");
        assert!(
            slot.class_rep.is_some(),
            "every use faults when executed → class"
        );
        assert!(slot.class_size() >= 2);
        let classes = r.classes_flat(1);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members.len() as u32 + 1, slot.class_size());
    }

    #[test]
    fn summary_accounts_all_verdicts() {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            ld.global.u32 $r3, [$r2]
            st.global.u32 [$r2], $r3
            exit
            "#,
        )
        .unwrap();
        let r = ClassifyReport::analyze(&p, &ctx(64));
        let s = r.summary();
        assert!(s.predicted_crash_bits > 0);
        assert!(s.total_bits > 0);
        assert!(s.skipped_fraction() > 0.0 && s.skipped_fraction() <= 1.0);
        assert_eq!(
            s.skipped_bits(),
            s.predicted_crash_bits + s.predicted_detected_bits + s.class_pruned_bits
        );
    }

    #[test]
    fn version_is_stable() {
        assert_eq!(absint_version(), absint_version());
        assert_ne!(absint_version(), 0);
    }
}
