//! Static ACE pruning (Stage 0 of the progressive pipeline).
//!
//! The dynamic stages of the paper prune fault *sites* by exploiting
//! similarity between threads, instructions, and loop iterations. This pass
//! removes sites before any dynamic information exists: a destination bit
//! whose value provably cannot reach kernel output is un-ACE
//! (architecturally *not* correct-execution-required), and flipping it is
//! guaranteed `Masked`.
//!
//! A bit `b` of a register definition is statically un-ACE when no use the
//! definition can reach reads bit `b` — per the bit-precise read masks of
//! [`crate::dataflow`] (guards test only the zero/sign flags, `and`/`cvt`
//! narrowing discards high bits, register state is dead at thread exit
//! because kernel output lives in memory). The claim is validated
//! dynamically by the cross-validation oracle in the integration tests:
//! every statically-masked site must classify as `Masked` under real
//! injection.

use fsp_isa::{KernelProgram, Register};

use crate::dataflow::ProgramDataflow;

/// Static classification of one instruction's destination-register bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AceClass {
    /// Every destination bit may be architecturally required.
    Ace,
    /// Some destination bits are provably dead (e.g. high bits discarded by
    /// an `and` mask or a narrowing `cvt`).
    PartiallyUnAce,
    /// Every destination bit is provably dead — the write never influences
    /// kernel output.
    UnAce,
}

/// Per-slot bit verdict for one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotAce {
    /// Write-back slot (index into `Instruction::dst`).
    pub slot: u8,
    /// The register written.
    pub reg: Register,
    /// Injectable bit width of the slot.
    pub width: u32,
    /// Bits (slot-relative, within `0..width`) that are statically un-ACE.
    pub dead_mask: u32,
}

impl SlotAce {
    /// Number of statically un-ACE bits in this slot.
    #[must_use]
    pub fn dead_bits(&self) -> u32 {
        self.dead_mask.count_ones()
    }
}

/// Whole-program static ACE report.
#[derive(Debug, Clone)]
pub struct StaticAceReport {
    /// Per-pc slot verdicts, in write-back order (non-discard register
    /// destinations only — the same order the injection hook indexes).
    per_pc: Vec<Vec<SlotAce>>,
}

impl StaticAceReport {
    /// Analyzes `program`.
    #[must_use]
    pub fn analyze(program: &KernelProgram) -> Self {
        let df = ProgramDataflow::new(program).run();
        let mut per_pc: Vec<Vec<SlotAce>> = vec![Vec::new(); program.len()];
        for (id, site) in df.defs.iter().enumerate() {
            let width = site.def.width;
            if width == 0 {
                continue;
            }
            let width_mask = if width >= 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let dead_mask = width_mask & !df.use_masks[id];
            per_pc[site.pc].push(SlotAce {
                slot: site.def.slot,
                reg: site.def.reg,
                width,
                dead_mask,
            });
        }
        StaticAceReport { per_pc }
    }

    /// Slot verdicts of instruction `pc`, in write-back order.
    #[must_use]
    pub fn slots(&self, pc: usize) -> &[SlotAce] {
        &self.per_pc[pc]
    }

    /// Per-slot dead masks of `pc`, aligned with the instruction's
    /// non-discard register destinations (what `BitSampler` consumes).
    #[must_use]
    pub fn slot_dead_masks(&self, pc: usize) -> Vec<u32> {
        self.per_pc[pc].iter().map(|s| s.dead_mask).collect()
    }

    /// Statically un-ACE bit positions of `pc` in the instruction's *flat*
    /// bit index space — the indexing `FaultSite::bit` uses: destination
    /// bits of all write-back slots concatenated in order.
    #[must_use]
    pub fn dead_flat_bits(&self, pc: usize) -> Vec<u32> {
        let mut bits = Vec::new();
        let mut offset = 0u32;
        for slot in &self.per_pc[pc] {
            for b in 0..slot.width {
                if slot.dead_mask & (1 << b) != 0 {
                    bits.push(offset + b);
                }
            }
            offset += slot.width;
        }
        bits
    }

    /// Number of statically un-ACE bits at `pc`.
    #[must_use]
    pub fn dead_bits_at(&self, pc: usize) -> u32 {
        self.per_pc[pc].iter().map(SlotAce::dead_bits).sum()
    }

    /// Total destination bits at `pc` (the per-retirement site count).
    #[must_use]
    pub fn dest_bits_at(&self, pc: usize) -> u32 {
        self.per_pc[pc].iter().map(|s| s.width).sum()
    }

    /// Classification of instruction `pc`, or `None` when it has no
    /// register destination (no fault sites to classify).
    #[must_use]
    pub fn classify(&self, pc: usize) -> Option<AceClass> {
        let total = self.dest_bits_at(pc);
        if total == 0 {
            return None;
        }
        Some(match self.dead_bits_at(pc) {
            0 => AceClass::Ace,
            d if d == total => AceClass::UnAce,
            _ => AceClass::PartiallyUnAce,
        })
    }

    /// Summary over the whole program.
    #[must_use]
    pub fn summary(&self) -> AceSummary {
        let mut s = AceSummary::default();
        for pc in 0..self.per_pc.len() {
            match self.classify(pc) {
                None => continue,
                Some(AceClass::Ace) => s.ace_instructions += 1,
                Some(AceClass::PartiallyUnAce) => s.partial_instructions += 1,
                Some(AceClass::UnAce) => s.unace_instructions += 1,
            }
            s.total_bits += u64::from(self.dest_bits_at(pc));
            s.dead_bits += u64::from(self.dead_bits_at(pc));
        }
        s
    }
}

/// Program-level static ACE statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AceSummary {
    /// Instructions whose destination bits are all potentially ACE.
    pub ace_instructions: usize,
    /// Instructions with some statically dead destination bits.
    pub partial_instructions: usize,
    /// Instructions whose destination bits are all statically dead.
    pub unace_instructions: usize,
    /// Total static destination bits (per retirement).
    pub total_bits: u64,
    /// Statically un-ACE destination bits (per retirement).
    pub dead_bits: u64,
}

impl AceSummary {
    /// Fraction of static destination bits pruned, in `[0, 1]`.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.dead_bits as f64 / self.total_bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    #[test]
    fn dead_write_is_unace() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x1
            mov.u32 $r1, 0x2
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        assert_eq!(r.classify(0), Some(AceClass::UnAce));
        assert_eq!(r.classify(1), Some(AceClass::Ace));
        assert_eq!(r.classify(2), None, "stores have no register destination");
        assert_eq!(r.dead_flat_bits(0).len(), 32);
    }

    #[test]
    fn and_narrowing_is_partially_unace() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0xFFFF
            and.u32 $r2, $r1, 0xFF
            st.global.u32 [$r124], $r2
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        // $r1's bits above the 0xFF mask never reach the store.
        assert_eq!(r.classify(0), Some(AceClass::PartiallyUnAce));
        assert_eq!(r.slots(0)[0].dead_mask, !0xFFu32);
        assert_eq!(r.dead_bits_at(0), 24);
        assert_eq!(r.classify(1), Some(AceClass::Ace));
    }

    #[test]
    fn cvt_narrowing_prunes_high_bits() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x12345
            cvt.u32.u16 $r2, $r1
            st.global.u32 [$r124], $r2
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        assert_eq!(r.slots(0)[0].dead_mask, 0xFFFF_0000);
        assert_eq!(r.classify(0), Some(AceClass::PartiallyUnAce));
    }

    #[test]
    fn guard_only_predicate_keeps_zero_and_sign_flags() {
        let p = assemble(
            "t",
            r#"
            set.lt.s32.s32 $p0/$o127, $r1, 0xA
            @$p0.lt bra skip
            st.global.u32 [$r124], $r1
            skip:
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        // Guards read only zero/sign; `lt` reads only sign (bit 1), so
        // zero (bit 0), carry (bit 2) and overflow (bit 3) are dead.
        let slot = &r.slots(0)[0];
        assert_eq!(slot.width, 4);
        assert_eq!(slot.dead_mask, 0b1101);
        assert_eq!(r.classify(0), Some(AceClass::PartiallyUnAce));
        assert_eq!(r.dead_flat_bits(0), vec![0, 2, 3]);
    }

    #[test]
    fn dual_destination_flat_bits_offset_by_pred_width() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$r1, $r2, 0x0
            @$p0.eq bra skip
            st.global.u32 [$r124], $r2
            skip:
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        // $r1 (the boolean result) is never read: its 32 bits are dead and
        // sit at flat offsets 4..36, after the predicate's 4 bits. The
        // predicate keeps only the zero flag (eq test).
        let dead = r.dead_flat_bits(0);
        assert!(dead.contains(&1) && dead.contains(&2) && dead.contains(&3));
        assert!(!dead.contains(&0), "zero flag feeds the guard");
        assert_eq!(dead.len(), 3 + 32);
        assert!((4..36).all(|b| dead.contains(&b)));
    }

    #[test]
    fn value_feeding_output_is_fully_ace() {
        let p = assemble(
            "t",
            r#"
            ld.global.u32 $r1, [$r124]
            add.u32 $r1, $r1, 0x1
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        assert_eq!(r.classify(0), Some(AceClass::Ace));
        assert_eq!(r.classify(1), Some(AceClass::Ace));
        let s = r.summary();
        assert_eq!(s.dead_bits, 0);
        assert_eq!(s.total_bits, 64);
        assert!((s.pruned_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn address_registers_are_fully_ace() {
        // A register used as a store address must keep all 32 bits even
        // though the stored value is narrow.
        let p = assemble(
            "t",
            r#"
            shl.u32 $r2, $r1, 0x2
            st.global.u32 [$r2], $r124
            exit
            "#,
        )
        .unwrap();
        let r = StaticAceReport::analyze(&p);
        assert_eq!(r.classify(0), Some(AceClass::Ace));
    }
}
