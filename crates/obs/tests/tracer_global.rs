//! Tracer-core invariants against the *global* tracer: span nesting,
//! orphan-close accounting and snapshot assembly.
//!
//! The gate, ring and misnesting counter are process-global, so this file
//! keeps everything in one `#[test]` (integration tests in other files
//! run in their own processes and are unaffected).

use fsp_obs::{
    check_nesting, chrome_trace_json, drain, inject_foreign, instant, profile, set_tracing,
    snapshot, span, span_labeled, Event,
};

#[test]
fn global_tracer_end_to_end() {
    // Disabled: guards are inert and nothing is recorded.
    {
        let _idle = span("disabled.span");
    }
    assert!(
        !snapshot().events.iter().any(|e| e.name == "disabled.span"),
        "disabled tracer must not record"
    );

    set_tracing(true);

    // Strictly nested spans on this thread, plus concurrent threads each
    // with their own stack.
    {
        let _outer = span_labeled("t.outer", "gemm");
        {
            let _mid = span("t.mid");
            let _inner = span("t.inner");
        }
        instant("t.mark", None);
    }
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let _a = span("t.worker");
                let _b = span_labeled("t.worker.chunk", format!("chunk-{i}"));
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = snapshot();
    let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_ref()).collect();
    for expected in ["t.outer", "t.mid", "t.inner", "t.mark", "t.worker"] {
        assert!(names.contains(&expected), "missing event `{expected}`");
    }
    check_nesting(&snap.events).expect("per-thread intervals must strictly nest");

    // Depths follow the stack: outer=0, mid=1, inner=2, and each event's
    // interval is contained in its parent's.
    let get = |name: &str| {
        snap.events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no `{name}`"))
    };
    let (outer, mid, inner) = (get("t.outer"), get("t.mid"), get("t.inner"));
    assert_eq!((outer.depth, mid.depth, inner.depth), (0, 1, 2));
    assert_eq!(outer.label.as_deref(), Some("gemm"));
    assert_eq!(outer.tid, mid.tid);
    assert!(outer.start_ns <= mid.start_ns);
    assert!(mid.start_ns + mid.dur_ns <= outer.start_ns + outer.dur_ns);
    assert!(inner.start_ns >= mid.start_ns);

    // The four worker threads traced on distinct lanes with names.
    let worker_tids: std::collections::BTreeSet<u32> = snap
        .events
        .iter()
        .filter(|e| e.name == "t.worker")
        .map(|e| e.tid)
        .collect();
    assert_eq!(worker_tids.len(), 4, "one lane per thread");
    assert!(snap.threads.len() >= 5, "threads register names");

    // No orphan closes so far.
    assert_eq!(snap.misnested, 0);

    // Foreign injection lands on its own process lane and survives into
    // the Chrome export alongside local events.
    inject_foreign(
        "worker-a",
        [Event {
            process: None,
            tid: 1,
            name: "t.remote".into(),
            label: Some("lease-1".into()),
            start_ns: outer.start_ns,
            dur_ns: 10,
            depth: 0,
            instant: false,
        }],
    );
    let snap = snapshot();
    let remote = get_event(&snap.events, "t.remote");
    assert_eq!(remote.process.as_deref(), Some("worker-a"));
    let json = chrome_trace_json(&snap, "local");
    assert!(json.contains("\"name\":\"worker-a\""));
    assert!(json.contains("\"name\":\"t.remote\""));

    // Profile aggregates the four worker spans into one row.
    let rows = profile(&snap.events);
    let worker_row = rows.iter().find(|r| r.name == "t.worker").unwrap();
    assert_eq!(worker_row.count, 4);
    assert!(worker_row.total_ns >= worker_row.self_ns);

    // An orphan close: dropping the parent guard before the child is
    // counted, not fatal.
    let parent = span("t.orphan.parent");
    let child = span("t.orphan.child");
    drop(parent);
    drop(child);
    let snap = snapshot();
    assert!(snap.misnested > 0, "out-of-order close must be counted");

    // Draining empties the ring; subsequent snapshots start fresh.
    let drained = drain();
    assert!(!drained.events.is_empty());
    assert!(snapshot().events.is_empty());

    set_tracing(false);
    {
        let _off = span("t.after.disable");
    }
    assert!(snapshot().events.is_empty(), "gate off stops recording");
}

fn get_event<'a>(events: &'a [Event], name: &str) -> &'a Event {
    events
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("no `{name}`"))
}
