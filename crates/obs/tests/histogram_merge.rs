//! Property test: merging shard histograms is exactly equivalent to
//! recording the concatenated stream into a single histogram.

use fsp_obs::Histogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn merge_of_shards_equals_single_stream(
        values in proptest::collection::vec(any::<u64>(), 0..256),
        shards in 1usize..8,
    ) {
        // Record the stream round-robin into `shards` histograms, then
        // fold them into one.
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let merged = Histogram::default();
        for part in &parts {
            merged.merge_from(part);
        }

        // The same stream into one histogram.
        let single = Histogram::default();
        for &v in &values {
            single.record(v);
        }

        prop_assert_eq!(merged.snapshot(), single.snapshot());
    }
}
