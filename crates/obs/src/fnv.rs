//! The workspace's one FNV-1a 64-bit hasher.
//!
//! Everything content-addressed in the workspace — kernel fingerprints,
//! launch hashes, outcome-store records, wire-frame checksums, worker
//! backoff seeds — hashes through this type. It used to be copied into
//! each layer (the dependency graph put `fsp-workloads` above
//! `fsp-inject`, so the lower layers rolled their own); `fsp-obs` sits at
//! the very bottom of the graph, so every crate can share the single
//! implementation. The published reference vectors are asserted where the
//! hasher is most load-bearing, in `fsp-workloads`' fingerprint tests.

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a 64-bit hasher (std's `DefaultHasher` makes no
/// stability promise across releases, so the store rolls its own).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The 64-bit digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}
