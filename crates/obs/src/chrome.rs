//! Trace-consumer surfaces: Chrome trace-event JSON (loadable in
//! `chrome://tracing` and Perfetto), a human-readable profile table, and
//! the nesting validator the test suites assert with.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::tracer::{Event, TraceSnapshot};

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with nanosecond precision, as Chrome wants it.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders a snapshot as Chrome trace-event JSON.
///
/// The local process renders as pid 0 named `local_process`; each foreign
/// process (injected worker spans) gets its own pid named after it, so a
/// distributed run lands on one shared timeline with per-worker lanes.
/// Tracer health counters ride along in `otherData`.
#[must_use]
pub fn chrome_trace_json(snap: &TraceSnapshot, local_process: &str) -> String {
    // Stable pid assignment: local first, then foreign processes by name.
    let mut pids: BTreeMap<&str, u32> = BTreeMap::new();
    for event in &snap.events {
        if let Some(p) = &event.process {
            let next = u32::try_from(pids.len()).unwrap_or(u32::MAX) + 1;
            pids.entry(p.as_str()).or_insert(next);
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |obj: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&obj);
    };
    push(
        format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(local_process)
        ),
        &mut first,
    );
    for (process, pid) in &pids {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(process)
            ),
            &mut first,
        );
    }
    for (tid, name) in &snap.threads {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ),
            &mut first,
        );
    }
    for event in &snap.events {
        let pid = event
            .process
            .as_ref()
            .and_then(|p| pids.get(p.as_str()).copied())
            .unwrap_or(0);
        let label = event.label.as_ref().map_or_else(String::new, |label| {
            format!(",\"label\":\"{}\"", escape_json(label))
        });
        let obj = if event.instant {
            let args = if label.is_empty() {
                String::new()
            } else {
                format!(",\"args\":{{{}}}", &label[1..])
            };
            format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"cat\":\"fsp\",\
                 \"pid\":{pid},\"tid\":{},\"ts\":{}{args}}}",
                escape_json(&event.name),
                event.tid,
                micros(event.start_ns),
            )
        } else {
            // `depth` is the tracer's ground-truth nesting level; viewers
            // ignore it, but tooling can verify nesting without inferring
            // it from (cross-process rebased) intervals.
            format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"fsp\",\
                 \"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"depth\":{}{label}}}}}",
                escape_json(&event.name),
                event.tid,
                micros(event.start_ns),
                micros(event.dur_ns),
                event.depth,
            )
        };
        push(obj, &mut first);
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"dropped\":{},\"misnested\":{}}}}}",
        snap.dropped, snap.misnested
    );
    out
}

/// One aggregated row of the profile table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name.
    pub name: String,
    /// Spans closed under this name.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self nanoseconds: total minus time inside same-thread child spans.
    pub self_ns: u64,
    /// Shortest single span.
    pub min_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Aggregates span events (instants excluded) by name, most total time
/// first. Self time subtracts each span's same-thread nested children, so
/// a layered stack (`serve.job` > `inject.campaign` > `inject.chunk`)
/// attributes every nanosecond to exactly one row.
#[must_use]
pub fn profile(events: &[Event]) -> Vec<ProfileRow> {
    fn close_frame(event: &Event, child_ns: u64, rows: &mut BTreeMap<String, ProfileRow>) {
        let row = rows
            .entry(event.name.to_string())
            .or_insert_with(|| ProfileRow {
                name: event.name.to_string(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
        row.count += 1;
        row.total_ns += event.dur_ns;
        row.self_ns += event.dur_ns.saturating_sub(child_ns);
        row.min_ns = row.min_ns.min(event.dur_ns);
        row.max_ns = row.max_ns.max(event.dur_ns);
    }
    let mut rows: BTreeMap<String, ProfileRow> = BTreeMap::new();
    // Group span events per (process, tid) lane for the self-time sweep.
    let mut lanes: BTreeMap<(&str, u32), Vec<&Event>> = BTreeMap::new();
    for event in events.iter().filter(|e| !e.instant) {
        lanes
            .entry((event.process.as_deref().unwrap_or(""), event.tid))
            .or_default()
            .push(event);
    }
    for lane in lanes.values_mut() {
        lane.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
        // Stack sweep: each open ancestor accumulates its immediate
        // children's durations; self = dur - children on close.
        let mut stack: Vec<(u64, &Event, u64)> = Vec::new(); // (end, event, child_ns)
        for event in lane.iter() {
            let end = event.start_ns + event.dur_ns;
            while let Some(&(top_end, done, child_ns)) = stack.last() {
                if top_end > event.start_ns {
                    break;
                }
                stack.pop();
                close_frame(done, child_ns, &mut rows);
            }
            if let Some(parent) = stack.last_mut() {
                parent.2 += event.dur_ns;
            }
            stack.push((end, event, 0));
        }
        while let Some((_, done, child_ns)) = stack.pop() {
            close_frame(done, child_ns, &mut rows);
        }
    }
    let mut rows: Vec<ProfileRow> = rows.into_values().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    rows
}

fn human_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let v = ns as f64;
    if ns >= 1_000_000_000 {
        format!("{:.2}s", v / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the profile rows as an aligned text table.
#[must_use]
pub fn render_profile(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "span", "count", "total", "self", "mean", "min", "max"
    );
    for row in rows {
        let mean = row.total_ns.checked_div(row.count).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            row.name,
            row.count,
            human_ns(row.total_ns),
            human_ns(row.self_ns),
            human_ns(mean),
            human_ns(row.min_ns),
            human_ns(row.max_ns),
        );
    }
    out
}

/// Verifies that span events form strictly nested per-lane timelines: on
/// every `(process, tid)` lane, any two spans are either disjoint or one
/// contains the other. Returns the first violation found.
///
/// # Errors
///
/// Describes the two partially-overlapping spans.
pub fn check_nesting(events: &[Event]) -> Result<(), String> {
    let mut lanes: BTreeMap<(&str, u32), Vec<&Event>> = BTreeMap::new();
    for event in events.iter().filter(|e| !e.instant) {
        lanes
            .entry((event.process.as_deref().unwrap_or(""), event.tid))
            .or_default()
            .push(event);
    }
    for ((process, tid), mut lane) in lanes {
        lane.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
        let mut stack: Vec<&Event> = Vec::new();
        for event in lane {
            let end = event.start_ns + event.dur_ns;
            while let Some(top) = stack.last() {
                if top.start_ns + top.dur_ns <= event.start_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if end > top.start_ns + top.dur_ns {
                    return Err(format!(
                        "lane {process}/{tid}: span `{}` [{}, {end}) partially overlaps \
                         open span `{}` ending at {}",
                        event.name,
                        event.start_ns,
                        top.name,
                        top.start_ns + top.dur_ns,
                    ));
                }
            }
            stack.push(event);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(name: &'static str, tid: u32, start: u64, dur: u64) -> Event {
        Event {
            process: None,
            tid,
            name: Cow::Borrowed(name),
            label: None,
            start_ns: start,
            dur_ns: dur,
            depth: 0,
            instant: false,
        }
    }

    #[test]
    fn profile_attributes_self_time_to_parents() {
        // parent [0, 100) with children [10, 30) and [40, 50).
        let events = vec![
            ev("parent", 1, 0, 100),
            ev("child", 1, 10, 20),
            ev("child", 1, 40, 10),
        ];
        let rows = profile(&events);
        assert_eq!(rows[0].name, "parent");
        assert_eq!(rows[0].total_ns, 100);
        assert_eq!(rows[0].self_ns, 70);
        assert_eq!(rows[1].name, "child");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_ns, 30);
        assert_eq!(rows[1].self_ns, 30);
        assert_eq!(rows[1].min_ns, 10);
        assert_eq!(rows[1].max_ns, 20);
    }

    #[test]
    fn nesting_check_accepts_nested_rejects_overlap() {
        let nested = vec![ev("a", 1, 0, 100), ev("b", 1, 10, 20), ev("c", 1, 50, 50)];
        assert!(check_nesting(&nested).is_ok());
        // Same intervals on different threads never conflict.
        let cross = vec![ev("a", 1, 0, 100), ev("b", 2, 50, 100)];
        assert!(check_nesting(&cross).is_ok());
        let overlap = vec![ev("a", 1, 0, 100), ev("b", 1, 50, 100)];
        assert!(check_nesting(&overlap).is_err());
    }

    #[test]
    fn chrome_json_tags_foreign_processes() {
        let mut worker = ev("lease", 3, 500, 1000);
        worker.process = Some("w1".to_owned());
        let snap = TraceSnapshot {
            events: vec![ev("job", 1, 0, 2000), worker],
            dropped: 2,
            misnested: 0,
            threads: vec![(1, "main".to_owned())],
        };
        let json = chrome_trace_json(&snap, "coordinator");
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"name\":\"w1\""));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"lease\",\"cat\":\"fsp\",\"pid\":1"));
        assert!(json.contains("\"ts\":0.500"));
        assert!(json.contains("\"dropped\":2"));
    }
}
