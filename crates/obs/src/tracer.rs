//! The span tracer: thread-local span stacks over a monotonic clock,
//! feeding a bounded, sharded ring buffer of completed events.
//!
//! Design constraints, in order:
//!
//! * **Disabled is free.** Every recording entry point loads one relaxed
//!   atomic and returns — no clock read, no thread-local setup, no lock.
//!   Campaign hot paths keep their instrumentation unconditionally in
//!   place.
//! * **Enabled is cheap and bounded.** A completed span is one event
//!   pushed under one uncontended per-shard mutex into a fixed-capacity
//!   deque (threads map to shards by id, so campaign workers almost never
//!   share one). When a shard is full the *oldest* event in that shard is
//!   dropped and counted — a tracer must never become the memory leak it
//!   is hunting.
//! * **Events are whole spans.** The ring stores `(start, duration)`
//!   records pushed at span *close*, never paired begin/end markers, so
//!   overflow can only lose whole spans — a drained ring always parses
//!   into well-nested timelines.
//!
//! Nesting is tracked per thread by an RAII [`Span`] guard and a
//! thread-local depth counter. Guards dropped out of stack order are
//! detected (the close-depth mismatch) and counted rather than panicking:
//! observability must not take down a campaign.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One completed trace event: a closed span or an instant marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Originating process: `None` for this process, a name for events
    /// injected from a remote worker ([`inject_foreign`]).
    pub process: Option<String>,
    /// Tracer-assigned thread id within the originating process.
    pub tid: u32,
    /// Span name (static for locally recorded spans).
    pub name: Cow<'static, str>,
    /// Optional dynamic label (kernel id, job id, worker name, ...).
    pub label: Option<String>,
    /// Start, in nanoseconds on the originating process's trace clock.
    pub start_ns: u64,
    /// Duration in nanoseconds; zero for instants.
    pub dur_ns: u64,
    /// Nesting depth at open (0 = top-level on its thread).
    pub depth: u32,
    /// Instant marker rather than a span.
    pub instant: bool,
}

/// A bounded, sharded ring buffer of [`Event`]s.
///
/// Pushes take one short per-shard mutex; overflow drops the shard's
/// oldest event first and counts it. Shard assignment follows the pusher's
/// thread id, so per-thread event order is preserved within a shard.
#[derive(Debug)]
pub struct Ring {
    shards: Vec<Mutex<VecDeque<Event>>>,
    per_shard: usize,
    dropped: AtomicU64,
}

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Ring {
    /// A ring of `shards` deques holding at most `per_shard` events each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(shards: usize, per_shard: usize) -> Ring {
        assert!(shards > 0 && per_shard > 0, "ring must have capacity");
        Ring {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_shard,
            dropped: AtomicU64::new(0),
        }
    }

    /// Pushes one event into the shard selected by `shard_hint` (callers
    /// pass their thread id). Drops that shard's oldest event when full.
    pub fn push(&self, shard_hint: u32, event: Event) {
        let shard = &self.shards[shard_hint as usize % self.shards.len()];
        let mut q = unpoisoned(shard);
        if q.len() >= self.per_shard {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    }

    /// Copies out every buffered event, ordered by start time.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| unpoisoned(s).iter().cloned().collect::<Vec<_>>())
            .collect();
        events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
        events
    }

    /// Moves out every buffered event, ordered by start time, leaving the
    /// ring empty (the drop counter is preserved).
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *unpoisoned(s)))
            .collect();
        events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
        events
    }

    /// Events dropped to overflow since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Global enable gate. All recording entry points check this first; the
/// disabled path is a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans closed out of stack order (guard leaked past its parent's close).
static MISNESTED: AtomicU64 = AtomicU64::new(0);

/// Next tracer thread id (0 is reserved for "unregistered").
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Tracer thread names, `(tid, name)`, for trace metadata.
static THREAD_NAMES: OnceLock<Mutex<Vec<(u32, String)>>> = OnceLock::new();

/// Ring shards for locally recorded events. 8 shards x 8192 events bounds
/// the tracer at a few MiB regardless of campaign length.
const LOCAL_SHARDS: usize = 8;
const LOCAL_PER_SHARD: usize = 8192;

/// Capacity for events injected from remote workers (single shard: the
/// injector is the coordinator's submission handler, one at a time).
const FOREIGN_PER_SHARD: usize = 1 << 16;

fn local_ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring::new(LOCAL_SHARDS, LOCAL_PER_SHARD))
}

fn foreign_ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring::new(1, FOREIGN_PER_SHARD))
}

fn clock_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds on this process's monotonic trace clock (anchored at the
/// tracer's first use).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(clock_anchor().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Turns span recording on or off process-wide. Metrics (counters,
/// histograms) are always live; only the event ring is gated.
pub fn set_tracing(on: bool) {
    // Pin the clock anchor before the first recorded event so span
    // timestamps never precede the anchor.
    let _ = clock_anchor();
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether span recording is on.
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// This thread's tracer id, registering its name on first use.
fn current_tid() -> u32 {
    TID.with(|slot| {
        let cached = slot.get();
        if cached != 0 {
            return cached;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_owned);
        unpoisoned(THREAD_NAMES.get_or_init(|| Mutex::new(Vec::new()))).push((tid, name));
        slot.set(tid);
        tid
    })
}

/// An open span; closing (dropping) the guard records the event.
///
/// Created by [`span`] / [`span_labeled`]. When tracing is disabled the
/// guard is inert and costs nothing to drop.
#[must_use = "a span measures the scope holding the guard"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    label: Option<String>,
    start_ns: u64,
    depth: u32,
    armed: bool,
}

/// Opens a span named `name` on this thread.
pub fn span(name: &'static str) -> Span {
    open_span(name, None)
}

/// Opens a span with a dynamic label (kernel id, job id, ...).
pub fn span_labeled(name: &'static str, label: impl Into<String>) -> Span {
    open_span(name, Some(label.into()))
}

fn open_span(name: &'static str, label: Option<String>) -> Span {
    if !tracing_enabled() {
        return Span {
            name,
            label: None,
            start_ns: 0,
            depth: 0,
            armed: false,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span {
        name,
        label,
        start_ns: now_ns(),
        depth,
        armed: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        let expected = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        if expected != self.depth {
            // Closed out of stack order; count it, record anyway.
            MISNESTED.fetch_add(1, Ordering::Relaxed);
        }
        let tid = current_tid();
        local_ring().push(
            tid,
            Event {
                process: None,
                tid,
                name: Cow::Borrowed(self.name),
                label: self.label.take(),
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                depth: self.depth,
                instant: false,
            },
        );
    }
}

/// Records a zero-duration instant marker (heartbeats, grants, ...).
pub fn instant(name: &'static str, label: Option<String>) {
    if !tracing_enabled() {
        return;
    }
    let tid = current_tid();
    local_ring().push(
        tid,
        Event {
            process: None,
            tid,
            name: Cow::Borrowed(name),
            label,
            start_ns: now_ns(),
            dur_ns: 0,
            depth: DEPTH.with(Cell::get),
            instant: true,
        },
    );
}

/// Injects events recorded by another process (a fleet worker) into this
/// process's trace, stamped with `process`. Timestamps must already be
/// rebased onto this process's trace clock.
pub fn inject_foreign(process: &str, events: impl IntoIterator<Item = Event>) {
    let ring = foreign_ring();
    for mut event in events {
        event.process = Some(process.to_owned());
        ring.push(0, event);
    }
}

/// A copied-out view of the trace state: local and injected-foreign
/// events on one clock, plus tracer health counters.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All buffered events, ordered by start time.
    pub events: Vec<Event>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Spans closed out of stack order.
    pub misnested: u64,
    /// Local `(tid, thread name)` pairs seen by the tracer.
    pub threads: Vec<(u32, String)>,
}

fn assemble(mut events: Vec<Event>, mut foreign: Vec<Event>) -> TraceSnapshot {
    events.append(&mut foreign);
    events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
    TraceSnapshot {
        events,
        dropped: local_ring().dropped() + foreign_ring().dropped(),
        misnested: MISNESTED.load(Ordering::Relaxed),
        threads: THREAD_NAMES
            .get()
            .map(|names| unpoisoned(names).clone())
            .unwrap_or_default(),
    }
}

/// Copies the current trace buffer without clearing it.
#[must_use]
pub fn snapshot() -> TraceSnapshot {
    assemble(local_ring().snapshot(), foreign_ring().snapshot())
}

/// Moves the current trace buffer out, leaving it empty (drop and
/// misnesting counters are preserved). Fleet workers drain after each
/// lease so spans ship exactly once.
#[must_use]
pub fn drain() -> TraceSnapshot {
    assemble(local_ring().drain(), foreign_ring().drain())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64, dur: u64) -> Event {
        Event {
            process: None,
            tid: 1,
            name: Cow::Borrowed("e"),
            label: None,
            start_ns: start,
            dur_ns: dur,
            depth: 0,
            instant: false,
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_first_and_counts() {
        let ring = Ring::new(1, 4);
        for i in 0..7 {
            ring.push(0, ev(i, 1));
        }
        assert_eq!(ring.dropped(), 3);
        let events = ring.snapshot();
        assert_eq!(
            events.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            [3, 4, 5, 6],
            "the three oldest events are the ones dropped"
        );
        // Draining empties the buffer but keeps the drop counter.
        assert_eq!(ring.drain().len(), 4);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn ring_orders_across_shards_by_start() {
        let ring = Ring::new(4, 16);
        for i in 0..8u32 {
            ring.push(i, ev(u64::from(7 - i), 1));
        }
        let starts: Vec<u64> = ring.snapshot().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_span_is_inert() {
        // The gate defaults off; guards must not touch the depth counter
        // (tests that enable tracing live in tests/tracer_global.rs to
        // avoid racing this one).
        let before = DEPTH.with(Cell::get);
        let guard = span("inert");
        assert_eq!(DEPTH.with(Cell::get), before);
        drop(guard);
        assert_eq!(DEPTH.with(Cell::get), before);
    }
}
