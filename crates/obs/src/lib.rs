//! # fsp-obs — observability for the fault-site-pruning stack
//!
//! A std-only, dependency-free observability subsystem shared by every
//! layer of the workspace (it sits at the very bottom of the crate
//! graph):
//!
//! * **Span tracer** ([`tracer`]) — RAII spans over thread-local stacks
//!   and a monotonic clock, recorded into a bounded, sharded ring buffer
//!   of *completed* events. One atomic gate ([`set_tracing`]) keeps the
//!   disabled path at a few nanoseconds, so instrumentation stays in the
//!   campaign hot paths unconditionally. Remote events (fleet workers)
//!   can be injected onto the local timeline ([`inject_foreign`]).
//! * **Metrics registry** ([`metrics`]) — counters, gauges and
//!   log2-bucket histograms with exact merge semantics, rendered as
//!   Prometheus text. A process-global [`registry`] serves layers with no
//!   natural owner; `fsp-serve` owns per-engine instances.
//! * **Trace consumers** ([`chrome`]) — Chrome trace-event JSON (open in
//!   Perfetto or `chrome://tracing`), an aggregated profile table with
//!   self-time attribution, and the nesting validator CI asserts with.
//! * **Shared FNV-1a** ([`fnv`]) — the workspace's one content-hash
//!   implementation (fingerprints, store records, wire checksums).
//!
//! ## Tracing quickstart
//!
//! ```
//! fsp_obs::set_tracing(true);
//! {
//!     let _campaign = fsp_obs::span_labeled("campaign", "gemm");
//!     let _chunk = fsp_obs::span("chunk");
//! } // guards close innermost-first; events land in the ring
//! let snap = fsp_obs::snapshot();
//! assert!(snap.events.iter().any(|e| e.name == "campaign"));
//! let json = fsp_obs::chrome_trace_json(&snap, "example");
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]

pub mod chrome;
pub mod fnv;
pub mod metrics;
pub mod tracer;

pub use chrome::{check_nesting, chrome_trace_json, profile, render_profile, ProfileRow};
pub use fnv::{fnv1a, Fnv1a};
pub use metrics::{
    bucket_of, registry, Counter, Gauge, GaugeFormat, Histogram, HistogramSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use tracer::{
    drain, inject_foreign, instant, now_ns, set_tracing, snapshot, span, span_labeled,
    tracing_enabled, Event, Ring, Span, TraceSnapshot,
};
