//! The unified metrics registry: counters, gauges and log2-bucket
//! histograms with exact merge semantics, rendered as Prometheus text.
//!
//! Handles are cheap `Arc`-backed clones updated with relaxed atomics;
//! the registry mutex is touched only at registration and render time.
//! Registration is get-or-create: asking for an existing `(name, labels)`
//! series returns the live handle, so layers can share series without
//! threading handles through APIs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a gauge renders its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GaugeFormat {
    /// Rust's shortest `f64` formatting (`0.75`, integral values without a
    /// fraction).
    #[default]
    Auto,
    /// One fixed decimal (`12.5`, `0.0`) — throughput-style gauges.
    Fixed1,
}

/// A set-to-current-value gauge (stored as `f64` bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets from an unsigned integer (exact up to 2^53).
    #[allow(clippy::cast_precision_loss)]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: bucket `k` holds values of bit length `k`
/// (`0` holds only zero), so `u64`'s full range needs 65.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log2-bucket histogram.
///
/// Bucket `k` counts values in `[2^(k-1), 2^k)` (bucket 0 counts zeros),
/// i.e. values of bit length `k`. Buckets are plain counts, so merging
/// shard histograms bucket-wise is *exactly* equivalent to recording the
/// concatenated stream into one histogram — no interpolation error.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

/// The index of the bucket holding `v`: its bit length.
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds another histogram's counts into this one (exact: bucket-wise
    /// addition; see the type docs for why this equals single-stream
    /// recording).
    pub fn merge_from(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (bucket, n) in self.0.buckets.iter().zip(snap.buckets) {
            bucket.fetch_add(n, Ordering::Relaxed);
        }
        self.0.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.0.count.fetch_add(snap.count, Ordering::Relaxed);
    }

    /// Copies out the current counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge, GaugeFormat),
    Histogram(Histogram),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(..) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct MetricFamily {
    name: String,
    help: &'static str,
    series: Vec<(Vec<(String, String)>, Series)>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    families: Vec<MetricFamily>,
    /// `name -> families index`; `(name, labels) -> series index` lives in
    /// the family's (short) series vector.
    index: BTreeMap<String, usize>,
}

/// A collection of metric families rendered together as Prometheus text.
///
/// Families render in registration order; series within a family in
/// first-seen order — output is deterministic for a fixed registration
/// sequence.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut inner = unpoisoned(&self.inner);
        let family = if let Some(&i) = inner.index.get(name) {
            i
        } else {
            let i = inner.families.len();
            inner.families.push(MetricFamily {
                name: name.to_owned(),
                help,
                series: Vec::new(),
            });
            inner.index.insert(name.to_owned(), i);
            i
        };
        let family = &mut inner.families[family];
        if let Some((_, series)) = family.series.iter().find(|(have, _)| {
            have.len() == labels.len()
                && have
                    .iter()
                    .zip(labels)
                    .all(|((hk, hv), (k, v))| hk == k && hv == v)
        }) {
            return series.clone();
        }
        let series = make();
        assert!(
            family.series.is_empty() || family.series[0].1.kind() == series.kind(),
            "metric `{name}` registered with conflicting types"
        );
        family.series.push((
            labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            series.clone(),
        ));
        series
    }

    /// The unlabeled counter `name`, created on first use.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        self.counter_labeled(name, &[], help)
    }

    /// The counter `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered as a different metric type.
    pub fn counter_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Counter {
        match self.series(name, labels, help, || Series::Counter(Counter::default())) {
            Series::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The unlabeled gauge `name`, created on first use.
    pub fn gauge(&self, name: &str, help: &'static str, format: GaugeFormat) -> Gauge {
        self.gauge_labeled(name, &[], help, format)
    }

    /// The gauge `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered as a different metric type.
    pub fn gauge_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        format: GaugeFormat,
    ) -> Gauge {
        match self.series(name, labels, help, || {
            Series::Gauge(Gauge::default(), format)
        }) {
            Series::Gauge(g, _) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The unlabeled histogram `name`, created on first use.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histogram {
        self.histogram_labeled(name, &[], help)
    }

    /// The histogram `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered as a different metric type.
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Histogram {
        match self.series(name, labels, help, || {
            Series::Histogram(Histogram::default())
        }) {
            Series::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    #[must_use]
    pub fn render(&self) -> String {
        let inner = unpoisoned(&self.inner);
        let mut out = String::new();
        for family in &inner.families {
            let name = &family.name;
            let kind = family.series.first().map_or("untyped", |(_, s)| s.kind());
            let _ = writeln!(out, "# HELP {name} {}\n# TYPE {name} {kind}", family.help);
            for (labels, series) in &family.series {
                let labels = render_labels(labels);
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g, format) => {
                        let v = g.get();
                        let _ = match format {
                            GaugeFormat::Auto => writeln!(out, "{name}{labels} {v}"),
                            GaugeFormat::Fixed1 => writeln!(out, "{name}{labels} {v:.1}"),
                        };
                    }
                    Series::Histogram(h) => render_histogram(&mut out, name, &labels, h),
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &str, histogram: &Histogram) {
    let snap = histogram.snapshot();
    let last = snap.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (k, &n) in snap.buckets.iter().enumerate().take(last + 1) {
        cumulative += n;
        // Bucket k holds values of bit length k: inclusive bound 2^k - 1.
        let le = (1u128 << k) - 1;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            le_labels(labels, &le.to_string())
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        le_labels(labels, "+Inf"),
        snap.count
    );
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count);
}

fn le_labels(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// The process-global registry, shared by layers that have no natural
/// owner for their metrics (the injection engine, the simulator).
/// `fsp-serve` owns a per-engine [`Registry`] instead, so engine counters
/// reset with the engine.
#[must_use]
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("t_total", "Things.");
        c.add(3);
        let by_kind = r.counter_labeled("t_by_kind", &[("kind", "a")], "Things by kind.");
        by_kind.inc();
        r.counter_labeled("t_by_kind", &[("kind", "b")], "Things by kind.")
            .add(2);
        let g = r.gauge("t_rate", "Rate.", GaugeFormat::Fixed1);
        g.set(12.5);
        let auto = r.gauge("t_frac", "Fraction.", GaugeFormat::Auto);
        auto.set(0.75);
        let text = r.render();
        assert!(text.contains("# HELP t_total Things.\n# TYPE t_total counter\nt_total 3\n"));
        assert!(text.contains("t_by_kind{kind=\"a\"} 1\n"));
        assert!(text.contains("t_by_kind{kind=\"b\"} 2\n"));
        assert!(text.contains("t_rate 12.5\n"));
        assert!(text.contains("t_frac 0.75\n"));
        // Re-registration returns the same live series.
        r.counter("t_total", "Things.").inc();
        assert_eq!(c.get(), 4);
        assert_eq!(by_kind.get(), 1);
    }

    #[test]
    fn gauge_auto_format_matches_f64_display() {
        let r = Registry::new();
        r.gauge("g", "G.", GaugeFormat::Auto).set(0.0);
        assert!(r.render().contains("g 0\n"));
        r.gauge("g", "G.", GaugeFormat::Auto).set(2.0);
        assert!(r.render().contains("g 2\n"));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[10], 1);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", "Latency.");
        h.record(1);
        h.record(3);
        let text = r.render();
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_ns_sum 4\n"));
        assert!(text.contains("lat_ns_count 2\n"));
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("m", "M.");
        let _ = r.gauge("m", "M.", GaugeFormat::Auto);
    }
}
