//! The write-back interceptor that performs the bit flip.

use fsp_sim::{ExecHook, Writeback};

use crate::model::FaultModel;
use crate::site::FaultSite;

/// An [`ExecHook`] that corrupts one destination-register write at one
/// fault site and passes everything else through untouched. The default
/// corruption is the paper's single-bit flip; see [`FaultModel`] for the
/// extension modes.
///
/// The site's `bit` indexes the instruction's destination bits across its
/// write-back slots in order, so a dual-destination instruction
/// (`set.eq $p0/$r1`) exposes its predicate bits first (`0..4`) and the
/// general-purpose bits after (`4..36`).
#[derive(Debug, Clone, Copy)]
pub struct InjectionHook {
    site: FaultSite,
    model: FaultModel,
    /// Destination bits already seen at the armed (tid, dyn_idx); used to
    /// map the flat bit index onto the right write-back slot.
    bits_seen: u32,
    triggered: bool,
}

impl InjectionHook {
    /// Arms a single-bit-flip hook for `site`.
    #[must_use]
    pub fn new(site: FaultSite) -> Self {
        Self::with_model(site, FaultModel::SingleBitFlip)
    }

    /// Arms a hook for `site` with an explicit corruption model.
    #[must_use]
    pub fn with_model(site: FaultSite, model: FaultModel) -> Self {
        InjectionHook {
            site,
            model,
            bits_seen: 0,
            triggered: false,
        }
    }

    /// Whether the flip actually happened (false means the site was never
    /// reached — e.g. a site enumerated from a stale trace).
    #[must_use]
    pub fn triggered(&self) -> bool {
        self.triggered
    }
}

impl ExecHook for InjectionHook {
    #[inline]
    fn writeback(&mut self, wb: &Writeback) -> Option<u32> {
        if self.triggered || wb.tid != self.site.tid || wb.dyn_idx != self.site.dyn_idx {
            return None;
        }
        let offset = self.site.bit.wrapping_sub(self.bits_seen);
        if offset < wb.width {
            self.triggered = true;
            let key = (u64::from(self.site.tid) << 40)
                ^ (u64::from(self.site.dyn_idx) << 8)
                ^ u64::from(self.site.bit);
            return Some(self.model.apply(wb.value, offset, wb.width, key));
        }
        self.bits_seen += wb.width;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;
    use fsp_sim::{Launch, MemBlock, Simulator};

    fn run_with(site: FaultSite) -> (Vec<u32>, bool) {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0F                       // dyn 0: 32 bits
            set.lt.u32.u32 $p0/$r2, $r1, 0xFF       // dyn 1: 4 + 32 bits
            st.global.u32 [$r124], $r1
            mov.u32 $r3, 0x4
            st.global.u32 [$r3], $r2
            exit
            "#,
        )
        .unwrap();
        let mut g = MemBlock::with_words(2);
        let mut hook = InjectionHook::new(site);
        Simulator::new()
            .run(&Launch::new(p), &mut g, &mut hook)
            .unwrap();
        (g.to_vec(), hook.triggered())
    }

    #[test]
    fn flips_gpr_bit() {
        let (words, hit) = run_with(FaultSite {
            tid: 0,
            dyn_idx: 0,
            bit: 4,
        });
        assert!(hit);
        assert_eq!(words[0], 0x0F ^ 0x10);
    }

    #[test]
    fn dual_dest_bit_indexing() {
        // Bit 0 lands in the predicate flags (value 0 -> flag bit flipped,
        // $r2 untouched).
        let (words, hit) = run_with(FaultSite {
            tid: 0,
            dyn_idx: 1,
            bit: 0,
        });
        assert!(hit);
        assert_eq!(words[1], 0xFFFF_FFFF, "gpr result unchanged");
        // Bit 4 is the first gpr bit.
        let (words, hit) = run_with(FaultSite {
            tid: 0,
            dyn_idx: 1,
            bit: 4,
        });
        assert!(hit);
        assert_eq!(words[1], 0xFFFF_FFFE);
        // Bit 35 is the gpr's MSB.
        let (words, _) = run_with(FaultSite {
            tid: 0,
            dyn_idx: 1,
            bit: 35,
        });
        assert_eq!(words[1], 0x7FFF_FFFF);
    }

    #[test]
    fn unreached_site_does_not_trigger() {
        let (words, hit) = run_with(FaultSite {
            tid: 5,
            dyn_idx: 0,
            bit: 0,
        });
        assert!(!hit);
        assert_eq!(words[0], 0x0F);
    }

    #[test]
    fn fires_at_most_once() {
        // dyn_idx 0 occurs once; flipping it twice would require a second
        // retirement of the same (tid, dyn_idx), which cannot happen — but
        // the guard also protects against zero-width slots.
        let mut hook = InjectionHook::new(FaultSite {
            tid: 0,
            dyn_idx: 0,
            bit: 0,
        });
        assert!(!hook.triggered());
        let wb = fsp_sim::Writeback {
            tid: 0,
            dyn_idx: 0,
            pc: 0,
            slot: 0,
            reg: fsp_isa::Register::Gpr(1),
            value: 0,
            width: 32,
        };
        assert_eq!(hook.writeback(&wb), Some(1));
        assert!(hook.triggered());
        assert_eq!(hook.writeback(&wb), None);
    }
}
