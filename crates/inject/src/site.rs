//! Fault sites and the per-kernel site population.

use fsp_sim::KernelTrace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single fault site: one bit of the destination register(s) of one
/// dynamic instruction of one thread.
///
/// `bit` indexes the instruction's destination bits in write-back order:
/// a `set.eq $p0/$r1` has 36 sites — bits `0..4` land in the predicate's
/// condition codes, bits `4..36` in the general-purpose register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultSite {
    /// Grid-wide flat thread id.
    pub tid: u32,
    /// 0-based dynamic instruction index within the thread.
    pub dyn_idx: u32,
    /// Bit position within the instruction's destination bits.
    pub bit: u32,
}

/// A fault site together with its extrapolation weight.
///
/// Pruned campaigns inject into one representative site and account its
/// outcome for all the sites it represents; unpruned campaigns use weight 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedSite {
    /// The site to inject.
    pub site: FaultSite,
    /// How many exhaustive sites this injection stands for.
    pub weight: f64,
}

impl From<FaultSite> for WeightedSite {
    fn from(site: FaultSite) -> Self {
        WeightedSite { site, weight: 1.0 }
    }
}

/// Packs fault sites into a flat little-endian byte plan (12 bytes per
/// site: `tid`, `dyn_idx`, `bit`), the chunk-plan serialization used by
/// distributed campaign execution.
#[must_use]
pub fn pack_sites(sites: &[FaultSite]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sites.len() * 12);
    for site in sites {
        out.extend_from_slice(&site.tid.to_le_bytes());
        out.extend_from_slice(&site.dyn_idx.to_le_bytes());
        out.extend_from_slice(&site.bit.to_le_bytes());
    }
    out
}

/// Unpacks a [`pack_sites`] plan; `None` if the byte length is not a
/// multiple of the 12-byte site record (a torn plan).
#[must_use]
pub fn unpack_sites(bytes: &[u8]) -> Option<Vec<FaultSite>> {
    if !bytes.len().is_multiple_of(12) {
        return None;
    }
    let word = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4 bytes"));
    Some(
        bytes
            .chunks_exact(12)
            .map(|rec| FaultSite {
                tid: word(&rec[0..4]),
                dyn_idx: word(&rec[4..8]),
                bit: word(&rec[8..12]),
            })
            .collect(),
    )
}

/// The exhaustive fault-site population of one traced kernel launch.
///
/// Construction requires a [`KernelTrace`] with *full* traces for every
/// thread that will be sampled or enumerated (campaigns at evaluation scale
/// trace all threads; paper-scale site *counting* only needs the summary).
#[derive(Debug, Clone)]
pub struct SiteSpace {
    trace: KernelTrace,
    /// Prefix sums of per-thread fault bits: `thread_prefix[t]` = sites of
    /// threads `0..t`. Length = threads + 1.
    thread_prefix: Vec<u64>,
}

impl SiteSpace {
    /// Builds the site space over a kernel trace.
    #[must_use]
    pub fn new(trace: KernelTrace) -> Self {
        let mut thread_prefix = Vec::with_capacity(trace.fault_bits.len() + 1);
        let mut acc = 0u64;
        thread_prefix.push(0);
        for &bits in &trace.fault_bits {
            acc += bits;
            thread_prefix.push(acc);
        }
        SiteSpace {
            trace,
            thread_prefix,
        }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &KernelTrace {
        &self.trace
    }

    /// Total number of fault sites — Equation (1).
    #[must_use]
    pub fn total_sites(&self) -> u64 {
        *self.thread_prefix.last().unwrap_or(&0)
    }

    /// Number of fault sites in one thread.
    #[must_use]
    pub fn thread_sites(&self, tid: u32) -> u64 {
        self.trace.fault_bits[tid as usize]
    }

    /// The site at a global index in `0..total_sites()`, ordered by thread,
    /// then dynamic instruction, then bit.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range, or if the owning thread has no
    /// full trace.
    #[must_use]
    pub fn site_at(&self, index: u64) -> FaultSite {
        assert!(index < self.total_sites(), "site index out of range");
        // Find the thread via the prefix sums.
        let tid = match self.thread_prefix.binary_search(&index) {
            Ok(mut i) => {
                // Land on the first thread whose range starts at `index`
                // and is non-empty.
                while self.thread_prefix[i + 1] == index {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        } as u32;
        let mut rem = index - self.thread_prefix[tid as usize];
        let full = self
            .trace
            .full
            .get(tid)
            .unwrap_or_else(|| panic!("thread {tid} has no full trace"));
        for (dyn_idx, entry) in full.entries.iter().enumerate() {
            let bits = u64::from(entry.dest_bits);
            if rem < bits {
                return FaultSite {
                    tid,
                    dyn_idx: dyn_idx as u32,
                    bit: rem as u32,
                };
            }
            rem -= bits;
        }
        unreachable!("trace summary and full trace disagree on fault bits");
    }

    /// Draws one site uniformly at random from the whole population.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultSite {
        let total = self.total_sites();
        assert!(total > 0, "cannot sample from an empty site space");
        self.site_at(rng.gen_range(0..total))
    }

    /// Draws `n` sites uniformly (with replacement — the fraction sampled
    /// is vanishingly small, matching the statistical model of Eq. 3).
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<FaultSite> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Enumerates every site of one thread (requires its full trace).
    ///
    /// # Panics
    ///
    /// Panics if the thread has no full trace.
    pub fn thread_site_iter(&self, tid: u32) -> impl Iterator<Item = FaultSite> + '_ {
        let full = self
            .trace
            .full
            .get(tid)
            .unwrap_or_else(|| panic!("thread {tid} has no full trace"));
        full.entries
            .iter()
            .enumerate()
            .flat_map(move |(dyn_idx, e)| {
                (0..u32::from(e.dest_bits)).map(move |bit| FaultSite {
                    tid,
                    dyn_idx: dyn_idx as u32,
                    bit,
                })
            })
    }

    /// Enumerates the sites of all dynamic occurrences of a static
    /// instruction (`pc`) in one thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread has no full trace.
    pub fn thread_pc_sites(&self, tid: u32, pc: u32) -> Vec<FaultSite> {
        let full = self
            .trace
            .full
            .get(tid)
            .unwrap_or_else(|| panic!("thread {tid} has no full trace"));
        full.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.pc == pc)
            .flat_map(|(dyn_idx, e)| {
                (0..u32::from(e.dest_bits)).map(move |bit| FaultSite {
                    tid,
                    dyn_idx: dyn_idx as u32,
                    bit,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;
    use fsp_sim::{Launch, MemBlock, Simulator, Tracer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SiteSpace {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x5                       // 32 bits
            set.lt.u32.u32 $p0/$r2, $r1, 0xA       // 36 bits
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p).grid(1, 1).block(4, 1, 1);
        let mut tracer = Tracer::new(4, 4).with_full_traces(0..4);
        let mut g = MemBlock::with_words(4);
        Simulator::new().run(&launch, &mut g, &mut tracer).unwrap();
        SiteSpace::new(tracer.finish())
    }

    #[test]
    fn totals_match_eq1() {
        let s = space();
        assert_eq!(s.total_sites(), 4 * 68);
        assert_eq!(s.thread_sites(2), 68);
    }

    #[test]
    fn site_at_walks_threads_instructions_bits() {
        let s = space();
        assert_eq!(
            s.site_at(0),
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 0
            }
        );
        assert_eq!(
            s.site_at(31),
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 31
            }
        );
        assert_eq!(
            s.site_at(32),
            FaultSite {
                tid: 0,
                dyn_idx: 1,
                bit: 0
            }
        );
        assert_eq!(
            s.site_at(67),
            FaultSite {
                tid: 0,
                dyn_idx: 1,
                bit: 35
            }
        );
        assert_eq!(
            s.site_at(68),
            FaultSite {
                tid: 1,
                dyn_idx: 0,
                bit: 0
            }
        );
        assert_eq!(
            s.site_at(4 * 68 - 1),
            FaultSite {
                tid: 3,
                dyn_idx: 1,
                bit: 35
            }
        );
    }

    #[test]
    fn exhaustive_enumeration_matches_site_at() {
        let s = space();
        let from_iter: Vec<FaultSite> = (0..4).flat_map(|t| s.thread_site_iter(t)).collect();
        let from_index: Vec<FaultSite> = (0..s.total_sites()).map(|i| s.site_at(i)).collect();
        assert_eq!(from_iter, from_index);
    }

    #[test]
    fn sampling_is_uniform_ish_and_seeded() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        let a = s.sample_many(100, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let b = s.sample_many(100, &mut rng);
        assert_eq!(a, b, "same seed, same sample");
        // All threads should appear in a modest sample of a 4-thread space.
        let mut seen = [false; 4];
        for site in &a {
            seen[site.tid as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn site_packing_round_trips() {
        let sites: Vec<FaultSite> = (0..7)
            .map(|i| FaultSite {
                tid: i,
                dyn_idx: u32::from_le_bytes([1, 2, 3, 4]).wrapping_add(i),
                bit: 35 - i,
            })
            .collect();
        let packed = pack_sites(&sites);
        assert_eq!(packed.len(), sites.len() * 12);
        assert_eq!(unpack_sites(&packed).unwrap(), sites);
        assert_eq!(unpack_sites(&[]).unwrap(), Vec::new());
        assert_eq!(unpack_sites(&packed[..13]), None, "torn plan rejected");
    }

    #[test]
    fn pc_filtered_sites() {
        let s = space();
        let sites = s.thread_pc_sites(1, 1);
        assert_eq!(sites.len(), 36);
        assert!(sites.iter().all(|x| x.tid == 1 && x.dyn_idx == 1));
    }
}
