//! Early-convergence tracking for injected runs.
//!
//! [`FastInjectionHook`] wraps [`InjectionHook`] and maintains the exact
//! *divergence set* of the faulty run: every register and memory word whose
//! value currently differs from the fault-free run at the same retirement
//! point. The fault-free values come from the [`GoldenTrace`] recorded
//! during `Experiment::prepare`, indexed positionally — thread `t`'s `k`-th
//! retirement in the faulty run lines up with golden coordinate `(t, k)`
//! because the simulator's schedule is deterministic.
//!
//! The tracker compares every committed register write-back and every store
//! of a *tracked* thread against the golden value at the same coordinate:
//! a differing value inserts the register/word into the set, a matching
//! value removes it (the faulty run has recomputed the golden value — the
//! common fate of a flipped bit that is overwritten or truncated away).
//! Threads stay cheap through two structural facts: registers and local
//! memory are thread-private, so while no shared/global word diverges,
//! threads without private divergence provably replay the golden stream
//! and are skipped wholesale; and divergence dies with its scope — a
//! thread's private set on exit, a CTA's shared-memory set when a later
//! CTA starts (CTAs run serially).
//!
//! Positional comparison is only meaningful while the faulty run retires
//! the *same instruction stream*: the tracker checks every tracked
//! retirement's PC against the golden PC at the same `(t, k)` and *bails*
//! permanently on any mismatch (control divergence — a corrupted value
//! steered a guard or branch), on a store whose address differs from the
//! golden one (unknown word overwritten), on running past the golden
//! stream's end, or when a post-flip fuel budget runs out (beyond it,
//! tracking the suffix costs more than the output comparison it saves).
//! A bailed run is classified by the ordinary output comparison.
//!
//! When the set empties without a bail, the machine state — registers,
//! predicates, memory, PCs, barrier phases — equals the golden state at
//! the same schedule point; determinism then forces the golden outcome,
//! so the campaign stops the run and records `Masked` immediately
//! ([`ExecHook::converged`]).

use std::collections::HashSet;

use fsp_isa::{MemSpace, Opcode, Register};
use fsp_sim::{ExecHook, GlobalWriteProfile, GoldenTrace, MemAccess, RetireEvent, Writeback};

use crate::hook::InjectionHook;
use crate::model::FaultModel;
use crate::site::FaultSite;

/// Post-flip budget of *tracked* retirements (threads holding private
/// divergence; clean threads are free). Most masking overwrites land
/// within a few hundred instructions of the flip; runs still divergent
/// after this much tracked work almost always stay divergent, so the
/// tracker bails and lets the output comparison decide.
const TRACK_WINDOW: u32 = 4096;

/// Divergent shared/global words are mirrored into a flat array scanned on
/// every memory access of clean threads; past this many the scan stops
/// being effectively free, and divergence that wide almost never converges
/// — bail.
const SG_SCAN_CAP: usize = 16;

/// Compact key for a register: thread-private, so keyed per tid elsewhere.
/// `None` for registers that cannot carry state (`$r124`, `$o127`,
/// specials) — writes to them are discarded and never diverge.
pub(crate) fn reg_key(reg: Register) -> Option<u16> {
    match reg {
        Register::Special(_) | Register::Discard => None,
        Register::Gpr(124) => None,
        Register::Gpr(n) => Some(u16::from(n)),
        Register::Pred(n) => Some(0x100 | u16::from(n)),
        Register::Ofs(n) => Some(0x200 | u16::from(n)),
    }
}

/// Key for a memory word: `(space code, owner, byte address)`. Global
/// words have one owner (0); shared words are owned by their CTA; local
/// words by their thread.
pub(crate) fn space_code(space: MemSpace) -> u8 {
    match space {
        MemSpace::Global => 0,
        MemSpace::Shared => 1,
        MemSpace::Local => 2,
    }
}

/// An [`ExecHook`] that injects one fault (delegating to [`InjectionHook`])
/// and tracks the divergence set it causes against the golden value trace,
/// reporting convergence through [`ExecHook::converged`] once the set
/// provably empties.
#[derive(Debug, Clone)]
pub struct FastInjectionHook<'a> {
    inner: InjectionHook,
    golden: &'a GoldenTrace,
    /// Golden store count and last-writer CTA per global word
    /// ([`GoldenTrace::global_write_profile`]): proves when a divergent
    /// output word can never be restored, so tracking can stop on the
    /// spot (the dominant SDC case).
    writers: &'a GlobalWriteProfile,
    threads_per_cta: u32,
    /// The flip has committed; tracking is live.
    armed: bool,
    /// Tracking abandoned (control/address divergence or fuel exhausted);
    /// the run must be classified by output comparison.
    bailed: bool,
    /// Tracked retirements left before bailing (see [`TRACK_WINDOW`]).
    fuel: u32,
    /// CTA whose threads last produced a tracked event; events from a later
    /// CTA retire all earlier CTAs' divergence (CTAs run serially).
    current_cta: u32,
    /// Flat-tid bounds of `current_cta` (`[cta_lo, cta_hi)`), cached so the
    /// per-retirement turnover test is two compares, not a division.
    cta_lo: u32,
    cta_hi: u32,
    /// Currently-divergent registers, keyed `(tid, reg)`.
    reg_div: HashSet<(u32, u16)>,
    /// Currently-divergent memory words, keyed `(space, owner, addr)`.
    mem_div: HashSet<(u8, u32, u32)>,
    /// Packed mirror of `mem_div`'s shared/global entries, kept tiny
    /// (≤ [`SG_SCAN_CAP`]) so clean threads can screen their memory
    /// accesses with a linear scan instead of a hash probe.
    sg_keys: Vec<u64>,
    /// Byte addresses of `sg_keys`, scanned first: the screen's hot path
    /// is a miss, and an address-only compare needs no space/owner
    /// resolution.
    sg_addrs: Vec<u32>,
    /// Per-thread count of reg + local-memory divergence, indexed by tid —
    /// the fast-skip test runs on every retirement grid-wide, so it must
    /// be a flat array load, not a hash probe. Registers and local memory
    /// are thread-private, so a thread with a zero here touches divergent
    /// state only through shared/global words.
    per_thread: Vec<u32>,
    /// Count of divergent shared + global words.
    shared_global: u32,
}

impl<'a> FastInjectionHook<'a> {
    /// Arms a tracking hook for `site` under `model`, comparing against
    /// the fault-free commit log `golden`. `threads_per_cta` scopes
    /// shared-memory divergence to the owning CTA.
    #[must_use]
    pub fn new(
        site: FaultSite,
        model: FaultModel,
        golden: &'a GoldenTrace,
        writers: &'a GlobalWriteProfile,
        threads_per_cta: u32,
    ) -> Self {
        FastInjectionHook {
            inner: InjectionHook::with_model(site, model),
            golden,
            writers,
            threads_per_cta: threads_per_cta.max(1),
            armed: false,
            bailed: false,
            fuel: TRACK_WINDOW,
            current_cta: 0,
            cta_lo: 0,
            cta_hi: u32::MAX,
            reg_div: HashSet::new(),
            mem_div: HashSet::new(),
            sg_keys: Vec::new(),
            sg_addrs: Vec::new(),
            per_thread: vec![0; golden.num_threads() as usize],
            shared_global: 0,
        }
    }

    /// Whether the flip actually happened.
    #[must_use]
    pub fn triggered(&self) -> bool {
        self.inner.triggered()
    }

    /// Whether tracking was abandoned (the run needs the full output
    /// comparison; `converged` can never become true after a bail).
    #[must_use]
    pub fn bailed(&self) -> bool {
        self.bailed
    }

    /// Whether `tid` needs full value comparison: only threads holding
    /// private divergence. Clean threads provably replay the golden stream
    /// — the divergent-load screen in `on_retire` bails the moment that
    /// would stop being true.
    fn tracked(&self, tid: u32) -> bool {
        self.per_thread.get(tid as usize).is_some_and(|&n| n > 0)
    }

    fn mem_key(&self, access: &MemAccess, tid: u32) -> (u8, u32, u32) {
        let owner = match access.space {
            MemSpace::Global => 0,
            MemSpace::Shared => tid / self.threads_per_cta,
            MemSpace::Local => tid,
        };
        (space_code(access.space), owner, access.addr)
    }

    /// Packs a shared/global key for the clean-thread scan array.
    fn pack(key: (u8, u32, u32)) -> u64 {
        (u64::from(key.0) << 56) | (u64::from(key.1) << 32) | u64::from(key.2)
    }

    /// Caches `cta`'s flat-tid bounds for the turnover test.
    fn set_cta(&mut self, cta: u32) {
        self.current_cta = cta;
        self.cta_lo = cta * self.threads_per_cta;
        self.cta_hi = self.cta_lo + self.threads_per_cta;
    }

    fn insert_reg(&mut self, tid: u32, reg: Register) {
        if let Some(k) = reg_key(reg) {
            if self.reg_div.insert((tid, k)) {
                self.per_thread[tid as usize] += 1;
            }
        }
    }

    fn remove_reg(&mut self, tid: u32, reg: Register) {
        if let Some(k) = reg_key(reg) {
            if self.reg_div.remove(&(tid, k)) {
                self.dec_thread(tid);
            }
        }
    }

    fn insert_mem(&mut self, key: (u8, u32, u32), tid: u32) {
        if self.mem_div.insert(key) {
            if key.0 == space_code(MemSpace::Local) {
                self.per_thread[tid as usize] += 1;
            } else {
                // A divergent global word is only ever removed by a later
                // store of the golden value at a golden store position. If
                // the golden run stores this word exactly once — the store
                // that just diverged — no such position remains anywhere in
                // the schedule: the run provably cannot converge, so stop
                // tracking it now (the output comparison will see the SDC).
                // This is the common fate of a corrupted output element in
                // single-assignment kernels, and it drops the per-retirement
                // screen for the whole remaining run.
                if key.0 == space_code(MemSpace::Global)
                    && self.writers.get(key.2).is_none_or(|w| w.count <= 1)
                {
                    self.bailed = true;
                    return;
                }
                self.shared_global += 1;
                self.sg_keys.push(Self::pack(key));
                self.sg_addrs.push(key.2);
                if self.sg_keys.len() > SG_SCAN_CAP {
                    self.bailed = true;
                }
            }
        }
    }

    fn remove_mem(&mut self, key: (u8, u32, u32), tid: u32) {
        if self.mem_div.remove(&key) {
            if key.0 == space_code(MemSpace::Local) {
                self.dec_thread(tid);
            } else {
                self.shared_global -= 1;
                let packed = Self::pack(key);
                if let Some(p) = self.sg_keys.iter().position(|&k| k == packed) {
                    self.sg_keys.swap_remove(p);
                    self.sg_addrs.swap_remove(p);
                }
            }
        }
    }

    fn dec_thread(&mut self, tid: u32) {
        let n = &mut self.per_thread[tid as usize];
        *n = n.saturating_sub(1);
    }

    /// Drops a finished thread's private divergence (registers and local
    /// memory): nothing can read it after the thread exits.
    fn drop_thread(&mut self, tid: u32) {
        if self.per_thread[tid as usize] == 0 {
            return;
        }
        self.per_thread[tid as usize] = 0;
        self.reg_div.retain(|&(t, _)| t != tid);
        let local = space_code(MemSpace::Local);
        self.mem_div
            .retain(|&(s, owner, _)| s != local || owner != tid);
    }

    /// Retires every CTA before `cta`: their threads are dead (private
    /// divergence unreachable) and their shared memory is reset before the
    /// next CTA runs.
    fn retire_ctas_before(&mut self, cta: u32) {
        let first_tid = (cta * self.threads_per_cta) as usize;
        let end = first_tid.min(self.per_thread.len());
        for tid in 0..end {
            if self.per_thread[tid] > 0 {
                self.drop_thread(tid as u32);
            }
        }
        let shared = space_code(MemSpace::Shared);
        let before = self.mem_div.len();
        self.mem_div
            .retain(|&(s, owner, _)| s != shared || owner >= cta);
        let dropped = (before - self.mem_div.len()) as u32;
        if dropped > 0 {
            self.shared_global -= dropped;
            let local = space_code(MemSpace::Local);
            self.sg_keys.clear();
            self.sg_addrs.clear();
            for &k in self.mem_div.iter().filter(|&&(s, _, _)| s != local) {
                self.sg_keys.push(Self::pack(k));
                self.sg_addrs.push(k.2);
            }
        }
    }
}

impl ExecHook for FastInjectionHook<'_> {
    fn writeback(&mut self, wb: &Writeback) -> Option<u32> {
        let before = self.inner.triggered();
        let out = self.inner.writeback(wb);
        if self.bailed {
            return out;
        }
        if !before && self.inner.triggered() {
            // The flip. The pre-flip stream is golden by determinism, so
            // the committed value diverges iff the model changed it.
            self.armed = true;
            self.set_cta(wb.tid / self.threads_per_cta);
            if out.is_some_and(|v| v != wb.value) {
                self.insert_reg(wb.tid, wb.reg);
            }
            return out;
        }
        if !self.armed || !self.tracked(wb.tid) {
            return out;
        }
        // Compare the committed value against the golden one at the same
        // (thread, retirement, slot) coordinate. The PC guard rejects
        // comparisons on a control-divergent stream before they could
        // spuriously shrink the set.
        let Some(t) = self.golden.thread(wb.tid) else {
            self.bailed = true;
            return out;
        };
        if t.pc(wb.dyn_idx) != Some(wb.pc as u32) {
            self.bailed = true;
            return out;
        }
        let committed = out.unwrap_or(wb.value);
        match t.value(t.wb_index(wb.dyn_idx) + u32::from(wb.slot)) {
            Some(gv) if committed == gv => self.remove_reg(wb.tid, wb.reg),
            Some(_) => self.insert_reg(wb.tid, wb.reg),
            None => self.bailed = true,
        }
        out
    }

    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        if self.bailed || !self.armed {
            return;
        }
        // CTA turnover: CTAs run serially, so an event from a later CTA
        // means every earlier one finished and its divergence is dead.
        // Only needed while shared/global divergence exists (private
        // divergence dies at its own thread's exit).
        if self.shared_global > 0 {
            if ev.tid >= self.cta_hi {
                let cta = ev.tid / self.threads_per_cta;
                self.retire_ctas_before(cta);
                self.set_cta(cta);
                // Every CTA that could still store a surviving divergent
                // global word lies at or after `cta`. A word whose last
                // golden writer is behind the schedule can never be
                // restored — the run provably cannot converge.
                for i in 0..self.sg_keys.len() {
                    if (self.sg_keys[i] >> 56) as u8 == space_code(MemSpace::Global)
                        && self
                            .writers
                            .get(self.sg_addrs[i])
                            .is_none_or(|w| w.last_cta < cta)
                    {
                        self.bailed = true;
                        return;
                    }
                }
            } else if ev.tid < self.cta_lo {
                self.bailed = true;
                return;
            }
        }
        if !self.tracked(ev.tid) {
            // Clean thread: its registers are golden (the screen here
            // promotes or bails before that could stop being true), so its
            // addresses and stored values are golden too. A store to a
            // divergent word therefore restores the golden value; a load
            // from one propagates corruption — *promote* the thread by
            // marking every register this instruction writes divergent
            // (an over-approximation; the compare path removes them as
            // they are proven golden again), after which it is tracked
            // like the faulty thread itself.
            if self.shared_global > 0 {
                let mut promoted = false;
                for a in ev.accesses {
                    // Address-only prefilter: the hot path is a miss.
                    if !self.sg_addrs.contains(&a.addr) {
                        continue;
                    }
                    let key = self.mem_key(a, ev.tid);
                    if self.sg_keys.contains(&Self::pack(key)) {
                        if a.is_store {
                            self.remove_mem(key, ev.tid);
                        } else {
                            promoted = true;
                        }
                    }
                }
                if promoted {
                    for d in ev.instr.dst.iter().flatten() {
                        match d {
                            fsp_isa::Dest::Reg(r) => self.insert_reg(ev.tid, *r),
                            // A store fed by the divergent load in the same
                            // instruction: unverifiable here — give up.
                            fsp_isa::Dest::Mem(_) => {
                                self.bailed = true;
                                return;
                            }
                        }
                    }
                }
            }
            return;
        }
        match self.fuel.checked_sub(1) {
            Some(f) => self.fuel = f,
            None => {
                self.bailed = true;
                return;
            }
        }
        let Some(t) = self.golden.thread(ev.tid) else {
            self.bailed = true;
            return;
        };
        // Control divergence (a corrupted guard or branch steered the
        // thread off the golden path) shows up as a PC mismatch at the
        // same retirement index; running past the golden stream's end
        // (`pc() == None`) is the hang-flavored special case.
        if t.pc(ev.dyn_idx) != Some(ev.pc as u32) {
            self.bailed = true;
            return;
        }
        // Stores compare positionally against the golden store stream: a
        // matching word is re-proven golden, a differing one diverges, a
        // differing *address* overwrites an unknown word — bail.
        let stores = ev.accesses.iter().filter(|a| a.is_store);
        for (idx, a) in (t.store_index(ev.dyn_idx)..).zip(stores) {
            match t.store(idx) {
                Some(gs) if gs.space == a.space && gs.addr == a.addr => {
                    let key = self.mem_key(a, ev.tid);
                    if a.value == gs.value {
                        self.remove_mem(key, ev.tid);
                    } else {
                        self.insert_mem(key, ev.tid);
                    }
                }
                _ => {
                    self.bailed = true;
                    return;
                }
            }
        }
        // A finished thread's private divergence is dead.
        if matches!(ev.instr.opcode, Opcode::Exit | Opcode::Ret | Opcode::Retp) {
            self.drop_thread(ev.tid);
        }
    }

    #[inline]
    fn converged(&self) -> bool {
        self.armed && !self.bailed && self.reg_div.is_empty() && self.mem_div.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;
    use fsp_sim::{GoldenRecorder, Launch, MemBlock, Simulator};

    fn golden_of(launch: &Launch, words: usize) -> (GoldenTrace, GlobalWriteProfile) {
        let mut mem = MemBlock::with_words(words);
        let mut rec = GoldenRecorder::new(launch.num_threads());
        Simulator::new()
            .run(launch, &mut mem, &mut rec)
            .expect("golden run");
        let trace = rec.finish();
        let writers = trace.global_write_profile(launch.threads_per_cta());
        (trace, writers)
    }

    /// A kernel whose fault at `$r1` (dyn 0) is overwritten by dyn 2 before
    /// anything reads it: the divergence set must empty and the run stop.
    #[test]
    fn overwritten_fault_converges() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x5
            mov.u32 $r2, 0x7
            mov.u32 $r1, 0x9
            st.global.u32 [$r124], $r1
            st.global.u32 [$r124+0x4], $r2
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p);
        let (trace, writers) = golden_of(&launch, 2);
        let mut g = MemBlock::with_words(2);
        let mut hook = FastInjectionHook::new(
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 3,
            },
            FaultModel::SingleBitFlip,
            &trace,
            &writers,
            1,
        );
        let stats = Simulator::new().run(&launch, &mut g, &mut hook).unwrap();
        assert!(hook.triggered());
        assert!(hook.converged());
        // Stopped after the overwrite at dyn 2, before the stores retired.
        assert!(stats.instructions < 6, "run stopped early: {stats:?}");
    }

    /// A corrupted value that reaches a store keeps the word divergent:
    /// the run must NOT converge, and the output comparison sees the SDC.
    #[test]
    fn stored_fault_does_not_converge() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x5
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p);
        let (trace, writers) = golden_of(&launch, 1);
        let mut g = MemBlock::with_words(1);
        let mut hook = FastInjectionHook::new(
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 3,
            },
            FaultModel::SingleBitFlip,
            &trace,
            &writers,
            1,
        );
        Simulator::new().run(&launch, &mut g, &mut hook).unwrap();
        assert!(hook.triggered());
        assert!(!hook.converged());
        assert_eq!(g.load(0).unwrap(), 0x5 ^ 0x8);
    }

    /// A flipped predicate that steers a guard must bail: the faulty PC
    /// stream falls out of alignment with the golden one.
    #[test]
    fn control_divergence_bails() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$o127, $r124, $r124
            @$p0.eq bra skip
            mov.u32 $r1, 0x1
            skip:
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p);
        let (trace, writers) = golden_of(&launch, 1);
        let mut g = MemBlock::with_words(1);
        // Flip a predicate flag bit of dyn 0.
        let mut hook = FastInjectionHook::new(
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 0,
            },
            FaultModel::SingleBitFlip,
            &trace,
            &writers,
            1,
        );
        Simulator::new().run(&launch, &mut g, &mut hook).unwrap();
        assert!(hook.triggered());
        assert!(hook.bailed());
        assert!(!hook.converged());
    }

    /// A stuck-at fault that commits the golden value converges on the
    /// spot (the "flip" is a no-op).
    #[test]
    fn noop_flip_converges_immediately() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x1
            st.global.u32 [$r124], $r1
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p);
        let (trace, writers) = golden_of(&launch, 1);
        let mut g = MemBlock::with_words(1);
        // Bit 0 of 0x1 is already 1: StuckAt1 commits the golden value.
        let mut hook = FastInjectionHook::new(
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 0,
            },
            FaultModel::StuckAt1,
            &trace,
            &writers,
            1,
        );
        let stats = Simulator::new().run(&launch, &mut g, &mut hook).unwrap();
        assert!(hook.triggered());
        assert!(hook.converged());
        assert!(stats.instructions <= 2);
    }

    /// A corrupted register that is never read, never stored and never
    /// overwritten dies with its thread: convergence through scope death,
    /// which value comparison alone can never prove.
    #[test]
    fn unread_divergence_dies_with_thread() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x5
            st.global.u32 [$r124], $r2
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p);
        let (trace, writers) = golden_of(&launch, 1);
        let mut g = MemBlock::with_words(1);
        let mut hook = FastInjectionHook::new(
            FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 3,
            },
            FaultModel::SingleBitFlip,
            &trace,
            &writers,
            1,
        );
        Simulator::new().run(&launch, &mut g, &mut hook).unwrap();
        assert!(hook.triggered());
        assert!(!hook.bailed());
        assert!(hook.converged());
    }
}
