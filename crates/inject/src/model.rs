//! Fault models beyond the paper's single-bit flip.
//!
//! The paper (and its baseline tools GPU-Qin / SASSIFI / LLFI-GPU) centers
//! on transient single-bit flips in destination registers; SASSIFI also
//! supports richer corruption modes. This module provides those as an
//! extension — the pruning methodology is fault-model-agnostic as long as
//! the model targets destination-register sites.

use serde::{Deserialize, Serialize};

/// How the destination value is corrupted at the fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FaultModel {
    /// The paper's model: flip the addressed bit.
    #[default]
    SingleBitFlip,
    /// Flip the addressed bit and its upper neighbour (wrapping within the
    /// destination width) — models a double-cell upset.
    DoubleBitFlip,
    /// Force the addressed bit to 0 (masked whenever the bit already was 0).
    StuckAt0,
    /// Force the addressed bit to 1.
    StuckAt1,
    /// Replace the whole destination with a deterministic pseudo-random
    /// value derived from the site (SASSIFI's "random value" mode).
    RandomValue,
}

impl FaultModel {
    /// All models, for sweeps.
    pub const ALL: [FaultModel; 5] = [
        FaultModel::SingleBitFlip,
        FaultModel::DoubleBitFlip,
        FaultModel::StuckAt0,
        FaultModel::StuckAt1,
        FaultModel::RandomValue,
    ];

    /// Looks a model up by its [`FaultModel::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultModel> {
        FaultModel::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Stable single-byte wire/storage code (the campaign service keys its
    /// persistent outcome store by it). Inverse of [`FaultModel::from_code`];
    /// the mapping is frozen — extend, never renumber.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            FaultModel::SingleBitFlip => 0,
            FaultModel::DoubleBitFlip => 1,
            FaultModel::StuckAt0 => 2,
            FaultModel::StuckAt1 => 3,
            FaultModel::RandomValue => 4,
        }
    }

    /// Decodes a wire/storage code; `None` for unknown codes.
    #[must_use]
    pub const fn from_code(code: u8) -> Option<FaultModel> {
        match code {
            0 => Some(FaultModel::SingleBitFlip),
            1 => Some(FaultModel::DoubleBitFlip),
            2 => Some(FaultModel::StuckAt0),
            3 => Some(FaultModel::StuckAt1),
            4 => Some(FaultModel::RandomValue),
            _ => None,
        }
    }

    /// Short display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultModel::SingleBitFlip => "single-bit-flip",
            FaultModel::DoubleBitFlip => "double-bit-flip",
            FaultModel::StuckAt0 => "stuck-at-0",
            FaultModel::StuckAt1 => "stuck-at-1",
            FaultModel::RandomValue => "random-value",
        }
    }

    /// Corrupts `value` at bit `offset` within a destination of `width`
    /// bits.
    #[must_use]
    pub fn apply(self, value: u32, offset: u32, width: u32, site_key: u64) -> u32 {
        let mask = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        match self {
            FaultModel::SingleBitFlip => value ^ (1 << offset),
            FaultModel::DoubleBitFlip => {
                let second = (offset + 1) % width.max(1);
                value ^ (1 << offset) ^ (1 << second)
            }
            FaultModel::StuckAt0 => value & !(1 << offset),
            FaultModel::StuckAt1 => value | (1 << offset),
            FaultModel::RandomValue => {
                // SplitMix64 of the site key: deterministic per site.
                let mut z = site_key.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let random = (z ^ (z >> 31)) as u32;
                (value & !mask) | (random & mask)
            }
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_flips_exactly_one_bit() {
        let v = FaultModel::SingleBitFlip.apply(0b1010, 0, 32, 0);
        assert_eq!(v, 0b1011);
        assert_eq!(
            FaultModel::SingleBitFlip.apply(v, 0, 32, 0),
            0b1010,
            "involution"
        );
    }

    #[test]
    fn double_bit_flips_adjacent_pair_and_wraps() {
        assert_eq!(FaultModel::DoubleBitFlip.apply(0, 0, 32, 0), 0b11);
        // Wraps at the destination width, not at 32 bits.
        assert_eq!(FaultModel::DoubleBitFlip.apply(0, 3, 4, 0), 0b1001);
    }

    #[test]
    fn stuck_at_models_are_idempotent() {
        for model in [FaultModel::StuckAt0, FaultModel::StuckAt1] {
            let once = model.apply(0b0101, 1, 32, 0);
            assert_eq!(model.apply(once, 1, 32, 0), once);
        }
        assert_eq!(FaultModel::StuckAt0.apply(0b0010, 1, 32, 0), 0);
        assert_eq!(FaultModel::StuckAt1.apply(0, 1, 32, 0), 0b0010);
        // Stuck-at can be a no-op (inherently maskable).
        assert_eq!(FaultModel::StuckAt0.apply(0, 5, 32, 0), 0);
    }

    #[test]
    fn random_value_is_deterministic_and_width_bounded() {
        let a = FaultModel::RandomValue.apply(0xFFFF_FFFF, 0, 4, 42);
        let b = FaultModel::RandomValue.apply(0xFFFF_FFFF, 0, 4, 42);
        assert_eq!(a, b);
        assert_eq!(a & !0xF, 0xFFFF_FFF0, "bits outside the width untouched");
        let c = FaultModel::RandomValue.apply(0xFFFF_FFFF, 0, 4, 43);
        assert_ne!(a, c, "different sites draw different values");
    }

    #[test]
    fn codes_and_names_round_trip() {
        for m in FaultModel::ALL {
            assert_eq!(FaultModel::from_code(m.code()), Some(m));
            assert_eq!(FaultModel::from_name(m.name()), Some(m));
        }
        assert_eq!(FaultModel::from_code(5), None);
        assert_eq!(FaultModel::from_name("nonesuch"), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = FaultModel::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultModel::ALL.len());
    }

    #[test]
    fn all_covers_every_variant() {
        // `ALL` is the ground truth for sweeps: every variant must appear
        // exactly once, and codes must be a bijection onto 0..ALL.len().
        let mut codes: Vec<u8> = FaultModel::ALL.iter().map(|m| m.code()).collect();
        codes.sort_unstable();
        let expected: Vec<u8> = (0..FaultModel::ALL.len() as u8).collect();
        assert_eq!(codes, expected, "codes are dense and unique");
        for m in [
            FaultModel::SingleBitFlip,
            FaultModel::DoubleBitFlip,
            FaultModel::StuckAt0,
            FaultModel::StuckAt1,
            FaultModel::RandomValue,
        ] {
            assert!(FaultModel::ALL.contains(&m));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn model_strategy() -> impl Strategy<Value = FaultModel> {
            (0usize..FaultModel::ALL.len()).prop_map(|i| FaultModel::ALL[i])
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn name_round_trips(m in model_strategy()) {
                prop_assert_eq!(FaultModel::from_name(m.name()), Some(m));
            }

            #[test]
            fn code_round_trips(m in model_strategy()) {
                prop_assert_eq!(FaultModel::from_code(m.code()), Some(m));
            }

            #[test]
            fn unknown_codes_decode_to_none(code in any::<u8>()) {
                prop_assume!(code >= FaultModel::ALL.len() as u8);
                prop_assert_eq!(FaultModel::from_code(code), None);
            }

            #[test]
            fn apply_stays_within_width(
                m in model_strategy(),
                value in any::<u32>(),
                width in 1u32..33,
                offset in 0u32..32,
                key in any::<u64>(),
            ) {
                prop_assume!(offset < width);
                let out = m.apply(value, offset, width, key);
                let outside = if width >= 32 { 0 } else { !((1u32 << width) - 1) };
                prop_assert_eq!(
                    out & outside,
                    value & outside,
                    "bits outside the destination width must be untouched"
                );
            }

            #[test]
            fn single_bit_flip_is_an_involution(
                value in any::<u32>(),
                width in 1u32..33,
                offset in 0u32..32,
                key in any::<u64>(),
            ) {
                prop_assume!(offset < width);
                let m = FaultModel::SingleBitFlip;
                prop_assert_eq!(m.apply(m.apply(value, offset, width, key), offset, width, key), value);
            }
        }
    }
}
