//! The contract between workloads and the injector.

use fsp_sim::{Launch, MemBlock};

/// A kernel plus its host-side harness: everything the injector needs to
/// run the kernel repeatedly and judge its output.
///
/// Implementations must be deterministic: the same target must produce the
/// same memory image and the same launch every time, or outcome
/// classification is meaningless.
pub trait InjectionTarget: Sync {
    /// A short identifier (e.g. `"gemm_k1"`).
    fn name(&self) -> &str;

    /// The kernel launch (program, grid, parameters). The injector applies
    /// its own instruction budget on top.
    fn launch(&self) -> Launch;

    /// A freshly initialized global-memory image (inputs written, outputs
    /// cleared).
    fn init_memory(&self) -> MemBlock;

    /// The output region to compare bitwise against the golden run:
    /// `(byte address, length in words)`.
    fn output_region(&self) -> (u32, usize);
}

impl<T: InjectionTarget + ?Sized> InjectionTarget for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn launch(&self) -> Launch {
        (**self).launch()
    }

    fn init_memory(&self) -> MemBlock {
        (**self).init_memory()
    }

    fn output_region(&self) -> (u32, usize) {
        (**self).output_region()
    }
}
