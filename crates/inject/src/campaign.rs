//! Golden-run preparation, single injections and parallel campaigns.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use fsp_sim::{Launch, MemBlock, SimFault, Simulator, Tracer};
use fsp_stats::{Outcome, ResilienceProfile};

use crate::hook::InjectionHook;
use crate::site::{SiteSpace, WeightedSite};
use crate::target::InjectionTarget;

/// Sites per work unit handed to a campaign worker. Small enough to load
/// balance across heterogeneous site costs, large enough that claiming a
/// chunk (the only synchronized step) is negligible next to running it.
const CHUNK: usize = 16;

/// Chunk-level progress events from a running campaign.
///
/// Implementations observe a campaign from outside the worker pool: after
/// every completed chunk the workers report the chunk's outcomes, and
/// between chunks they poll [`CampaignObserver::should_cancel`] so a
/// long-running campaign can be stopped at chunk granularity. The
/// orchestration service (`fsp-serve`) uses this to persist outcomes
/// incrementally and to checkpoint/resume jobs.
pub trait CampaignObserver: Sync {
    /// Called by a worker after it finishes a chunk. `start` is the index
    /// of the chunk's first site in the campaign's site list; `outcomes`
    /// covers `sites[start..start + outcomes.len()]` in order (including
    /// any sites that were pre-resolved rather than injected).
    fn on_chunk(&self, start: usize, outcomes: &[Outcome]) {
        let _ = (start, outcomes);
    }

    /// Polled by every worker before claiming the next chunk; returning
    /// `true` stops the campaign. Already-claimed chunks finish (and are
    /// still reported through [`CampaignObserver::on_chunk`]), so
    /// cancellation never tears a chunk.
    fn should_cancel(&self) -> bool {
        false
    }
}

/// The do-nothing observer used by the blocking campaign entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopObserver;

impl CampaignObserver for NopObserver {}

/// Hang-detection margin: an injected run may retire at most this many
/// times the fault-free dynamic instruction count before being declared
/// hung.
const HANG_FACTOR: u64 = 10;
/// Floor for the hang budget, so tiny kernels still tolerate benign
/// control-flow perturbations.
const MIN_BUDGET: u64 = 100_000;

/// A prepared injection experiment: golden output, initial memory image and
/// calibrated hang budget for one target.
#[derive(Debug)]
pub struct Experiment<'a, T: InjectionTarget> {
    target: &'a T,
    launch: Launch,
    initial: MemBlock,
    golden: Vec<u32>,
    fault_free_instructions: u64,
}

impl<'a, T: InjectionTarget> Experiment<'a, T> {
    /// Runs the target fault-free to capture the golden output and
    /// calibrate the hang budget.
    ///
    /// # Errors
    ///
    /// Returns the [`SimFault`] if the *fault-free* run itself faults —
    /// that is a workload bug, not an injection outcome.
    pub fn prepare(target: &'a T) -> Result<Self, SimFault> {
        let launch = target.launch();
        let initial = target.init_memory();
        let mut memory = initial.clone();
        let stats = Simulator::new().run(&launch, &mut memory, &mut fsp_sim::NopHook)?;
        let (addr, len) = target.output_region();
        let golden = memory.read_slice(addr, len).to_vec();
        let budget = (stats.instructions * HANG_FACTOR).max(MIN_BUDGET);
        Ok(Experiment {
            target,
            launch: launch.instr_budget(budget),
            initial,
            golden,
            fault_free_instructions: stats.instructions,
        })
    }

    /// The target being injected.
    #[must_use]
    pub fn target(&self) -> &T {
        self.target
    }

    /// Dynamic instructions retired by the fault-free run.
    #[must_use]
    pub fn fault_free_instructions(&self) -> u64 {
        self.fault_free_instructions
    }

    /// The golden output words.
    #[must_use]
    pub fn golden(&self) -> &[u32] {
        &self.golden
    }

    /// Traces the fault-free run and builds the exhaustive [`SiteSpace`].
    ///
    /// `full_traces` selects the threads that get full traces (needed for
    /// sampling or enumerating their sites); pass `0..launch.num_threads()`
    /// to make every site addressable.
    #[must_use]
    pub fn site_space(&self, full_traces: impl IntoIterator<Item = u32>) -> SiteSpace {
        let mut tracer = Tracer::new(self.launch.num_threads(), self.launch.threads_per_cta())
            .with_full_traces(full_traces);
        let mut memory = self.initial.clone();
        Simulator::new()
            .run(&self.launch, &mut memory, &mut tracer)
            .expect("fault-free run cannot fault after successful prepare()");
        SiteSpace::new(tracer.finish())
    }

    /// Runs one single-bit-flip injection and classifies its outcome.
    #[must_use]
    pub fn run_one(&self, site: crate::FaultSite) -> Outcome {
        self.run_one_with(site, crate::FaultModel::SingleBitFlip)
    }

    /// Runs one injection under an explicit [`crate::FaultModel`].
    #[must_use]
    pub fn run_one_with(&self, site: crate::FaultSite, model: crate::FaultModel) -> Outcome {
        self.run_one_detailed(site, model).0
    }

    /// Runs one injection and, for SDC outcomes, also reports the output's
    /// relative L2 error vs the golden run (SDC severity — see
    /// [`crate::relative_l2_error`]).
    #[must_use]
    pub fn run_one_detailed(
        &self,
        site: crate::FaultSite,
        model: crate::FaultModel,
    ) -> (Outcome, Option<f64>) {
        let mut memory = self.initial.clone();
        let mut hook = InjectionHook::with_model(site, model);
        match Simulator::new().run(&self.launch, &mut memory, &mut hook) {
            Err(SimFault::BudgetExceeded) => (Outcome::HANG, None),
            Err(SimFault::DetectedExit { .. }) => (Outcome::Detected, None),
            Err(_) => (Outcome::CRASH, None),
            Ok(_) => {
                let (addr, len) = self.target.output_region();
                let out = memory.read_slice(addr, len);
                if out == self.golden.as_slice() {
                    (Outcome::Masked, None)
                } else {
                    (
                        Outcome::Sdc,
                        Some(crate::relative_l2_error(&self.golden, out)),
                    )
                }
            }
        }
    }

    /// Runs a single-bit-flip campaign over `sites` on `workers` OS
    /// threads (`0` is clamped to 1).
    ///
    /// Outcomes are indexed by site position, so the result is deterministic
    /// regardless of scheduling.
    #[must_use]
    pub fn run_campaign(&self, sites: &[WeightedSite], workers: usize) -> CampaignResult {
        self.run_campaign_with(sites, crate::FaultModel::SingleBitFlip, workers)
    }

    /// Runs a campaign under an explicit [`crate::FaultModel`] (`workers ==
    /// 0` is clamped to 1).
    #[must_use]
    pub fn run_campaign_with(
        &self,
        sites: &[WeightedSite],
        model: crate::FaultModel,
        workers: usize,
    ) -> CampaignResult {
        let run = self.run_campaign_incremental(sites, model, workers, &[], &NopObserver);
        run.into_result(sites)
            .expect("uncancellable campaign always completes")
    }

    /// Runs a campaign incrementally: sites whose outcome is already known
    /// (`resolved[i] == Some(..)` — e.g. from a persistent outcome store)
    /// are taken as-is, only the remainder is injected, and `observer`
    /// receives chunk-level progress and may cancel between chunks.
    ///
    /// `resolved` must be empty (nothing pre-resolved) or exactly
    /// `sites.len()` long. `workers == 0` is clamped to 1.
    ///
    /// The result is deterministic in site order regardless of worker count
    /// and of how the outcomes are split between `resolved` and fresh
    /// injections: a fully warm run, a resumed run and a cold run of the
    /// same sites produce identical outcome vectors.
    ///
    /// # Panics
    ///
    /// Panics if `resolved` is non-empty with a length other than
    /// `sites.len()`.
    #[must_use]
    pub fn run_campaign_incremental(
        &self,
        sites: &[WeightedSite],
        model: crate::FaultModel,
        workers: usize,
        resolved: &[Option<Outcome>],
        observer: &dyn CampaignObserver,
    ) -> IncrementalCampaign {
        assert!(
            resolved.is_empty() || resolved.len() == sites.len(),
            "resolved length {} does not match {} sites",
            resolved.len(),
            sites.len()
        );
        let mut outcomes: Vec<Option<Outcome>> = if resolved.is_empty() {
            vec![None; sites.len()]
        } else {
            resolved.to_vec()
        };
        let from_cache = outcomes.iter().filter(|o| o.is_some()).count();
        let injected = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        {
            // Workers claim disjoint `&mut` chunks of the outcome vector;
            // the mutex guards only the claim (iterator advance), so the
            // injection hot path runs and writes back lock-free.
            let chunks = Mutex::new(outcomes.chunks_mut(CHUNK).enumerate());
            std::thread::scope(|scope| {
                for _ in 0..workers.max(1).min(sites.len().max(1)) {
                    scope.spawn(|| loop {
                        if cancelled.load(Ordering::Relaxed) || observer.should_cancel() {
                            cancelled.store(true, Ordering::Relaxed);
                            break;
                        }
                        let claimed = chunks.lock().expect("campaign worker panicked").next();
                        let Some((index, chunk)) = claimed else { break };
                        let start = index * CHUNK;
                        let mut fresh = 0usize;
                        for (offset, slot) in chunk.iter_mut().enumerate() {
                            if slot.is_none() {
                                *slot = Some(self.run_one_with(sites[start + offset].site, model));
                                fresh += 1;
                            }
                        }
                        injected.fetch_add(fresh, Ordering::Relaxed);
                        let filled: Vec<Outcome> = chunk
                            .iter()
                            .map(|o| o.expect("chunk fully resolved"))
                            .collect();
                        observer.on_chunk(start, &filled);
                    });
                }
            });
        }
        IncrementalCampaign {
            outcomes,
            injected: injected.into_inner(),
            from_cache,
            cancelled: cancelled.into_inner(),
        }
    }
}

/// The result of a campaign: per-site outcomes plus the weighted profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Outcome per injected site, in input order.
    pub outcomes: Vec<Outcome>,
    /// The weighted resilience profile.
    pub profile: ResilienceProfile,
}

/// The result of an incremental campaign run (see
/// [`Experiment::run_campaign_incremental`]): possibly partial when the
/// observer cancelled it.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalCampaign {
    /// Per-site outcomes in input order; `None` marks sites the campaign
    /// was cancelled before reaching.
    pub outcomes: Vec<Option<Outcome>>,
    /// Sites actually injected by this run.
    pub injected: usize,
    /// Sites resolved from the caller-supplied outcomes (cache hits).
    pub from_cache: usize,
    /// Whether the observer stopped the campaign before it finished.
    pub cancelled: bool,
}

impl IncrementalCampaign {
    /// Whether every site has an outcome.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(Option::is_some)
    }

    /// The weighted profile over the sites resolved so far, accumulated in
    /// site order (so a complete run's partial profile is bit-identical
    /// across worker counts and cache splits).
    #[must_use]
    pub fn partial_profile(&self, sites: &[WeightedSite]) -> ResilienceProfile {
        let mut profile = ResilienceProfile::new();
        for (ws, o) in sites.iter().zip(&self.outcomes) {
            if let Some(o) = o {
                profile.record_weighted(*o, ws.weight);
            }
        }
        profile
    }

    /// Converts a complete run into a [`CampaignResult`]; returns `None`
    /// if any site is still unresolved.
    #[must_use]
    pub fn into_result(self, sites: &[WeightedSite]) -> Option<CampaignResult> {
        let profile = self.partial_profile(sites);
        let outcomes: Option<Vec<Outcome>> = self.outcomes.into_iter().collect();
        outcomes.map(|outcomes| CampaignResult { outcomes, profile })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::CountdownTarget;
    use crate::FaultSite;

    #[test]
    fn prepare_captures_golden() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        assert!(e.fault_free_instructions() > 0);
        assert!(!e.golden().is_empty());
    }

    #[test]
    fn masked_sdc_hang_all_reachable() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        // Exhaust every site of thread 0 and tally; the countdown kernel is
        // engineered so all three outcome classes occur.
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let result = e.run_campaign(&sites, 2);
        assert!(result.profile.masked() > 0.0, "some flips must mask");
        assert!(result.profile.sdc() > 0.0, "some flips must corrupt output");
        assert!(result.profile.other() > 0.0, "some flips must hang/crash");
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(1).map(WeightedSite::from).collect();
        let a = e.run_campaign(&sites, 1);
        let b = e.run_campaign(&sites, 4);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let a = e.run_campaign(&sites, 0);
        let b = e.run_campaign(&sites, 1);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn incremental_resolves_cache_hits_without_injecting() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let cold = e.run_campaign(&sites, 2);
        // Pre-resolve every other site from the cold run; the warm run must
        // inject exactly the gaps and reproduce the cold outcomes.
        let resolved: Vec<Option<Outcome>> = cold
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, &o)| (i % 2 == 0).then_some(o))
            .collect();
        let hits = resolved.iter().filter(|o| o.is_some()).count();
        let warm = e.run_campaign_incremental(
            &sites,
            crate::FaultModel::SingleBitFlip,
            2,
            &resolved,
            &NopObserver,
        );
        assert!(warm.is_complete() && !warm.cancelled);
        assert_eq!(warm.from_cache, hits);
        assert_eq!(warm.injected, sites.len() - hits);
        let warm = warm.into_result(&sites).unwrap();
        assert_eq!(warm.outcomes, cold.outcomes);
        assert_eq!(warm.profile, cold.profile);
    }

    #[test]
    fn observer_sees_chunks_and_can_cancel() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct CancelAfter {
            seen: AtomicUsize,
            limit: usize,
        }
        impl CampaignObserver for CancelAfter {
            fn on_chunk(&self, _start: usize, outcomes: &[Outcome]) {
                self.seen.fetch_add(outcomes.len(), Ordering::Relaxed);
            }
            fn should_cancel(&self) -> bool {
                self.seen.load(Ordering::Relaxed) >= self.limit
            }
        }

        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = (0..4)
            .flat_map(|tid| space.thread_site_iter(tid))
            .map(WeightedSite::from)
            .collect();
        let observer = CancelAfter {
            seen: AtomicUsize::new(0),
            limit: 32,
        };
        let run =
            e.run_campaign_incremental(&sites, crate::FaultModel::SingleBitFlip, 1, &[], &observer);
        assert!(run.cancelled);
        assert!(!run.is_complete(), "cancellation must leave sites undone");
        assert!(run.injected >= 32, "claimed chunks run to completion");
        assert!(run.injected < sites.len());
        // The partial outcomes agree with an uninterrupted run site-by-site.
        let full = e.run_campaign(&sites, 2);
        for (i, o) in run.outcomes.iter().enumerate() {
            if let Some(o) = o {
                assert_eq!(*o, full.outcomes[i]);
            }
        }
    }

    #[test]
    fn unreached_site_is_masked() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let o = e.run_one(FaultSite {
            tid: 999,
            dyn_idx: 0,
            bit: 0,
        });
        assert_eq!(o, Outcome::Masked);
    }
}
