//! Golden-run preparation, single injections and parallel campaigns.
//!
//! Campaigns run on a checkpoint-resume fast path: the golden run captured
//! by [`Experiment::prepare`] leaves behind resumable machine snapshots
//! ([`fsp_sim::Checkpoint`]), each injected run resumes from the closest
//! snapshot at or before its fault site instead of re-executing the shared
//! golden prefix, and a value-divergence tracker
//! ([`crate::FastInjectionHook`]) compares every post-flip commit against
//! the recorded golden value trace and stops the suffix early once the
//! fault's divergence set provably empties (the run is `Masked` by
//! construction).
//! The slow path — a full re-execution per site — is kept behind
//! [`Experiment::set_fast_path`] as the differential-testing oracle; the
//! two paths are byte-identical in outcomes and SDC severities.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use fsp_isa::PredTest;
use fsp_sim::{
    Checkpoint, CheckpointConfig, ExecHook, FullTraces, GlobalWriteProfile, GoldenRecorder,
    GoldenTrace, KernelTrace, Launch, MemBlock, ResumeScratch, RetireEvent, SimFault, Simulator,
    Tracer, Writeback,
};
use fsp_stats::{Outcome, OutcomeKind, ResilienceProfile};

use crate::batch::{
    BatchInjectionHook, DemoteCause, LaneEnd, RetireCause, DEFAULT_BATCH, MAX_BATCH,
};
use crate::fastpath::FastInjectionHook;
use crate::hook::InjectionHook;
use crate::site::{SiteSpace, WeightedSite};
use crate::target::InjectionTarget;

/// Sites per work unit handed to a campaign worker. Small enough to load
/// balance across heterogeneous site costs, large enough that claiming a
/// chunk (the only synchronized step) is negligible next to running it.
const CHUNK: usize = 16;

/// Launches with at most this many threads get full per-thread traces,
/// golden checkpoints and the golden value trace captured during
/// [`Experiment::prepare`]. Larger launches (paper-scale grids) skip all
/// three — a grid-wide per-checkpoint `icnt` table and a full value trace
/// per thread would dwarf the kernel's own memory — and campaigns over
/// them fall back to plain full re-execution per site.
const FULL_TRACE_THREAD_LIMIT: u32 = 4096;

/// Chunk-level progress events from a running campaign.
///
/// Implementations observe a campaign from outside the worker pool: after
/// every completed chunk the workers report the chunk's outcomes, and
/// between chunks they poll [`CampaignObserver::should_cancel`] so a
/// long-running campaign can be stopped at chunk granularity. The
/// orchestration service (`fsp-serve`) uses this to persist outcomes
/// incrementally and to checkpoint/resume jobs.
pub trait CampaignObserver: Sync {
    /// Called by a worker after it finishes a chunk of freshly injected
    /// sites: `outcomes[k]` is the outcome of `sites[indices[k]]`. Only
    /// injected sites are reported — pre-resolved outcomes were supplied by
    /// the caller, who already has them. Chunks follow the campaign's
    /// checkpoint-locality schedule, so `indices` is not contiguous.
    fn on_chunk(&self, indices: &[usize], outcomes: &[Outcome]) {
        let _ = (indices, outcomes);
    }

    /// Polled by every worker before claiming the next chunk; returning
    /// `true` stops the campaign. Already-claimed chunks finish (and are
    /// still reported through [`CampaignObserver::on_chunk`]), so
    /// cancellation never tears a chunk.
    fn should_cancel(&self) -> bool {
        false
    }
}

/// The do-nothing observer used by the blocking campaign entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopObserver;

impl CampaignObserver for NopObserver {}

/// Hang-detection margin: an injected run may retire at most this many
/// times the fault-free dynamic instruction count before being declared
/// hung.
///
/// Calibrated against the workload suite: the longest *finite* injected
/// run observed across all 17 kernels retires 2.08x the fault-free count
/// (a corrupted LUD loop bound that doubles one thread's trip count), and
/// every other kernel stays below 1.15x — so a 4x budget keeps roughly a
/// 2x margin over the worst finite run while quartering the cost of the
/// runs that genuinely never terminate (corrupted induction variables
/// whose state never recurs, which must burn the whole budget in both the
/// fast and slow paths). The [`MIN_BUDGET`] floor below protects tiny
/// kernels where a multiplicative margin is meaningless.
const HANG_FACTOR: u64 = 4;
/// Floor for the hang budget, so tiny kernels still tolerate benign
/// control-flow perturbations.
///
/// Calibrated like [`HANG_FACTOR`]: the floor only governs kernels whose
/// fault-free count is below 5k instructions, and the longest finite
/// injected run observed on any of those retires ~4.5k instructions —
/// a 4.5x margin. Hang runs burn the whole budget in both paths, so an
/// over-generous floor (the previous 100k was 46x the fault-free count of
/// the smallest LUD kernel) dominates small-kernel campaign time for no
/// classification benefit.
const MIN_BUDGET: u64 = 20_000;

/// Stable hash of the outcome-classifier parameters (the hang budget
/// calibration above).
///
/// Injection outcomes are a function of *(program, launch, fault model,
/// site)* **and** of how the classifier cuts off non-terminating runs.
/// Persistent outcome stores must fold this value into their keys so that
/// outcomes computed under a different hang-budget calibration miss
/// instead of being served as current.
#[must_use]
pub fn classifier_hash() -> u64 {
    // FNV-1a over the two calibration constants.
    let mut h = fsp_obs::Fnv1a::new();
    h.write_u64(HANG_FACTOR);
    h.write_u64(MIN_BUDGET);
    h.finish()
}

/// Prometheus label values for the five outcome classes, indexed by
/// [`outcome_index`].
const OUTCOME_LABELS: [&str; 5] = ["masked", "sdc", "crash", "hang", "detected"];

fn outcome_index(o: Outcome) -> usize {
    match o {
        Outcome::Masked => 0,
        Outcome::Sdc => 1,
        Outcome::Other(OutcomeKind::Crash) => 2,
        Outcome::Other(OutcomeKind::Hang) => 3,
        Outcome::Detected => 4,
    }
}

/// Handles into the process-global metrics registry, resolved once and
/// then updated lock-free on the injection hot path.
struct InjectMetrics {
    /// Injected-run wall time by outcome class.
    run_nanos: [fsp_obs::Histogram; 5],
    /// Runs that resumed from a golden checkpoint vs. started cold.
    runs_resumed: fsp_obs::Counter,
    runs_cold: fsp_obs::Counter,
    /// Fast-path attribution: the divergence tracker proved convergence
    /// (early `Masked`), bailed to the output comparison, or screened the
    /// run to completion without doing either.
    fast_early_masked: fsp_obs::Counter,
    fast_bailed: fsp_obs::Counter,
    fast_screened: fsp_obs::Counter,
    /// Classified outcomes by class, across all three engines (solo,
    /// fast-path, batched). Recorded once per finished chunk so live
    /// estimators can watch the registry without touching the hot loop.
    outcome_total: [fsp_obs::Counter; 5],
}

fn inject_metrics() -> &'static InjectMetrics {
    static METRICS: OnceLock<InjectMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = fsp_obs::registry();
        InjectMetrics {
            run_nanos: std::array::from_fn(|i| {
                r.histogram_labeled(
                    "fsp_inject_run_nanos",
                    &[("outcome", OUTCOME_LABELS[i])],
                    "Injected-run wall time by outcome class.",
                )
            }),
            runs_resumed: r.counter_labeled(
                "fsp_inject_runs_total",
                &[("path", "resume")],
                "Injected runs by start path (checkpoint resume vs. cold).",
            ),
            runs_cold: r.counter_labeled(
                "fsp_inject_runs_total",
                &[("path", "cold")],
                "Injected runs by start path (checkpoint resume vs. cold).",
            ),
            fast_early_masked: r.counter_labeled(
                "fsp_inject_fastpath_total",
                &[("result", "early_masked")],
                "Fast-path runs by how the divergence tracker resolved them.",
            ),
            fast_bailed: r.counter_labeled(
                "fsp_inject_fastpath_total",
                &[("result", "bailed")],
                "Fast-path runs by how the divergence tracker resolved them.",
            ),
            fast_screened: r.counter_labeled(
                "fsp_inject_fastpath_total",
                &[("result", "screened")],
                "Fast-path runs by how the divergence tracker resolved them.",
            ),
            outcome_total: std::array::from_fn(|i| {
                r.counter_labeled(
                    "fsp_inject_outcome_total",
                    &[("outcome", OUTCOME_LABELS[i])],
                    "Classified injection outcomes by class.",
                )
            }),
        }
    })
}

/// Prometheus label values for the batched-lane retirement causes, indexed
/// by [`lane_end_index`].
const LANE_END_LABELS: [&str; 9] = [
    "converged",
    "untriggered",
    "end_masked",
    "end_sdc",
    "demoted_control",
    "demoted_addr",
    "demoted_cap",
    "demoted_fuel",
    "demoted_replay",
];

fn lane_end_index(end: LaneEnd) -> usize {
    match end {
        LaneEnd::Resolved(_, RetireCause::Converged) => 0,
        LaneEnd::Resolved(_, RetireCause::Untriggered) => 1,
        LaneEnd::Resolved(_, RetireCause::EndMasked) => 2,
        LaneEnd::Resolved(_, RetireCause::EndSdc) => 3,
        LaneEnd::Demoted(DemoteCause::Control) => 4,
        LaneEnd::Demoted(DemoteCause::Address) => 5,
        LaneEnd::Demoted(DemoteCause::Capacity) => 6,
        LaneEnd::Demoted(DemoteCause::Fuel) => 7,
        LaneEnd::Demoted(DemoteCause::Replay) => 8,
    }
}

/// Batched-execution metrics: lane occupancy per replay and per-lane
/// retirement causes.
struct BatchMetrics {
    /// Lanes riding each batched replay.
    lanes: fsp_obs::Histogram,
    /// Lanes by how they retired (see [`LANE_END_LABELS`]).
    lane_end: [fsp_obs::Counter; 9],
}

fn batch_metrics() -> &'static BatchMetrics {
    static METRICS: OnceLock<BatchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = fsp_obs::registry();
        BatchMetrics {
            lanes: r.histogram(
                "fsp_inject_batch_lanes",
                "Lane occupancy of batched injection replays.",
            ),
            lane_end: std::array::from_fn(|i| {
                r.counter_labeled(
                    "fsp_inject_batch_lane_total",
                    &[("cause", LANE_END_LABELS[i])],
                    "Batched injection lanes by retirement cause.",
                )
            }),
        }
    })
}

impl InjectMetrics {
    fn record_run(&self, meta: RunMeta, fast: bool, bailed: bool, outcome: Outcome, start_ns: u64) {
        self.run_nanos[outcome_index(outcome)].record(fsp_obs::now_ns().saturating_sub(start_ns));
        if meta.ckpt_hit {
            self.runs_resumed.inc();
        } else {
            self.runs_cold.inc();
        }
        if fast {
            if meta.early {
                self.fast_early_masked.inc();
            } else if bailed {
                self.fast_bailed.inc();
            } else {
                self.fast_screened.inc();
            }
        }
    }
}

/// Per-injection cost accounting returned alongside the outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RunMeta {
    /// Golden-prefix instructions skipped by resuming from a checkpoint.
    skipped: u64,
    /// Instructions actually executed (suffix only when resumed; 0 for
    /// faulted runs, whose partial work is discarded).
    executed: u64,
    /// Whether the run resumed from a checkpoint.
    ckpt_hit: bool,
    /// Whether the run was cut short by early convergence.
    early: bool,
}

/// Aggregated cost accounting of one batched replay plus its solo
/// fallbacks, mirroring the per-run [`RunMeta`] counters lane-by-lane.
#[derive(Debug, Clone, Copy, Default)]
struct BatchRunMeta {
    /// Lanes that resumed from a golden checkpoint (counted per lane: each
    /// lane stands for one injected run that skipped its golden prefix).
    hits: u64,
    /// Golden-prefix instructions skipped, summed over lanes.
    skipped: u64,
    /// Instructions actually executed: the shared replay once, plus any
    /// solo fallback runs.
    executed: u64,
    /// Lanes resolved by early convergence.
    early: u64,
    /// Shared golden replays run (1 per batch; 0 when every lane fell
    /// back solo before the replay could start — never happens today).
    replays: u64,
    /// Lanes resolved *on* the shared replay, i.e. without a solo
    /// fallback. `lanes / replays` is the effective batch occupancy.
    lanes: u64,
}

/// A prepared injection experiment: golden output, initial memory image,
/// calibrated hang budget, the golden trace and resumable checkpoints for
/// one target.
#[derive(Debug)]
pub struct Experiment<'a, T: InjectionTarget> {
    target: &'a T,
    launch: Launch,
    initial: MemBlock,
    golden: Vec<u32>,
    fault_free_instructions: u64,
    trace: KernelTrace,
    /// Whether `trace.full` covers every thread of the launch (small
    /// launches only; see [`FULL_TRACE_THREAD_LIMIT`]).
    trace_all: bool,
    checkpoints: Vec<Checkpoint>,
    /// Fault-free value trace for the divergence tracker (captured together
    /// with `trace` and `checkpoints`; `None` over
    /// [`FULL_TRACE_THREAD_LIMIT`] threads, which also disables the fast
    /// path).
    golden_trace: Option<GoldenTrace>,
    /// Golden store count and last-writer CTA per global word, for the
    /// tracker's cannot-converge proof (empty when `golden_trace` is
    /// `None`).
    global_writers: GlobalWriteProfile,
    fast_path: bool,
    /// Shadow lanes per batched replay (see [`Experiment::set_batch`]);
    /// `1` disables batching entirely.
    batch: usize,
}

/// Composes the dynamic-instruction tracer with the golden value recorder
/// so [`Experiment::prepare`] still runs the fault-free launch exactly
/// once. Neither component overrides write-back values, so composition
/// order is immaterial.
struct PrepareHook<'h> {
    tracer: &'h mut Tracer,
    golden: &'h mut GoldenRecorder,
}

impl ExecHook for PrepareHook<'_> {
    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        self.golden.on_retire(ev);
        self.tracer.on_retire(ev);
    }

    fn writeback(&mut self, wb: &Writeback) -> Option<u32> {
        self.golden.writeback(wb);
        self.tracer.writeback(wb)
    }

    fn on_guard_fail(&mut self, tid: u32, pred: u8, test: PredTest) {
        self.golden.on_guard_fail(tid, pred, test);
        self.tracer.on_guard_fail(tid, pred, test);
    }
}

impl<'a, T: InjectionTarget> Experiment<'a, T> {
    /// Runs the target fault-free — once — to capture the golden output,
    /// calibrate the hang budget, record the golden trace (so
    /// [`Experiment::site_space`] needs no second run) and, for launches
    /// under [`FULL_TRACE_THREAD_LIMIT`] threads, snapshot resumable
    /// checkpoints for the campaign fast path.
    ///
    /// # Errors
    ///
    /// Returns the [`SimFault`] if the *fault-free* run itself faults —
    /// that is a workload bug, not an injection outcome.
    pub fn prepare(target: &'a T) -> Result<Self, SimFault> {
        let _prepare = fsp_obs::span("inject.prepare");
        let launch = target.launch();
        let initial = target.init_memory();
        let mut memory = initial.clone();
        let num_threads = launch.num_threads();
        let trace_all = num_threads <= FULL_TRACE_THREAD_LIMIT;
        let mut tracer = Tracer::new(num_threads, launch.threads_per_cta());
        if trace_all {
            tracer = tracer.with_full_traces(0..num_threads);
        }
        let sim = Simulator::new();
        let mut golden_rec = trace_all.then(|| GoldenRecorder::new(num_threads));
        let (stats, checkpoints) = {
            let _golden = fsp_obs::span("inject.golden_run");
            if let Some(rec) = golden_rec.as_mut() {
                let mut hook = PrepareHook {
                    tracer: &mut tracer,
                    golden: rec,
                };
                sim.run_with_checkpoints(
                    &launch,
                    &mut memory,
                    &mut hook,
                    CheckpointConfig::default(),
                )?
            } else {
                (sim.run(&launch, &mut memory, &mut tracer)?, Vec::new())
            }
        };
        let (addr, len) = target.output_region();
        let golden = memory.read_words(addr, len);
        let budget = (stats.instructions * HANG_FACTOR).max(MIN_BUDGET);
        let golden_trace = golden_rec.map(GoldenRecorder::finish);
        let global_writers = golden_trace
            .as_ref()
            .map(|t| t.global_write_profile(launch.threads_per_cta()))
            .unwrap_or_default();
        Ok(Experiment {
            target,
            launch: launch.instr_budget(budget),
            initial,
            golden,
            fault_free_instructions: stats.instructions,
            trace: tracer.finish(),
            trace_all,
            checkpoints,
            golden_trace,
            global_writers,
            fast_path: true,
            batch: DEFAULT_BATCH,
        })
    }

    /// The target being injected.
    #[must_use]
    pub fn target(&self) -> &T {
        self.target
    }

    /// Dynamic instructions retired by the fault-free run.
    #[must_use]
    pub fn fault_free_instructions(&self) -> u64 {
        self.fault_free_instructions
    }

    /// The golden output words.
    #[must_use]
    pub fn golden(&self) -> &[u32] {
        &self.golden
    }

    /// Resumable golden checkpoints captured by [`Experiment::prepare`]
    /// (empty for launches over [`FULL_TRACE_THREAD_LIMIT`] threads).
    #[must_use]
    pub fn num_checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Enables or disables the checkpoint-resume / early-convergence fast
    /// path (on by default). The slow path re-executes every injected run
    /// from the start and classifies purely by output comparison; it exists
    /// as the differential-testing oracle for the fast path.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Builder-style [`Experiment::set_fast_path`].
    #[must_use]
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Sets the number of shadow lanes per batched replay (clamped to
    /// `1..=`[`MAX_BATCH`]). Campaign sites that resume from the same
    /// golden checkpoint and trigger in the same CTA ride one shared
    /// fault-free replay, up to this many at a time; `1` disables batching
    /// (every site runs solo). Outcomes are byte-identical across batch
    /// sizes — batching only changes how the work is amortized.
    pub fn set_batch(&mut self, lanes: usize) {
        self.batch = lanes.clamp(1, MAX_BATCH);
    }

    /// Builder-style [`Experiment::set_batch`].
    #[must_use]
    pub fn with_batch(mut self, lanes: usize) -> Self {
        self.set_batch(lanes);
        self
    }

    /// Current shadow-lane count per batched replay.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Builds the exhaustive [`SiteSpace`] from the golden trace.
    ///
    /// `full_traces` selects the threads that get full traces (needed for
    /// sampling or enumerating their sites); pass `0..launch.num_threads()`
    /// to make every site addressable. When [`Experiment::prepare`]
    /// already recorded the requested traces (every launch under
    /// [`FULL_TRACE_THREAD_LIMIT`] threads), this is a cheap subset copy;
    /// otherwise it falls back to one traced re-run.
    #[must_use]
    pub fn site_space(&self, full_traces: impl IntoIterator<Item = u32>) -> SiteSpace {
        let requested: Vec<u32> = full_traces.into_iter().collect();
        if self.trace_all || requested.iter().all(|&t| self.trace.full.contains(t)) {
            let full: FullTraces = requested
                .into_iter()
                .map(|t| (t, self.trace.full.get(t).cloned().unwrap_or_default()))
                .collect();
            return SiteSpace::new(KernelTrace {
                icnt: self.trace.icnt.clone(),
                fault_bits: self.trace.fault_bits.clone(),
                threads_per_cta: self.trace.threads_per_cta,
                full,
            });
        }
        let mut tracer = Tracer::new(self.launch.num_threads(), self.launch.threads_per_cta())
            .with_full_traces(requested);
        let mut memory = self.initial.clone();
        Simulator::new()
            .run(&self.launch, &mut memory, &mut tracer)
            .expect("fault-free run cannot fault after successful prepare()");
        SiteSpace::new(tracer.finish())
    }

    /// The latest checkpoint taken strictly before `site`'s flip could
    /// retire: per-thread `icnt` is nondecreasing across checkpoints, so
    /// this is the last one where the site's thread had retired at most
    /// `dyn_idx` instructions (the flip itself is still ahead).
    fn checkpoint_for(&self, site: crate::FaultSite) -> Option<&Checkpoint> {
        let p = self
            .checkpoints
            .partition_point(|c| c.icnt(site.tid) <= site.dyn_idx);
        p.checked_sub(1).map(|i| &self.checkpoints[i])
    }

    /// Batch-group identity of a site's resume point: `0` for a cold start,
    /// `i + 1` for checkpoint `i`. Sites sharing a key restore identical
    /// machine state, so they can ride one replay.
    fn checkpoint_key(&self, site: crate::FaultSite) -> usize {
        self.checkpoints
            .partition_point(|c| c.icnt(site.tid) <= site.dyn_idx)
    }

    /// The batch-group sort key of a site: `(CTA, resume point)`. Campaign
    /// batching co-schedules sites sharing a CTA — a batch resumes from the
    /// *earliest* checkpoint among its lanes, which is sound for every
    /// later lane because per-thread retired counts are monotone across
    /// checkpoints, so the earlier restore point still precedes each
    /// lane's trigger. Sorting by resume point within the CTA keeps the
    /// checkpoint spread inside one batch small. Distributed chunk
    /// formation (fsp-serve / fsp-fleet) aligns lease boundaries to CTA
    /// groups so a lease split never tears a batch.
    #[must_use]
    pub fn batch_group_key(&self, site: crate::FaultSite) -> (u32, usize) {
        (
            site.tid / self.launch.threads_per_cta().max(1),
            self.checkpoint_key(site),
        )
    }

    /// Runs one single-bit-flip injection and classifies its outcome.
    #[must_use]
    pub fn run_one(&self, site: crate::FaultSite) -> Outcome {
        self.run_one_with(site, crate::FaultModel::SingleBitFlip)
    }

    /// Runs one injection under an explicit [`crate::FaultModel`].
    #[must_use]
    pub fn run_one_with(&self, site: crate::FaultSite, model: crate::FaultModel) -> Outcome {
        self.run_one_detailed(site, model).0
    }

    /// Runs one injection and, for SDC outcomes, also reports the output's
    /// relative L2 error vs the golden run (SDC severity — see
    /// [`crate::relative_l2_error`]).
    #[must_use]
    pub fn run_one_detailed(
        &self,
        site: crate::FaultSite,
        model: crate::FaultModel,
    ) -> (Outcome, Option<f64>) {
        let mut scratch = self.initial.clone();
        let mut resume = ResumeScratch::default();
        let (outcome, severity, _) = self.run_one_in(site, model, &mut scratch, &mut resume);
        (outcome, severity)
    }

    /// Runs one injection in a caller-owned scratch memory block (reused
    /// across calls to amortize allocation). This is the campaign hot path.
    fn run_one_in(
        &self,
        site: crate::FaultSite,
        model: crate::FaultModel,
        scratch: &mut MemBlock,
        resume: &mut ResumeScratch,
    ) -> (Outcome, Option<f64>, RunMeta) {
        let start_ns = fsp_obs::now_ns();
        let sim = Simulator::new();
        let mut meta = RunMeta::default();
        let mut fast_used = false;
        let mut bailed = false;
        let result = if let (true, Some(golden_trace)) = (self.fast_path, &self.golden_trace) {
            fast_used = true;
            let mut hook = FastInjectionHook::new(
                site,
                model,
                golden_trace,
                &self.global_writers,
                self.launch.threads_per_cta(),
            );
            let run = match self.checkpoint_for(site) {
                Some(cp) => {
                    meta.ckpt_hit = true;
                    meta.skipped = cp.retired();
                    sim.run_from_with(cp, &self.launch, scratch, &mut hook, resume)
                }
                None => {
                    scratch.clone_from(&self.initial);
                    sim.run(&self.launch, scratch, &mut hook)
                }
            };
            bailed = hook.bailed();
            match run {
                Ok(stats) => {
                    meta.executed = stats.instructions;
                    if hook.converged() {
                        // The divergence set emptied: the machine state
                        // equals the golden state at this schedule point,
                        // and determinism forces the golden outcome.
                        meta.early = true;
                        inject_metrics().record_run(meta, true, false, Outcome::Masked, start_ns);
                        return (Outcome::Masked, None, meta);
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else {
            scratch.clone_from(&self.initial);
            let mut hook = InjectionHook::with_model(site, model);
            match sim.run(&self.launch, scratch, &mut hook) {
                Ok(stats) => {
                    meta.executed = stats.instructions;
                    Ok(())
                }
                Err(e) => Err(e),
            }
        };
        let (outcome, severity) = match result {
            Err(SimFault::BudgetExceeded) => (Outcome::HANG, None),
            Err(SimFault::DetectedExit { .. }) => (Outcome::Detected, None),
            Err(_) => (Outcome::CRASH, None),
            Ok(()) => {
                let (addr, len) = self.target.output_region();
                if scratch.region_eq(addr, &self.golden) {
                    (Outcome::Masked, None)
                } else {
                    let out = scratch.read_words(addr, len);
                    (
                        Outcome::Sdc,
                        Some(crate::relative_l2_error(&self.golden, &out)),
                    )
                }
            }
        };
        inject_metrics().record_run(meta, fast_used, bailed, outcome, start_ns);
        (outcome, severity, meta)
    }

    /// Runs one batched replay over sites sharing a batch group (same
    /// resume checkpoint, same CTA): a single fault-free resumed simulation
    /// drives one shadow lane per site, lanes whose outcome the tracker
    /// cannot classify are re-run through [`Experiment::run_one_in`], and
    /// the per-site outcomes are appended to `outs` in site order.
    fn run_batch_in(
        &self,
        batch_sites: &[crate::FaultSite],
        model: crate::FaultModel,
        scratch: &mut MemBlock,
        resume: &mut ResumeScratch,
        outs: &mut Vec<Outcome>,
    ) -> BatchRunMeta {
        let _span = fsp_obs::span_labeled("inject.batch", format!("{} lanes", batch_sites.len()));
        let sim = Simulator::new();
        let mut hook = BatchInjectionHook::new(
            batch_sites,
            model,
            self.launch.num_threads(),
            self.launch.threads_per_cta(),
            self.target.output_region(),
        );
        let mut meta = BatchRunMeta::default();
        let cp = self.checkpoint_for(batch_sites[0]);
        let run = match cp {
            Some(cp) => sim.run_from_with(cp, &self.launch, scratch, &mut hook, resume),
            None => {
                scratch.clone_from(&self.initial);
                sim.run(&self.launch, scratch, &mut hook)
            }
        };
        match run {
            Ok(stats) => meta.executed += stats.instructions,
            // The shared replay is fault-free by construction; a fault here
            // means no lane outcome can be attributed — solo-rerun them all.
            Err(_) => hook.demote_all(),
        }
        let ends = hook.finish();
        let metrics = batch_metrics();
        metrics.lanes.record(batch_sites.len() as u64);
        meta.replays = 1;
        for (&site, &end) in batch_sites.iter().zip(&ends) {
            metrics.lane_end[lane_end_index(end)].inc();
            match end {
                LaneEnd::Resolved(outcome, cause) => {
                    if let Some(cp) = cp {
                        meta.hits += 1;
                        meta.skipped += cp.retired();
                    }
                    meta.early += u64::from(cause == RetireCause::Converged);
                    meta.lanes += 1;
                    outs.push(outcome);
                }
                LaneEnd::Demoted(_) => {
                    let (outcome, _, rm) = self.run_one_in(site, model, scratch, resume);
                    meta.hits += u64::from(rm.ckpt_hit);
                    meta.skipped += rm.skipped;
                    meta.executed += rm.executed;
                    meta.early += u64::from(rm.early);
                    outs.push(outcome);
                }
            }
        }
        meta
    }

    /// Runs a single-bit-flip campaign over `sites` on `workers` OS
    /// threads (`0` is clamped to 1).
    ///
    /// Outcomes are indexed by site position, so the result is deterministic
    /// regardless of scheduling.
    #[must_use]
    pub fn run_campaign(&self, sites: &[WeightedSite], workers: usize) -> CampaignResult {
        self.run_campaign_with(sites, crate::FaultModel::SingleBitFlip, workers)
    }

    /// Runs a campaign under an explicit [`crate::FaultModel`] (`workers ==
    /// 0` is clamped to 1).
    #[must_use]
    pub fn run_campaign_with(
        &self,
        sites: &[WeightedSite],
        model: crate::FaultModel,
        workers: usize,
    ) -> CampaignResult {
        let run = self.run_campaign_incremental(sites, model, workers, &[], &NopObserver);
        run.into_result(sites)
            .expect("uncancellable campaign always completes")
    }

    /// Runs a campaign incrementally: sites whose outcome is already known
    /// (`resolved[i] == Some(..)` — e.g. from a persistent outcome store)
    /// are taken as-is, only the remainder is injected, and `observer`
    /// receives chunk-level progress and may cancel between chunks.
    ///
    /// `resolved` must be empty (nothing pre-resolved) or exactly
    /// `sites.len()` long. `workers == 0` is clamped to 1.
    ///
    /// Unresolved sites are scheduled in checkpoint order (all sites
    /// resuming from the same golden snapshot run back to back), which
    /// keeps each worker's copy-on-write scratch memory warm; outcomes are
    /// still indexed by site position, so the result is deterministic in
    /// site order regardless of worker count and of how the outcomes are
    /// split between `resolved` and fresh injections: a fully warm run, a
    /// resumed run and a cold run of the same sites produce identical
    /// outcome vectors.
    ///
    /// # Panics
    ///
    /// Panics if `resolved` is non-empty with a length other than
    /// `sites.len()`.
    #[must_use]
    pub fn run_campaign_incremental(
        &self,
        sites: &[WeightedSite],
        model: crate::FaultModel,
        workers: usize,
        resolved: &[Option<Outcome>],
        observer: &dyn CampaignObserver,
    ) -> IncrementalCampaign {
        assert!(
            resolved.is_empty() || resolved.len() == sites.len(),
            "resolved length {} does not match {} sites",
            resolved.len(),
            sites.len()
        );
        let _campaign = fsp_obs::span_labeled("inject.campaign", format!("{} sites", sites.len()));
        let mut outcomes: Vec<Option<Outcome>> = if resolved.is_empty() {
            vec![None; sites.len()]
        } else {
            resolved.to_vec()
        };
        let from_cache = outcomes.iter().filter(|o| o.is_some()).count();
        // Checkpoint-locality schedule: unresolved sites ordered by resume
        // position (ties broken by site index for determinism of the
        // *schedule*; outcomes are order-independent).
        let batched = self.fast_path && self.golden_trace.is_some() && self.batch > 1;
        let order: Vec<usize> = {
            let mut v: Vec<usize> = (0..sites.len())
                .filter(|&i| outcomes[i].is_none())
                .collect();
            if batched {
                // Batch-group order: sites sharing a CTA land adjacent,
                // sorted by resume point, so unit formation below can
                // co-schedule them with a small checkpoint spread.
                v.sort_by_key(|&i| {
                    let (cta, ckpt) = self.batch_group_key(sites[i].site);
                    (cta, ckpt, i)
                });
            } else if self.fast_path {
                v.sort_by_key(|&i| {
                    (
                        self.checkpoint_for(sites[i].site)
                            .map_or(0, Checkpoint::retired),
                        i,
                    )
                });
            }
            v
        };
        // Work units claimed by workers: runs of the schedule sharing a
        // CTA (capped at the lane budget) when batching, plain fixed-size
        // chunks otherwise. A batch resumes from its first lane's
        // checkpoint — the earliest in the unit, since the schedule sorts
        // by resume point within the CTA. Single-site units always take
        // the solo path, so a lane budget of 1 is *exactly* the solo
        // campaign.
        let units: Vec<(usize, usize)> = if batched {
            let mut u = Vec::new();
            let mut start = 0;
            while start < order.len() {
                let (cta, _) = self.batch_group_key(sites[order[start]].site);
                let mut end = start + 1;
                while end < order.len()
                    && end - start < self.batch
                    && self.batch_group_key(sites[order[end]].site).0 == cta
                {
                    end += 1;
                }
                u.push((start, end));
                start = end;
            }
            u
        } else {
            (0..order.len())
                .step_by(CHUNK)
                .map(|s| (s, (s + CHUNK).min(order.len())))
                .collect()
        };
        let injected = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let checkpoint_hits = AtomicU64::new(0);
        let skipped_instructions = AtomicU64::new(0);
        let executed_instructions = AtomicU64::new(0);
        let early_converged = AtomicU64::new(0);
        let batch_replays = AtomicU64::new(0);
        let batch_lanes = AtomicU64::new(0);
        {
            // Workers claim chunks of the schedule via the cursor and run
            // them against a private scratch memory; the mutex guards only
            // the brief scatter write of finished outcomes, so the
            // injection hot path runs lock-free.
            let results = Mutex::new(&mut outcomes);
            std::thread::scope(|scope| {
                for _ in 0..workers.max(1).min(order.len().max(1)) {
                    scope.spawn(|| {
                        let mut scratch = self.initial.clone();
                        let mut resume = ResumeScratch::default();
                        loop {
                            if cancelled.load(Ordering::Relaxed) || observer.should_cancel() {
                                cancelled.store(true, Ordering::Relaxed);
                                break;
                            }
                            let unit = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&(lo, hi)) = units.get(unit) else {
                                break;
                            };
                            let indices = &order[lo..hi];
                            let _chunk = fsp_obs::span("inject.chunk");
                            let mut outs = Vec::with_capacity(indices.len());
                            let (mut hits, mut skipped, mut executed, mut early) =
                                (0u64, 0u64, 0u64, 0u64);
                            if batched && indices.len() > 1 {
                                let batch_sites: Vec<crate::FaultSite> =
                                    indices.iter().map(|&i| sites[i].site).collect();
                                let bm = self.run_batch_in(
                                    &batch_sites,
                                    model,
                                    &mut scratch,
                                    &mut resume,
                                    &mut outs,
                                );
                                hits += bm.hits;
                                skipped += bm.skipped;
                                executed += bm.executed;
                                early += bm.early;
                                batch_replays.fetch_add(bm.replays, Ordering::Relaxed);
                                batch_lanes.fetch_add(bm.lanes, Ordering::Relaxed);
                            } else {
                                for &i in indices {
                                    let (o, _, meta) = self.run_one_in(
                                        sites[i].site,
                                        model,
                                        &mut scratch,
                                        &mut resume,
                                    );
                                    hits += u64::from(meta.ckpt_hit);
                                    skipped += meta.skipped;
                                    executed += meta.executed;
                                    early += u64::from(meta.early);
                                    outs.push(o);
                                }
                            }
                            injected.fetch_add(indices.len(), Ordering::Relaxed);
                            checkpoint_hits.fetch_add(hits, Ordering::Relaxed);
                            skipped_instructions.fetch_add(skipped, Ordering::Relaxed);
                            executed_instructions.fetch_add(executed, Ordering::Relaxed);
                            early_converged.fetch_add(early, Ordering::Relaxed);
                            let im = inject_metrics();
                            for &o in &outs {
                                im.outcome_total[outcome_index(o)].inc();
                            }
                            {
                                let mut slots = results.lock().expect("campaign worker panicked");
                                for (&i, &o) in indices.iter().zip(&outs) {
                                    slots[i] = Some(o);
                                }
                            }
                            observer.on_chunk(indices, &outs);
                        }
                    });
                }
            });
        }
        IncrementalCampaign {
            outcomes,
            injected: injected.into_inner(),
            from_cache,
            cancelled: cancelled.into_inner(),
            checkpoint_hits: checkpoint_hits.into_inner(),
            skipped_instructions: skipped_instructions.into_inner(),
            executed_instructions: executed_instructions.into_inner(),
            early_converged: early_converged.into_inner(),
            batch_replays: batch_replays.into_inner(),
            batch_lanes: batch_lanes.into_inner(),
        }
    }
}

/// The result of a campaign: per-site outcomes plus the weighted profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Outcome per injected site, in input order.
    pub outcomes: Vec<Outcome>,
    /// The weighted resilience profile.
    pub profile: ResilienceProfile,
}

/// The result of an incremental campaign run (see
/// [`Experiment::run_campaign_incremental`]): possibly partial when the
/// observer cancelled it.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalCampaign {
    /// Per-site outcomes in input order; `None` marks sites the campaign
    /// was cancelled before reaching.
    pub outcomes: Vec<Option<Outcome>>,
    /// Sites actually injected by this run.
    pub injected: usize,
    /// Sites resolved from the caller-supplied outcomes (cache hits).
    pub from_cache: usize,
    /// Whether the observer stopped the campaign before it finished.
    pub cancelled: bool,
    /// Injected runs that resumed from a golden checkpoint.
    pub checkpoint_hits: u64,
    /// Golden-prefix instructions skipped via checkpoint resume.
    pub skipped_instructions: u64,
    /// Instructions actually executed by completed injected runs.
    pub executed_instructions: u64,
    /// Injected runs classified `Masked` by early convergence.
    pub early_converged: u64,
    /// Shared golden replays run by the batched fast path (0 when the
    /// campaign ran solo).
    pub batch_replays: u64,
    /// Lanes resolved on a shared replay without a solo fallback;
    /// `batch_lanes / batch_replays` is the effective lane occupancy.
    pub batch_lanes: u64,
}

impl IncrementalCampaign {
    /// Whether every site has an outcome.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(Option::is_some)
    }

    /// The weighted profile over the sites resolved so far, accumulated in
    /// site order (so a complete run's partial profile is bit-identical
    /// across worker counts and cache splits).
    #[must_use]
    pub fn partial_profile(&self, sites: &[WeightedSite]) -> ResilienceProfile {
        let mut profile = ResilienceProfile::new();
        for (ws, o) in sites.iter().zip(&self.outcomes) {
            if let Some(o) = o {
                profile.record_weighted(*o, ws.weight);
            }
        }
        profile
    }

    /// Converts a complete run into a [`CampaignResult`]; returns `None`
    /// if any site is still unresolved.
    #[must_use]
    pub fn into_result(self, sites: &[WeightedSite]) -> Option<CampaignResult> {
        let profile = self.partial_profile(sites);
        let outcomes: Option<Vec<Outcome>> = self.outcomes.into_iter().collect();
        outcomes.map(|outcomes| CampaignResult { outcomes, profile })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::CountdownTarget;
    use crate::FaultSite;

    #[test]
    fn prepare_captures_golden() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        assert!(e.fault_free_instructions() > 0);
        assert!(!e.golden().is_empty());
    }

    #[test]
    fn masked_sdc_hang_all_reachable() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        // Exhaust every site of thread 0 and tally; the countdown kernel is
        // engineered so all three outcome classes occur.
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let result = e.run_campaign(&sites, 2);
        assert!(result.profile.masked() > 0.0, "some flips must mask");
        assert!(result.profile.sdc() > 0.0, "some flips must corrupt output");
        assert!(result.profile.other() > 0.0, "some flips must hang/crash");
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(1).map(WeightedSite::from).collect();
        let a = e.run_campaign(&sites, 1);
        let b = e.run_campaign(&sites, 4);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let a = e.run_campaign(&sites, 0);
        let b = e.run_campaign(&sites, 1);
        assert_eq!(a.outcomes, b.outcomes);
    }

    /// The tentpole's correctness contract in miniature: the fast path
    /// (checkpoint resume + early convergence) and the slow path (full
    /// re-execution, output comparison only) must agree on every outcome
    /// *and* every SDC severity, under every fault model.
    #[test]
    fn fast_path_matches_slow_path_everywhere() {
        let t = CountdownTarget::new();
        let fast = Experiment::prepare(&t).unwrap();
        let slow = Experiment::prepare(&t).unwrap().with_fast_path(false);
        let space = fast.site_space(0..4);
        let sites: Vec<WeightedSite> = (0..4)
            .flat_map(|tid| space.thread_site_iter(tid))
            .map(WeightedSite::from)
            .collect();
        for model in crate::FaultModel::ALL {
            for ws in &sites {
                let (of, sf) = fast.run_one_detailed(ws.site, model);
                let (os, ss) = slow.run_one_detailed(ws.site, model);
                assert_eq!(of, os, "outcome diverged at {:?} under {model:?}", ws.site);
                assert_eq!(sf, ss, "severity diverged at {:?} under {model:?}", ws.site);
            }
        }
    }

    #[test]
    fn campaign_counters_are_consistent() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = (0..4)
            .flat_map(|tid| space.thread_site_iter(tid))
            .map(WeightedSite::from)
            .collect();
        let run = e.run_campaign_incremental(
            &sites,
            crate::FaultModel::SingleBitFlip,
            2,
            &[],
            &NopObserver,
        );
        assert!(run.is_complete());
        assert_eq!(run.injected, sites.len());
        assert!(
            run.early_converged > 0,
            "dead-register flips converge early"
        );
        assert!(run.early_converged <= run.injected as u64);
        assert!(run.executed_instructions > 0);
        assert_eq!(
            run.checkpoint_hits > 0,
            e.num_checkpoints() > 0,
            "hits iff checkpoints exist"
        );
    }

    #[test]
    fn incremental_resolves_cache_hits_without_injecting() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let cold = e.run_campaign(&sites, 2);
        // Pre-resolve every other site from the cold run; the warm run must
        // inject exactly the gaps and reproduce the cold outcomes.
        let resolved: Vec<Option<Outcome>> = cold
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, &o)| (i % 2 == 0).then_some(o))
            .collect();
        let hits = resolved.iter().filter(|o| o.is_some()).count();
        let warm = e.run_campaign_incremental(
            &sites,
            crate::FaultModel::SingleBitFlip,
            2,
            &resolved,
            &NopObserver,
        );
        assert!(warm.is_complete() && !warm.cancelled);
        assert_eq!(warm.from_cache, hits);
        assert_eq!(warm.injected, sites.len() - hits);
        let warm = warm.into_result(&sites).unwrap();
        assert_eq!(warm.outcomes, cold.outcomes);
        assert_eq!(warm.profile, cold.profile);
    }

    #[test]
    fn observer_sees_chunks_and_can_cancel() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct CancelAfter {
            seen: AtomicUsize,
            limit: usize,
        }
        impl CampaignObserver for CancelAfter {
            fn on_chunk(&self, indices: &[usize], outcomes: &[Outcome]) {
                assert_eq!(indices.len(), outcomes.len());
                self.seen.fetch_add(outcomes.len(), Ordering::Relaxed);
            }
            fn should_cancel(&self) -> bool {
                self.seen.load(Ordering::Relaxed) >= self.limit
            }
        }

        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = (0..4)
            .flat_map(|tid| space.thread_site_iter(tid))
            .map(WeightedSite::from)
            .collect();
        let observer = CancelAfter {
            seen: AtomicUsize::new(0),
            limit: 32,
        };
        let run =
            e.run_campaign_incremental(&sites, crate::FaultModel::SingleBitFlip, 1, &[], &observer);
        assert!(run.cancelled);
        assert!(!run.is_complete(), "cancellation must leave sites undone");
        assert!(run.injected >= 32, "claimed chunks run to completion");
        assert!(run.injected < sites.len());
        // The partial outcomes agree with an uninterrupted run site-by-site.
        let full = e.run_campaign(&sites, 2);
        for (i, o) in run.outcomes.iter().enumerate() {
            if let Some(o) = o {
                assert_eq!(*o, full.outcomes[i]);
            }
        }
    }

    #[test]
    fn unreached_site_is_masked() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let o = e.run_one(FaultSite {
            tid: 999,
            dyn_idx: 0,
            bit: 0,
        });
        assert_eq!(o, Outcome::Masked);
    }
}
