//! Golden-run preparation, single injections and parallel campaigns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fsp_sim::{Launch, MemBlock, SimFault, Simulator, Tracer};
use fsp_stats::{Outcome, ResilienceProfile};

use crate::hook::InjectionHook;
use crate::site::{SiteSpace, WeightedSite};
use crate::target::InjectionTarget;

/// Hang-detection margin: an injected run may retire at most this many
/// times the fault-free dynamic instruction count before being declared
/// hung.
const HANG_FACTOR: u64 = 10;
/// Floor for the hang budget, so tiny kernels still tolerate benign
/// control-flow perturbations.
const MIN_BUDGET: u64 = 100_000;

/// A prepared injection experiment: golden output, initial memory image and
/// calibrated hang budget for one target.
#[derive(Debug)]
pub struct Experiment<'a, T: InjectionTarget> {
    target: &'a T,
    launch: Launch,
    initial: MemBlock,
    golden: Vec<u32>,
    fault_free_instructions: u64,
}

impl<'a, T: InjectionTarget> Experiment<'a, T> {
    /// Runs the target fault-free to capture the golden output and
    /// calibrate the hang budget.
    ///
    /// # Errors
    ///
    /// Returns the [`SimFault`] if the *fault-free* run itself faults —
    /// that is a workload bug, not an injection outcome.
    pub fn prepare(target: &'a T) -> Result<Self, SimFault> {
        let launch = target.launch();
        let initial = target.init_memory();
        let mut memory = initial.clone();
        let stats = Simulator::new().run(&launch, &mut memory, &mut fsp_sim::NopHook)?;
        let (addr, len) = target.output_region();
        let golden = memory.read_slice(addr, len).to_vec();
        let budget = (stats.instructions * HANG_FACTOR).max(MIN_BUDGET);
        Ok(Experiment {
            target,
            launch: launch.instr_budget(budget),
            initial,
            golden,
            fault_free_instructions: stats.instructions,
        })
    }

    /// The target being injected.
    #[must_use]
    pub fn target(&self) -> &T {
        self.target
    }

    /// Dynamic instructions retired by the fault-free run.
    #[must_use]
    pub fn fault_free_instructions(&self) -> u64 {
        self.fault_free_instructions
    }

    /// The golden output words.
    #[must_use]
    pub fn golden(&self) -> &[u32] {
        &self.golden
    }

    /// Traces the fault-free run and builds the exhaustive [`SiteSpace`].
    ///
    /// `full_traces` selects the threads that get full traces (needed for
    /// sampling or enumerating their sites); pass `0..launch.num_threads()`
    /// to make every site addressable.
    #[must_use]
    pub fn site_space(&self, full_traces: impl IntoIterator<Item = u32>) -> SiteSpace {
        let mut tracer = Tracer::new(self.launch.num_threads(), self.launch.threads_per_cta())
            .with_full_traces(full_traces);
        let mut memory = self.initial.clone();
        Simulator::new()
            .run(&self.launch, &mut memory, &mut tracer)
            .expect("fault-free run cannot fault after successful prepare()");
        SiteSpace::new(tracer.finish())
    }

    /// Runs one single-bit-flip injection and classifies its outcome.
    #[must_use]
    pub fn run_one(&self, site: crate::FaultSite) -> Outcome {
        self.run_one_with(site, crate::FaultModel::SingleBitFlip)
    }

    /// Runs one injection under an explicit [`crate::FaultModel`].
    #[must_use]
    pub fn run_one_with(&self, site: crate::FaultSite, model: crate::FaultModel) -> Outcome {
        self.run_one_detailed(site, model).0
    }

    /// Runs one injection and, for SDC outcomes, also reports the output's
    /// relative L2 error vs the golden run (SDC severity — see
    /// [`crate::relative_l2_error`]).
    #[must_use]
    pub fn run_one_detailed(
        &self,
        site: crate::FaultSite,
        model: crate::FaultModel,
    ) -> (Outcome, Option<f64>) {
        let mut memory = self.initial.clone();
        let mut hook = InjectionHook::with_model(site, model);
        match Simulator::new().run(&self.launch, &mut memory, &mut hook) {
            Err(SimFault::BudgetExceeded) => (Outcome::HANG, None),
            Err(_) => (Outcome::CRASH, None),
            Ok(_) => {
                let (addr, len) = self.target.output_region();
                let out = memory.read_slice(addr, len);
                if out == self.golden.as_slice() {
                    (Outcome::Masked, None)
                } else {
                    (
                        Outcome::Sdc,
                        Some(crate::relative_l2_error(&self.golden, out)),
                    )
                }
            }
        }
    }

    /// Runs a single-bit-flip campaign over `sites` on `workers` OS
    /// threads.
    ///
    /// Outcomes are indexed by site position, so the result is deterministic
    /// regardless of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn run_campaign(&self, sites: &[WeightedSite], workers: usize) -> CampaignResult {
        self.run_campaign_with(sites, crate::FaultModel::SingleBitFlip, workers)
    }

    /// Runs a campaign under an explicit [`crate::FaultModel`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn run_campaign_with(
        &self,
        sites: &[WeightedSite],
        model: crate::FaultModel,
        workers: usize,
    ) -> CampaignResult {
        assert!(workers > 0, "campaign needs at least one worker");
        let next = AtomicUsize::new(0);
        let outcomes = Mutex::new(vec![Outcome::Masked; sites.len()]);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(sites.len().max(1)) {
                scope.spawn(|| {
                    // Chunked work-stealing keeps lock traffic negligible.
                    const CHUNK: usize = 16;
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= sites.len() {
                            break;
                        }
                        let end = (start + CHUNK).min(sites.len());
                        let mut local = Vec::with_capacity(end - start);
                        for ws in &sites[start..end] {
                            local.push(self.run_one_with(ws.site, model));
                        }
                        outcomes.lock().expect("campaign worker panicked")[start..end]
                            .copy_from_slice(&local);
                    }
                });
            }
        });
        let outcomes = outcomes.into_inner().expect("campaign worker panicked");
        let mut profile = ResilienceProfile::new();
        for (ws, &o) in sites.iter().zip(&outcomes) {
            profile.record_weighted(o, ws.weight);
        }
        CampaignResult { outcomes, profile }
    }
}

/// The result of a campaign: per-site outcomes plus the weighted profile.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Outcome per injected site, in input order.
    pub outcomes: Vec<Outcome>,
    /// The weighted resilience profile.
    pub profile: ResilienceProfile,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::CountdownTarget;
    use crate::FaultSite;

    #[test]
    fn prepare_captures_golden() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        assert!(e.fault_free_instructions() > 0);
        assert!(!e.golden().is_empty());
    }

    #[test]
    fn masked_sdc_hang_all_reachable() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        // Exhaust every site of thread 0 and tally; the countdown kernel is
        // engineered so all three outcome classes occur.
        let sites: Vec<WeightedSite> = space.thread_site_iter(0).map(WeightedSite::from).collect();
        let result = e.run_campaign(&sites, 2);
        assert!(result.profile.masked() > 0.0, "some flips must mask");
        assert!(result.profile.sdc() > 0.0, "some flips must corrupt output");
        assert!(result.profile.other() > 0.0, "some flips must hang/crash");
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let space = e.site_space(0..4);
        let sites: Vec<WeightedSite> = space.thread_site_iter(1).map(WeightedSite::from).collect();
        let a = e.run_campaign(&sites, 1);
        let b = e.run_campaign(&sites, 4);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn unreached_site_is_masked() {
        let t = CountdownTarget::new();
        let e = Experiment::prepare(&t).unwrap();
        let o = e.run_one(FaultSite {
            tid: 999,
            dyn_idx: 0,
            bit: 0,
        });
        assert_eq!(o, Outcome::Masked);
    }
}
