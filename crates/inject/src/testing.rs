//! Tiny targets for tests, docs and benches.

use std::sync::Arc;

use fsp_isa::{assemble, KernelProgram};
use fsp_sim::{Launch, MemBlock};

use crate::target::InjectionTarget;

/// A 4-thread countdown kernel engineered so that single-bit flips can
/// produce *every* outcome class:
///
/// * flips in the dead register `$r4` (and in unused predicate flag bits)
///   are **masked**;
/// * flips in the running sum or the output address's low bits cause
///   **SDC**;
/// * flips in the address's high bits cause a **crash** (out-of-bounds
///   store);
/// * flips in the loop counter can inflate the countdown by billions of
///   iterations, tripping the hang budget — a **hang**.
#[derive(Debug, Clone)]
pub struct CountdownTarget {
    program: Arc<KernelProgram>,
}

impl CountdownTarget {
    /// Number of threads the target launches.
    pub const THREADS: u32 = 4;

    /// Creates the target.
    ///
    /// # Panics
    ///
    /// Never in practice; the embedded assembly is covered by tests.
    #[must_use]
    pub fn new() -> Self {
        let program = assemble(
            "countdown",
            r#"
            cvt.u32.u16 $r1, %tid.x
            mov.u32 $r2, 0x4
            add.u32 $r2, $r2, $r1              // counter = 4 + tid
            mov.u32 $r3, 0x0                   // sum
            loop:
            add.u32 $r3, $r3, $r2
            sub.u32 $r2, $r2, 0x1
            set.ne.u32.u32 $p0/$o127, $r2, $r124
            @$p0.ne bra loop
            mov.u32 $r4, 0xDEAD                // dead value: flips mask
            shl.u32 $r5, $r1, 0x2
            add.u32 $r5, $r5, s[0x0010]        // out[tid]
            st.global.u32 [$r5], $r3
            exit
            "#,
        )
        .expect("countdown kernel assembles");
        CountdownTarget {
            program: Arc::new(program),
        }
    }
}

impl Default for CountdownTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl InjectionTarget for CountdownTarget {
    fn name(&self) -> &str {
        "countdown"
    }

    fn launch(&self) -> Launch {
        Launch::new(Arc::clone(&self.program))
            .grid(1, 1)
            .block(Self::THREADS, 1, 1)
            .param(0)
    }

    fn init_memory(&self) -> MemBlock {
        MemBlock::with_words(Self::THREADS as usize)
    }

    fn output_region(&self) -> (u32, usize) {
        (0, Self::THREADS as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_sim::{NopHook, Simulator};

    #[test]
    fn golden_outputs_are_triangle_numbers() {
        let t = CountdownTarget::new();
        let mut memory = t.init_memory();
        Simulator::new()
            .run(&t.launch(), &mut memory, &mut NopHook)
            .unwrap();
        // sum over k..=1 of k for counter = 4 + tid.
        assert_eq!(memory.to_vec(), [10, 15, 21, 28]);
    }
}
