//! Batched multi-lane injection: one golden sweep drives N fault sites.
//!
//! A campaign over sites that resume from the same golden checkpoint and
//! trigger inside the same CTA repeats the same work per site: checkpoint
//! restore, instruction decode/dispatch, operand resolution and the golden
//! comparison all walk the *same* instruction stream. [`BatchInjectionHook`]
//! amortizes that walk: it rides a **single** fault-free replay (the machine
//! state stays golden throughout — the hook never overrides a write-back)
//! and maintains up to [`MAX_BATCH`] fault "shadow lanes", each the exact
//! divergence set of one injected run relative to the golden stream flowing
//! past.
//!
//! The key identity making this sound is the one the solo fast path
//! ([`crate::FastInjectionHook`]) already relies on, applied in reverse:
//! as long as an injected run retires the *same instruction stream* as the
//! golden run, its machine state is `golden state + divergence set`. The
//! solo tracker executes the faulty run and diffs against a recorded golden
//! trace; the batch tracker executes the golden run and *recomputes* each
//! lane's divergent values from [`fsp_sim::RetireEvent::srcs`] through
//! [`fsp_sim::eval_op`] — the very evaluator the simulator commits through,
//! so lane values are bit-identical to a real faulty execution by
//! construction.
//!
//! Per dynamic instruction the stream is decoded, its operands resolved and
//! its result evaluated **once**; each lane then pays only for events that
//! can touch its divergence set (screened by per-thread and per-address
//! bitmasks over all lanes at once). Lanes retire independently:
//!
//! * **Converged** — the lane's set empties after its flip: machine state
//!   equals golden state, determinism forces the golden outcome → `Masked`.
//! * **Untriggered** — the site's destination bit was never written (stale
//!   site): the run is the golden run → `Masked`.
//! * **End of stream** — the replay finishes with the lane's set still
//!   open: the lane's final memory is `golden + overlay`, so the output
//!   comparison reduces to "does the overlay intersect the output region"
//!   → `Sdc` or `Masked` without materializing the lane's memory.
//! * **Demoted** — the lane would leave the golden stream (a diverged
//!   predicate flips a guard, a diverged register feeds an address) or
//!   outgrows its set budget: only *that lane* falls back to the solo path;
//!   the batch keeps going.
//!
//! A lane that is never demoted provably retires exactly the golden stream
//! (every guard it would evaluate differently and every address it would
//! compute differently demotes it first), so tracked lanes can never crash,
//! hang or trap — those outcomes always surface through the solo fallback.

use fsp_isa::{Dest, MemRef, MemSpace, Opcode, Operand, PredTest, Register};
use fsp_sim::{apply_half_neg, eval_op, flags_of, operand_ty, pred_test, ExecHook, RetireEvent};
use fsp_stats::Outcome;

use crate::fastpath::{reg_key, space_code};
use crate::model::FaultModel;
use crate::site::FaultSite;

/// Hard lane-count ceiling: lane sets are screened through `u64` bitmasks.
pub const MAX_BATCH: usize = 64;

/// Default lanes per batched replay. Chosen with the workload suite:
/// occupancy (lanes that stay tracked) falls off past a few dozen lanes
/// because groups sharing a (checkpoint, CTA) are rarely larger, while the
/// per-event screening cost keeps growing with divergent-set size.
pub const DEFAULT_BATCH: usize = 16;

/// Per-lane cap on total divergence entries (registers + memory words).
/// Sets this wide almost never converge; scanning them per event costs more
/// than re-running the lane solo.
const LANE_ENTRY_CAP: usize = 192;

/// Per-lane budget of *processed* events after its flip, mirroring the solo
/// tracker's `TRACK_WINDOW`: most masking overwrites land within a few
/// hundred instructions, and a lane still divergent after this much tracked
/// work almost always stays divergent.
const LANE_TRACK_WINDOW: u32 = 4096;

/// Space codes (see [`space_code`]), named for the scans below.
const GLOBAL: u8 = 0;
const SHARED: u8 = 1;
const LOCAL: u8 = 2;

/// Why a tracked lane retired with a classified outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RetireCause {
    /// Divergence set emptied post-flip: early `Masked`.
    Converged,
    /// The site's destination bit was never written.
    Untriggered,
    /// Stream ended with divergence outside the output region.
    EndMasked,
    /// Stream ended with a divergent output word.
    EndSdc,
}

/// Why a lane was handed back to the solo path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DemoteCause {
    /// A diverged predicate would steer a guard differently.
    Control,
    /// A diverged register feeds an address computation.
    Address,
    /// Divergence-set entry cap exceeded.
    Capacity,
    /// Post-flip tracking budget exhausted.
    Fuel,
    /// The shared replay errored; no lane outcome can be attributed.
    Replay,
}

/// How one lane of a finished batch replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneEnd {
    /// Outcome determined inside the batch.
    Resolved(Outcome, RetireCause),
    /// Lane must be re-run through the solo path.
    Demoted(DemoteCause),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    /// Waiting for its flip to retire.
    Pending,
    /// Flip committed; divergence set live.
    Tracking,
    /// Outcome classified.
    Done(Outcome, RetireCause),
    /// Handed back to the solo path.
    Demoted(DemoteCause),
}

/// One shadow lane: a fault site and its exact divergence set relative to
/// the golden stream.
#[derive(Debug, Clone)]
struct Lane {
    site: FaultSite,
    state: LaneState,
    triggered: bool,
    fuel: u32,
    /// Diverged registers: `(tid, reg key, lane raw value)`. The raw value
    /// is what the lane's machine would hold after `write_reg` (predicate
    /// flags masked to 4 bits).
    regs: Vec<(u32, u16, u32)>,
    /// Diverged memory words: `(space code, owner, byte addr, lane value)`.
    mem: Vec<(u8, u32, u32, u32)>,
}

/// An [`ExecHook`] driving up to [`MAX_BATCH`] fault lanes off one golden
/// replay. See the module docs for the lane model.
#[derive(Debug, Clone)]
pub(crate) struct BatchInjectionHook {
    model: FaultModel,
    threads_per_cta: u32,
    /// Output region `[out_lo, out_hi)` in global byte addresses, for the
    /// end-of-stream overlay classification.
    out_lo: u32,
    out_hi: u32,
    lanes: Vec<Lane>,
    /// Bit `i` set ⇔ lane `i` is `Pending` or `Tracking`.
    active: u64,
    /// Per-tid mask of lanes holding private divergence (registers or local
    /// memory) on that thread — the per-event screen, one array load.
    tid_private: Vec<u64>,
    /// Per-tid mask of lanes whose flip is still ahead on that thread.
    trigger_pending: Vec<u64>,
    /// Sorted `(byte addr, lane mask)` prefilter over shared/global
    /// divergence: a memory access screens against all lanes with one
    /// binary search.
    sg: Vec<(u32, u64)>,
    /// CTA of the last retirement seen; a later CTA retires all earlier
    /// CTAs' private and shared divergence (CTAs run serially).
    current_cta: Option<u32>,
}

impl BatchInjectionHook {
    /// Arms one lane per site. `sites` must not exceed [`MAX_BATCH`];
    /// `out_region` is `(byte addr, word count)` of the kernel output.
    pub(crate) fn new(
        sites: &[FaultSite],
        model: FaultModel,
        num_threads: u32,
        threads_per_cta: u32,
        out_region: (u32, usize),
    ) -> Self {
        assert!(
            !sites.is_empty() && sites.len() <= MAX_BATCH,
            "batch of {} lanes outside 1..={MAX_BATCH}",
            sites.len()
        );
        let mut trigger_pending = vec![0u64; num_threads as usize];
        for (i, site) in sites.iter().enumerate() {
            if let Some(m) = trigger_pending.get_mut(site.tid as usize) {
                *m |= 1u64 << i;
            }
            // Sites on out-of-range tids never trigger: they finish as
            // `Untriggered`, exactly like the solo hook.
        }
        BatchInjectionHook {
            model,
            threads_per_cta: threads_per_cta.max(1),
            out_lo: out_region.0,
            out_hi: out_region.0.saturating_add((out_region.1 as u32) * 4),
            lanes: sites
                .iter()
                .map(|&site| Lane {
                    site,
                    state: LaneState::Pending,
                    triggered: false,
                    fuel: LANE_TRACK_WINDOW,
                    regs: Vec::new(),
                    mem: Vec::new(),
                })
                .collect(),
            active: if sites.len() == MAX_BATCH {
                u64::MAX
            } else {
                (1u64 << sites.len()) - 1
            },
            tid_private: vec![0; num_threads as usize],
            trigger_pending,
            sg: Vec::new(),
            current_cta: None,
        }
    }

    /// Demotes every unresolved lane (shared replay failed).
    pub(crate) fn demote_all(&mut self) {
        let mut m = self.active;
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            self.demote(li, DemoteCause::Replay);
        }
    }

    /// Consumes the hook after the replay, classifying still-open lanes:
    /// `Pending` never flipped (`Masked`), `Tracking` lanes classify by
    /// whether their overlay touches the output region.
    pub(crate) fn finish(self) -> Vec<LaneEnd> {
        let (out_lo, out_hi) = (self.out_lo, self.out_hi);
        self.lanes
            .into_iter()
            .map(|lane| match lane.state {
                LaneState::Done(o, cause) => LaneEnd::Resolved(o, cause),
                LaneState::Demoted(cause) => LaneEnd::Demoted(cause),
                LaneState::Pending => LaneEnd::Resolved(Outcome::Masked, RetireCause::Untriggered),
                LaneState::Tracking => {
                    // Overlay invariant: an entry exists iff the lane's word
                    // differs from the golden word *right now* — so the
                    // output comparison is an overlay range scan.
                    let sdc = lane
                        .mem
                        .iter()
                        .any(|e| e.0 == GLOBAL && e.2 >= out_lo && e.2 < out_hi);
                    if sdc {
                        LaneEnd::Resolved(Outcome::Sdc, RetireCause::EndSdc)
                    } else {
                        LaneEnd::Resolved(Outcome::Masked, RetireCause::EndMasked)
                    }
                }
            })
            .collect()
    }

    fn mem_owner(&self, space: MemSpace, tid: u32) -> u32 {
        match space {
            MemSpace::Global => 0,
            MemSpace::Shared => tid / self.threads_per_cta,
            MemSpace::Local => tid,
        }
    }

    fn lane_reg(&self, li: usize, tid: u32, key: u16) -> Option<u32> {
        self.lanes[li]
            .regs
            .iter()
            .find(|e| e.0 == tid && e.1 == key)
            .map(|e| e.2)
    }

    fn lane_mem(&self, li: usize, space: u8, owner: u32, addr: u32) -> Option<u32> {
        self.lanes[li]
            .mem
            .iter()
            .find(|e| e.0 == space && e.1 == owner && e.2 == addr)
            .map(|e| e.3)
    }

    fn sg_add(&mut self, addr: u32, bit: u64) {
        match self.sg.binary_search_by_key(&addr, |e| e.0) {
            Ok(i) => self.sg[i].1 |= bit,
            Err(i) => self.sg.insert(i, (addr, bit)),
        }
    }

    fn sg_remove(&mut self, addr: u32, bit: u64) {
        if let Ok(i) = self.sg.binary_search_by_key(&addr, |e| e.0) {
            self.sg[i].1 &= !bit;
            if self.sg[i].1 == 0 {
                self.sg.remove(i);
            }
        }
    }

    fn insert_reg(&mut self, li: usize, tid: u32, key: u16, raw: u32) {
        if self.lanes[li].state != LaneState::Tracking {
            return;
        }
        {
            let lane = &mut self.lanes[li];
            if let Some(e) = lane.regs.iter_mut().find(|e| e.0 == tid && e.1 == key) {
                e.2 = raw;
                return;
            }
            lane.regs.push((tid, key, raw));
        }
        if let Some(m) = self.tid_private.get_mut(tid as usize) {
            *m |= 1u64 << li;
        }
        if self.lanes[li].regs.len() + self.lanes[li].mem.len() > LANE_ENTRY_CAP {
            self.demote(li, DemoteCause::Capacity);
        }
    }

    fn remove_reg(&mut self, li: usize, tid: u32, key: u16) {
        if self.lanes[li].state != LaneState::Tracking {
            return;
        }
        let lane = &mut self.lanes[li];
        let Some(pos) = lane.regs.iter().position(|e| e.0 == tid && e.1 == key) else {
            return;
        };
        lane.regs.swap_remove(pos);
        let still_private = lane.regs.iter().any(|e| e.0 == tid)
            || lane.mem.iter().any(|e| e.0 == LOCAL && e.1 == tid);
        if !still_private {
            if let Some(m) = self.tid_private.get_mut(tid as usize) {
                *m &= !(1u64 << li);
            }
        }
    }

    fn insert_mem(&mut self, li: usize, space: u8, owner: u32, addr: u32, value: u32) {
        if self.lanes[li].state != LaneState::Tracking {
            return;
        }
        {
            let lane = &mut self.lanes[li];
            if let Some(e) = lane
                .mem
                .iter_mut()
                .find(|e| e.0 == space && e.1 == owner && e.2 == addr)
            {
                e.3 = value;
                return;
            }
            lane.mem.push((space, owner, addr, value));
        }
        if space == LOCAL {
            if let Some(m) = self.tid_private.get_mut(owner as usize) {
                *m |= 1u64 << li;
            }
        } else {
            self.sg_add(addr, 1u64 << li);
        }
        if self.lanes[li].regs.len() + self.lanes[li].mem.len() > LANE_ENTRY_CAP {
            self.demote(li, DemoteCause::Capacity);
        }
    }

    fn remove_mem(&mut self, li: usize, space: u8, owner: u32, addr: u32) {
        if self.lanes[li].state != LaneState::Tracking {
            return;
        }
        let lane = &mut self.lanes[li];
        let Some(pos) = lane
            .mem
            .iter()
            .position(|e| e.0 == space && e.1 == owner && e.2 == addr)
        else {
            return;
        };
        lane.mem.swap_remove(pos);
        if space == LOCAL {
            let still_private = lane.regs.iter().any(|e| e.0 == owner)
                || lane.mem.iter().any(|e| e.0 == LOCAL && e.1 == owner);
            if !still_private {
                if let Some(m) = self.tid_private.get_mut(owner as usize) {
                    *m &= !(1u64 << li);
                }
            }
        } else {
            // Another space's entry at the same byte address keeps the
            // prefilter bit alive.
            let still_addressed = lane.mem.iter().any(|e| e.0 != LOCAL && e.2 == addr);
            if !still_addressed {
                self.sg_remove(addr, 1u64 << li);
            }
        }
    }

    /// Drops lane `li` from every screen and empties its sets.
    fn clear_lane(&mut self, li: usize) {
        let bit = 1u64 << li;
        let site_tid = self.lanes[li].site.tid as usize;
        if let Some(m) = self.trigger_pending.get_mut(site_tid) {
            *m &= !bit;
        }
        let regs = std::mem::take(&mut self.lanes[li].regs);
        let mem = std::mem::take(&mut self.lanes[li].mem);
        for (tid, _, _) in &regs {
            if let Some(m) = self.tid_private.get_mut(*tid as usize) {
                *m &= !bit;
            }
        }
        for (space, owner, addr, _) in &mem {
            if *space == LOCAL {
                if let Some(m) = self.tid_private.get_mut(*owner as usize) {
                    *m &= !bit;
                }
            } else {
                self.sg_remove(*addr, bit);
            }
        }
        self.active &= !bit;
    }

    fn resolve(&mut self, li: usize, outcome: Outcome, cause: RetireCause) {
        self.lanes[li].state = LaneState::Done(outcome, cause);
        self.clear_lane(li);
    }

    fn demote(&mut self, li: usize, cause: DemoteCause) {
        self.lanes[li].state = LaneState::Demoted(cause);
        self.clear_lane(li);
    }

    fn check_converged(&mut self, li: usize) {
        let lane = &self.lanes[li];
        if lane.state == LaneState::Tracking
            && lane.triggered
            && lane.regs.is_empty()
            && lane.mem.is_empty()
        {
            self.resolve(li, Outcome::Masked, RetireCause::Converged);
        }
    }

    /// CTAs run serially: a retirement from `new_cta` means every earlier
    /// CTA finished — its threads' private divergence is unreachable and
    /// its shared memory is reset before the next CTA starts.
    fn cta_turnover(&mut self, new_cta: u32) {
        self.current_cta = Some(new_cta);
        let tid_lo = new_cta * self.threads_per_cta;
        let mut m = self.active;
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.lanes[li].state != LaneState::Tracking {
                continue;
            }
            let stale_regs: Vec<(u32, u16)> = self.lanes[li]
                .regs
                .iter()
                .filter(|e| e.0 < tid_lo)
                .map(|e| (e.0, e.1))
                .collect();
            for (tid, key) in stale_regs {
                self.remove_reg(li, tid, key);
            }
            let stale_mem: Vec<(u8, u32, u32)> = self.lanes[li]
                .mem
                .iter()
                .filter(|e| match e.0 {
                    LOCAL => e.1 < tid_lo,
                    SHARED => e.1 < new_cta,
                    _ => false,
                })
                .map(|e| (e.0, e.1, e.2))
                .collect();
            for (space, owner, addr) in stale_mem {
                self.remove_mem(li, space, owner, addr);
            }
            self.check_converged(li);
        }
    }

    /// Replicates [`crate::InjectionHook`]'s write-back corruption for lane
    /// `li` at its trigger retirement: walk the destination slots in
    /// write-back order, find the slot the site's flat bit lands in, apply
    /// the fault model to the value the golden run committed there, and
    /// record the divergence (if the model actually changed the value).
    fn fire_trigger(
        &mut self,
        li: usize,
        ev: &RetireEvent<'_>,
        golden_res: &mut Option<(u32, bool, bool)>,
    ) {
        let site = self.lanes[li].site;
        self.lanes[li].state = LaneState::Tracking;
        self.lanes[li].triggered = true;
        let instr = ev.instr;
        let mut bits_seen = 0u32;
        for dest in instr.dst.iter() {
            let Some(Dest::Reg(reg)) = dest else { continue };
            if reg.is_discard() {
                // No write-back fires for discard destinations; they
                // contribute no width to the site's bit index.
                continue;
            }
            let width = instr.register_dest_bits(*reg);
            let offset = site.bit.wrapping_sub(bits_seen);
            if offset < width {
                let (v, c, o) = *golden_res.get_or_insert_with(|| eval_op(instr, ev.srcs));
                let commit = match reg {
                    Register::Pred(_) => flags_of(v, instr.ty, c, o),
                    _ => v,
                };
                let key = (u64::from(site.tid) << 40)
                    ^ (u64::from(site.dyn_idx) << 8)
                    ^ u64::from(site.bit);
                let faulty = self.model.apply(commit, offset, width, key);
                // Mirror `write_reg`: predicate registers retain 4 bits.
                let (g_raw, l_raw) = match reg {
                    Register::Pred(_) => (commit & 0xF, faulty & 0xF),
                    _ => (commit, faulty),
                };
                if l_raw != g_raw {
                    if let Some(k) = reg_key(*reg) {
                        self.insert_reg(li, site.tid, k, l_raw);
                    }
                    // `reg_key` of a non-discard register is only `None`
                    // for specials, whose writes the machine drops — the
                    // flip lands nowhere, the lane stays golden.
                }
                return;
            }
            bits_seen += width;
        }
        // The site's bit indexes past this instruction's destination bits:
        // the solo hook never fires either (a site from a stale trace), and
        // the run is the golden run.
        self.lanes[li].triggered = false;
        self.resolve(li, Outcome::Masked, RetireCause::Untriggered);
    }

    /// Does `m`'s base register currently diverge in lane `li`?
    fn divergent_base(&self, li: usize, tid: u32, m: &MemRef) -> bool {
        m.base
            .and_then(reg_key)
            .is_some_and(|k| self.lane_reg(li, tid, k).is_some())
    }

    /// Re-executes one retirement from lane `li`'s perspective: substitute
    /// the lane's diverged register/memory values into the source operands,
    /// re-evaluate through [`eval_op`], and diff the committed destinations
    /// against the golden ones.
    fn process_lane(
        &mut self,
        li: usize,
        ev: &RetireEvent<'_>,
        has_result: bool,
        golden_res: &mut Option<(u32, bool, bool)>,
    ) {
        if self.lanes[li].fuel == 0 {
            self.demote(li, DemoteCause::Fuel);
            return;
        }
        self.lanes[li].fuel -= 1;
        let tid = ev.tid;
        let instr = ev.instr;
        // A diverged guard predicate: the golden run executed this
        // instruction, so a lane whose flags fail the test leaves the
        // stream — structural control divergence.
        if let Some(g) = &instr.guard {
            if let Some(flags) = self.lane_reg(li, tid, 0x100 | u16::from(g.pred)) {
                if !pred_test(flags as u8, g.test) {
                    self.demote(li, DemoteCause::Control);
                    return;
                }
            }
        }
        // A diverged register feeding an address: the lane touches a word
        // the golden stream does not — untrackable.
        for op in instr.src.iter().flatten() {
            if let Operand::Mem(m) = op {
                if self.divergent_base(li, tid, m) {
                    self.demote(li, DemoteCause::Address);
                    return;
                }
            }
        }
        for d in instr.dst.iter().flatten() {
            if let Dest::Mem(m) = d {
                if self.divergent_base(li, tid, m) {
                    self.demote(li, DemoteCause::Address);
                    return;
                }
            }
        }
        // Build the lane's source values: golden unless the lane holds a
        // divergence for the register read or the word loaded.
        let n = ev.srcs.len();
        let mut lane_srcs = [0u32; 4];
        let mut differs = false;
        let mut access_cursor = 0usize;
        for (i, src) in lane_srcs.iter_mut().enumerate().take(n.min(4)) {
            let gv = ev.srcs[i];
            let lv = match instr.src.get(i).and_then(Option::as_ref) {
                Some(Operand::Reg { reg, half, neg }) => {
                    if instr.opcode == Opcode::Selp && i == 2 {
                        // `selp` steers on raw predicate flags; no operand
                        // processing applies.
                        match reg {
                            Register::Pred(p) => {
                                self.lane_reg(li, tid, 0x100 | u16::from(*p)).unwrap_or(gv)
                            }
                            _ => gv,
                        }
                    } else {
                        match reg_key(*reg) {
                            Some(k) => match self.lane_reg(li, tid, k) {
                                Some(raw) => apply_half_neg(raw, *half, *neg, operand_ty(instr, i)),
                                None => gv,
                            },
                            None => gv,
                        }
                    }
                }
                Some(Operand::Mem(_)) => {
                    // The next load access, in operand order (the base was
                    // proven non-divergent above, so the lane loads the
                    // same address).
                    let mut lv = gv;
                    while access_cursor < ev.accesses.len() {
                        let a = ev.accesses[access_cursor];
                        access_cursor += 1;
                        if a.is_store {
                            continue;
                        }
                        let space = space_code(a.space);
                        let owner = self.mem_owner(a.space, tid);
                        lv = self.lane_mem(li, space, owner, a.addr).unwrap_or(gv);
                        break;
                    }
                    lv
                }
                _ => gv,
            };
            if lv != gv {
                differs = true;
            }
            *src = lv;
        }
        let store = ev.accesses.iter().find(|a| a.is_store).copied();
        if !differs {
            // The lane executes this instruction identically: every
            // destination it writes is re-proven golden.
            if has_result {
                for d in instr.dst.iter().flatten() {
                    if let Dest::Reg(reg) = d {
                        if let Some(k) = reg_key(*reg) {
                            self.remove_reg(li, tid, k);
                        }
                    }
                }
            }
            if let Some(a) = store {
                let space = space_code(a.space);
                let owner = self.mem_owner(a.space, tid);
                self.remove_mem(li, space, owner, a.addr);
            }
            return;
        }
        // Divergent sources: re-evaluate the instruction for the lane and
        // diff each committed destination.
        if instr.opcode == Opcode::St {
            if let Some(a) = store {
                let space = space_code(a.space);
                let owner = self.mem_owner(a.space, tid);
                if lane_srcs[0] != a.value {
                    self.insert_mem(li, space, owner, a.addr, lane_srcs[0]);
                } else {
                    self.remove_mem(li, space, owner, a.addr);
                }
            }
            return;
        }
        if !has_result {
            return;
        }
        let g = *golden_res.get_or_insert_with(|| eval_op(instr, ev.srcs));
        let l = eval_op(instr, &lane_srcs[..n.min(4)]);
        for d in instr.dst.iter().flatten() {
            match d {
                Dest::Reg(reg) if !reg.is_discard() => {
                    let commit_raw = |r: (u32, bool, bool)| match reg {
                        Register::Pred(_) => flags_of(r.0, instr.ty, r.1, r.2) & 0xF,
                        _ => r.0,
                    };
                    let (gc, lc) = (commit_raw(g), commit_raw(l));
                    if let Some(k) = reg_key(*reg) {
                        if lc != gc {
                            self.insert_reg(li, tid, k, lc);
                        } else {
                            self.remove_reg(li, tid, k);
                        }
                    }
                }
                Dest::Mem(_) => {
                    // Store-through-mov: the raw result value goes to
                    // memory at the golden address.
                    if let Some(a) = store {
                        let space = space_code(a.space);
                        let owner = self.mem_owner(a.space, tid);
                        if l.0 != a.value {
                            self.insert_mem(li, space, owner, a.addr, l.0);
                        } else {
                            self.remove_mem(li, space, owner, a.addr);
                        }
                    }
                }
                Dest::Reg(_) => {}
            }
        }
    }
}

/// Opcodes for which `step()` computes a committed result through
/// [`eval_op`] (everything except control flow and `st`).
fn has_eval_result(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::Nop
            | Opcode::Ssy
            | Opcode::Bra
            | Opcode::Bar
            | Opcode::Ret
            | Opcode::Retp
            | Opcode::Exit
            | Opcode::Trap
            | Opcode::St
    )
}

impl ExecHook for BatchInjectionHook {
    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        if self.active == 0 {
            return;
        }
        let tid = ev.tid;
        let cta = tid / self.threads_per_cta;
        match self.current_cta {
            Some(c) if cta > c => self.cta_turnover(cta),
            None => self.current_cta = Some(cta),
            _ => {}
        }
        let t = tid as usize;
        let has_result = has_eval_result(ev.instr.opcode);
        // The golden (value, carry, overflow), evaluated at most once per
        // retirement no matter how many lanes look at it.
        let mut golden_res: Option<(u32, bool, bool)> = None;
        // 1. Flips scheduled on this retirement.
        let mut fresh = 0u64;
        let pending_here = self.trigger_pending.get(t).copied().unwrap_or(0);
        if pending_here != 0 {
            let mut m = pending_here;
            while m != 0 {
                let li = m.trailing_zeros() as usize;
                m &= m - 1;
                if self.lanes[li].site.dyn_idx != ev.dyn_idx {
                    continue;
                }
                self.trigger_pending[t] &= !(1u64 << li);
                fresh |= 1u64 << li;
                self.fire_trigger(li, &ev, &mut golden_res);
            }
        }
        // 2. Lanes whose divergence this retirement can touch: private
        // divergence on this thread, or a shared/global word among the
        // instruction's accesses. Freshly-flipped lanes are excluded —
        // their divergence postdates this instruction's reads.
        let mut affected = self.tid_private.get(t).copied().unwrap_or(0);
        if !self.sg.is_empty() {
            for a in ev.accesses {
                if a.space != MemSpace::Local {
                    if let Ok(i) = self.sg.binary_search_by_key(&a.addr, |e| e.0) {
                        affected |= self.sg[i].1;
                    }
                }
            }
        }
        affected &= !fresh;
        let mut m = affected;
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.lanes[li].state != LaneState::Tracking {
                continue;
            }
            self.process_lane(li, &ev, has_result, &mut golden_res);
        }
        // 3. A finished thread's private divergence is dead.
        let mut dropped = 0u64;
        if matches!(ev.instr.opcode, Opcode::Exit | Opcode::Ret | Opcode::Retp) {
            let mut m = self.tid_private.get(t).copied().unwrap_or(0);
            while m != 0 {
                let li = m.trailing_zeros() as usize;
                m &= m - 1;
                if self.lanes[li].state != LaneState::Tracking {
                    continue;
                }
                dropped |= 1u64 << li;
                let stale_regs: Vec<u16> = self.lanes[li]
                    .regs
                    .iter()
                    .filter(|e| e.0 == tid)
                    .map(|e| e.1)
                    .collect();
                for key in stale_regs {
                    self.remove_reg(li, tid, key);
                }
                let stale_local: Vec<u32> = self.lanes[li]
                    .mem
                    .iter()
                    .filter(|e| e.0 == LOCAL && e.1 == tid)
                    .map(|e| e.2)
                    .collect();
                for addr in stale_local {
                    self.remove_mem(li, LOCAL, tid, addr);
                }
            }
        }
        // 4. Convergence sweep over everything this event touched.
        let mut m = (fresh | affected | dropped) & self.active;
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            self.check_converged(li);
        }
    }

    fn on_guard_fail(&mut self, tid: u32, pred: u8, test: PredTest) {
        // The golden run skipped this instruction; a lane whose diverged
        // flags pass the test would execute it — structural divergence.
        let mut m = self.tid_private.get(tid as usize).copied().unwrap_or(0);
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.lanes[li].state != LaneState::Tracking {
                continue;
            }
            if let Some(flags) = self.lane_reg(li, tid, 0x100 | u16::from(pred)) {
                if pred_test(flags as u8, test) {
                    self.demote(li, DemoteCause::Control);
                }
            }
        }
    }

    #[inline]
    fn converged(&self) -> bool {
        self.active == 0
    }
}

/// Stable version tag of the batched-execution format. Persistent outcome
/// stores fold this into their keys (alongside
/// [`crate::classifier_hash`]) so results computed under a different lane
/// model miss instead of being served as current. Bump on any change to
/// the lane semantics above.
#[must_use]
pub fn batch_version() -> u64 {
    let mut h = fsp_obs::Fnv1a::new();
    h.write_u64(1); // lane-model revision
    h.write_u64(MAX_BATCH as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;
    use fsp_sim::{Launch, MemBlock, Simulator};

    fn run_batch(
        src: &str,
        words: usize,
        sites: &[FaultSite],
        model: FaultModel,
    ) -> (Vec<LaneEnd>, MemBlock) {
        let p = assemble("t", src).unwrap();
        let launch = Launch::new(p);
        let mut mem = MemBlock::with_words(words);
        let mut hook = BatchInjectionHook::new(
            sites,
            model,
            launch.num_threads(),
            launch.threads_per_cta(),
            (0, words),
        );
        Simulator::new().run(&launch, &mut mem, &mut hook).unwrap();
        (hook.finish(), mem)
    }

    #[test]
    fn overwritten_lane_converges_early() {
        let ends = run_batch(
            r#"
            mov.u32 $r1, 0x5
            mov.u32 $r2, 0x7
            mov.u32 $r1, 0x9
            st.global.u32 [$r124], $r1
            st.global.u32 [$r124+0x4], $r2
            exit
            "#,
            2,
            &[FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 3,
            }],
            FaultModel::SingleBitFlip,
        )
        .0;
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Masked, RetireCause::Converged)]
        );
    }

    #[test]
    fn stored_lane_classifies_sdc_and_memory_stays_golden() {
        let (ends, mem) = run_batch(
            r#"
            mov.u32 $r1, 0x5
            st.global.u32 [$r124], $r1
            exit
            "#,
            1,
            &[FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 3,
            }],
            FaultModel::SingleBitFlip,
        );
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Sdc, RetireCause::EndSdc)]
        );
        // The shared replay is fault-free: memory holds the *golden* value.
        assert_eq!(mem.load(0).unwrap(), 0x5);
    }

    #[test]
    fn control_divergence_demotes_only_that_lane() {
        let ends = run_batch(
            r#"
            set.eq.u32.u32 $p0/$o127, $r124, $r124
            @$p0.eq bra skip
            mov.u32 $r1, 0x1
            skip:
            mov.u32 $r2, 0x3
            mov.u32 $r2, 0x4
            st.global.u32 [$r124], $r1
            exit
            "#,
            1,
            &[
                // Lane 0 flips a predicate flag of dyn 0: the guard at dyn 1
                // steers differently -> demoted.
                FaultSite {
                    tid: 0,
                    dyn_idx: 0,
                    bit: 0,
                },
                // Lane 1 flips $r2 at dyn 2 (the taken branch retires as
                // dyn 1), overwritten at dyn 3 -> converges.
                FaultSite {
                    tid: 0,
                    dyn_idx: 2,
                    bit: 1,
                },
            ],
            FaultModel::SingleBitFlip,
        )
        .0;
        assert_eq!(ends[0], LaneEnd::Demoted(DemoteCause::Control));
        assert_eq!(
            ends[1],
            LaneEnd::Resolved(Outcome::Masked, RetireCause::Converged)
        );
    }

    #[test]
    fn untriggered_site_is_masked() {
        let ends = run_batch(
            r#"
            mov.u32 $r1, 0x5
            st.global.u32 [$r124], $r1
            exit
            "#,
            1,
            &[FaultSite {
                tid: 0,
                dyn_idx: 99,
                bit: 0,
            }],
            FaultModel::SingleBitFlip,
        )
        .0;
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Masked, RetireCause::Untriggered)]
        );
    }

    #[test]
    fn noop_stuck_at_converges() {
        // Bit 0 of 0x1 is already 1: StuckAt1 commits the golden value.
        let ends = run_batch(
            r#"
            mov.u32 $r1, 0x1
            st.global.u32 [$r124], $r1
            exit
            "#,
            1,
            &[FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 0,
            }],
            FaultModel::StuckAt1,
        )
        .0;
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Masked, RetireCause::Converged)]
        );
    }

    #[test]
    fn unread_divergence_dies_with_thread() {
        let ends = run_batch(
            r#"
            mov.u32 $r1, 0x5
            st.global.u32 [$r124], $r2
            exit
            "#,
            1,
            &[FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 3,
            }],
            FaultModel::SingleBitFlip,
        )
        .0;
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Masked, RetireCause::Converged)]
        );
    }

    #[test]
    fn divergence_propagates_through_arithmetic() {
        // $r1 flipped at dyn 0; $r3 = $r1 + 1 inherits the divergence and
        // reaches the output -> SDC on the *derived* word.
        let ends = run_batch(
            r#"
            mov.u32 $r1, 0x10
            add.u32 $r3, $r1, 0x1
            st.global.u32 [$r124], $r3
            exit
            "#,
            1,
            &[FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 0,
            }],
            FaultModel::SingleBitFlip,
        )
        .0;
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Sdc, RetireCause::EndSdc)]
        );
    }

    #[test]
    fn masking_and_restores_convergence() {
        // The flipped high bit of $r1 is ANDed away before the store.
        let ends = run_batch(
            r#"
            mov.u32 $r1, 0x3
            and.u32 $r3, $r1, 0xF
            st.global.u32 [$r124], $r3
            exit
            "#,
            1,
            &[FaultSite {
                tid: 0,
                dyn_idx: 0,
                bit: 31,
            }],
            FaultModel::SingleBitFlip,
        )
        .0;
        // $r1 stays divergent (never overwritten before exit) but $r3 is
        // proven golden; $r1 dies with the thread -> converged.
        assert_eq!(
            ends,
            vec![LaneEnd::Resolved(Outcome::Masked, RetireCause::Converged)]
        );
    }

    #[test]
    fn batch_version_is_stable() {
        assert_eq!(batch_version(), batch_version());
        assert_ne!(batch_version(), 0);
    }
}
