//! SDC severity: how wrong is a silently-corrupted output?
//!
//! The paper classifies outcomes with a bitwise output comparison, which
//! treats a 1-ulp float wobble and a completely scrambled matrix the same.
//! This extension quantifies the *magnitude* of silent data corruption —
//! relevant to the approximate-computing angle the paper's introduction
//! raises ("changes in the precision/accuracy of register values do not
//! necessarily change the final output of an application").

use serde::{Deserialize, Serialize};

/// Relative L2 error between a corrupted output and the golden output,
/// interpreting words as `f32`.
///
/// Returns `0.0` for identical outputs, `f64::INFINITY` when the corrupted
/// output contains NaN/Inf the golden output lacks (or when the golden
/// norm is zero but the outputs differ).
#[must_use]
pub fn relative_l2_error(golden: &[u32], corrupted: &[u32]) -> f64 {
    assert_eq!(golden.len(), corrupted.len(), "output length mismatch");
    let mut diff2 = 0.0f64;
    let mut norm2 = 0.0f64;
    for (&g, &c) in golden.iter().zip(corrupted) {
        let (gf, cf) = (f32::from_bits(g), f32::from_bits(c));
        if !cf.is_finite() && gf.is_finite() {
            return f64::INFINITY;
        }
        let d = f64::from(cf) - f64::from(gf);
        diff2 += d * d;
        norm2 += f64::from(gf) * f64::from(gf);
    }
    if diff2 == 0.0 {
        0.0
    } else if norm2 == 0.0 {
        f64::INFINITY
    } else {
        (diff2 / norm2).sqrt()
    }
}

/// Severity buckets for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SeverityBucket {
    /// Relative error below 1e-6 — numerically negligible.
    Negligible,
    /// Below 1e-3 — small precision loss.
    Minor,
    /// Below 1e-1 — visible degradation.
    Moderate,
    /// Below 10 — grossly wrong values.
    Severe,
    /// At least 10x the output norm, or non-finite values.
    Catastrophic,
}

impl SeverityBucket {
    /// Buckets a relative error.
    #[must_use]
    pub fn of(rel_error: f64) -> Self {
        if rel_error < 1e-6 {
            SeverityBucket::Negligible
        } else if rel_error < 1e-3 {
            SeverityBucket::Minor
        } else if rel_error < 1e-1 {
            SeverityBucket::Moderate
        } else if rel_error < 10.0 {
            SeverityBucket::Severe
        } else {
            SeverityBucket::Catastrophic
        }
    }

    /// All buckets in severity order.
    pub const ALL: [SeverityBucket; 5] = [
        SeverityBucket::Negligible,
        SeverityBucket::Minor,
        SeverityBucket::Moderate,
        SeverityBucket::Severe,
        SeverityBucket::Catastrophic,
    ];

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SeverityBucket::Negligible => "negligible (<1e-6)",
            SeverityBucket::Minor => "minor (<1e-3)",
            SeverityBucket::Moderate => "moderate (<1e-1)",
            SeverityBucket::Severe => "severe (<10)",
            SeverityBucket::Catastrophic => "catastrophic (>=10 or NaN)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn identical_outputs_have_zero_error() {
        let g = bits(&[1.0, 2.0, 3.0]);
        assert_eq!(relative_l2_error(&g, &g), 0.0);
    }

    #[test]
    fn small_perturbation_is_small() {
        let g = bits(&[1.0, 2.0, 3.0]);
        let c = bits(&[1.0, 2.0 + 1e-5, 3.0]);
        let e = relative_l2_error(&g, &c);
        assert!(e > 0.0 && e < 1e-4, "{e}");
        assert_eq!(SeverityBucket::of(e), SeverityBucket::Minor);
    }

    #[test]
    fn nan_is_catastrophic() {
        let g = bits(&[1.0, 2.0]);
        let c = bits(&[1.0, f32::NAN]);
        let e = relative_l2_error(&g, &c);
        assert!(e.is_infinite());
        assert_eq!(SeverityBucket::of(e), SeverityBucket::Catastrophic);
    }

    #[test]
    fn zero_golden_norm_with_difference_is_infinite() {
        let g = bits(&[0.0, 0.0]);
        let c = bits(&[0.0, 1.0]);
        assert!(relative_l2_error(&g, &c).is_infinite());
    }

    #[test]
    fn buckets_are_monotone() {
        let errors = [0.0, 1e-7, 1e-4, 1e-2, 1.0, 100.0];
        let buckets: Vec<_> = errors.iter().map(|&e| SeverityBucket::of(e)).collect();
        let mut sorted = buckets.clone();
        sorted.sort();
        assert_eq!(buckets, sorted);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = relative_l2_error(&[0], &[0, 1]);
    }
}
