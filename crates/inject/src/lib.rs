#![warn(missing_docs)]
//! Single-bit fault injection for GPGPU kernels.
//!
//! Implements the paper's baseline fault model (Section II-C): a transient
//! single-bit flip in the *destination register* of one dynamic instruction
//! of one thread — mimicking a soft error in a functional unit (ALU / LSU).
//! A fault site is therefore the triple *(thread id, dynamic instruction
//! index, bit position)*, and the exhaustive site count is Equation (1).
//!
//! The crate provides:
//!
//! * [`FaultSite`] / [`SiteSpace`] — sites and the (possibly enormous)
//!   per-kernel site population, with uniform sampling and per-thread /
//!   per-pc enumeration;
//! * [`InjectionTarget`] — how a workload exposes its launch, its input
//!   memory image and its output region;
//! * [`Experiment`] — golden-run preparation, single injections with
//!   outcome classification (masked / SDC / crash / hang), and parallel
//!   campaigns over site lists.
//!
//! # Example
//!
//! ```
//! use fsp_inject::{Experiment, FaultSite};
//! use fsp_inject::testing::CountdownTarget;
//!
//! let target = CountdownTarget::new();
//! let experiment = Experiment::prepare(&target)?;
//! // Flip bit 31 of the first instruction's destination in thread 0.
//! let outcome = experiment.run_one(FaultSite { tid: 0, dyn_idx: 0, bit: 31 });
//! println!("outcome: {outcome}");
//! # Ok::<(), fsp_sim::SimFault>(())
//! ```

mod batch;
mod campaign;
mod fastpath;
mod hook;
mod model;
mod severity;
mod site;
mod target;
pub mod testing;

pub use batch::{batch_version, DEFAULT_BATCH, MAX_BATCH};
pub use campaign::{
    classifier_hash, CampaignObserver, CampaignResult, Experiment, IncrementalCampaign, NopObserver,
};
pub use fastpath::FastInjectionHook;
pub use hook::InjectionHook;
pub use model::FaultModel;
pub use severity::{relative_l2_error, SeverityBucket};
pub use site::{pack_sites, unpack_sites, FaultSite, SiteSpace, WeightedSite};
pub use target::InjectionTarget;
