//! Shared helpers for the Criterion benchmark targets.
//!
//! The benches cover the machinery behind every table and figure of the
//! paper (see `benches/experiments.rs` for the per-artifact mapping):
//!
//! * `benches/simulator.rs` — assembler and interpreter throughput;
//! * `benches/injection.rs` — site enumeration, sampling and single
//!   injection runs;
//! * `benches/pruning.rs` — the four pruning stages and plan construction;
//! * `benches/experiments.rs` — end-to-end table/figure regeneration cost
//!   (grouping for Tables III/IV, plans for Figure 10, small campaigns for
//!   Figure 9).

use fsp_core::ThreadGrouping;
use fsp_inject::InjectionTarget;
use fsp_sim::{KernelTrace, Simulator, Tracer};
use fsp_workloads::{Scale, Workload};

/// Fetches a workload by registry id at eval scale.
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn eval(id: &str) -> Workload {
    fsp_workloads::by_id(id, Scale::Eval).unwrap_or_else(|| panic!("unknown workload {id}"))
}

/// Fetches a workload by registry id at paper scale.
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn paper(id: &str) -> Workload {
    fsp_workloads::by_id(id, Scale::Paper).unwrap_or_else(|| panic!("unknown workload {id}"))
}

/// Runs a workload fault-free with full traces for every thread.
///
/// # Panics
///
/// Panics if the fault-free run faults.
#[must_use]
pub fn full_trace(w: &Workload) -> KernelTrace {
    let launch = w.launch();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta())
        .with_full_traces(0..launch.num_threads());
    let mut memory = w.init_memory();
    Simulator::new().run(&launch, &mut memory, &mut tracer).expect("fault-free run");
    tracer.finish()
}

/// Runs a workload fault-free with full traces for representatives only.
///
/// # Panics
///
/// Panics if the fault-free run faults.
#[must_use]
pub fn rep_trace(w: &Workload) -> KernelTrace {
    let launch = w.launch();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let mut memory = w.init_memory();
    Simulator::new().run(&launch, &mut memory, &mut tracer).expect("fault-free run");
    let summary = tracer.finish();
    let grouping = ThreadGrouping::analyze(&summary);
    let reps: Vec<u32> = grouping.representatives(&summary).iter().map(|r| r.tid).collect();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta())
        .with_full_traces(reps);
    let mut memory = w.init_memory();
    Simulator::new().run(&launch, &mut memory, &mut tracer).expect("fault-free run");
    tracer.finish()
}
