//! Cost of the four pruning stages and of full plan construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsp_bench::{eval, paper, rep_trace};
use fsp_core::{
    align_lcs, BitSampler, Commonality, CommonalityConfig, LoopTagging, PruningConfig,
    PruningPipeline, ThreadGrouping,
};
use fsp_inject::InjectionTarget;

/// Stage 1 — CTA/thread grouping over the summary trace.
fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune/grouping");
    for id in ["2dconv", "hotspot"] {
        let trace = rep_trace(&paper(id));
        group.bench_with_input(BenchmarkId::from_parameter(id), &trace, |b, trace| {
            b.iter(|| ThreadGrouping::analyze(trace));
        });
    }
    group.finish();
}

/// Stage 2 — LCS alignment between representative traces (Hirschberg).
fn bench_alignment(c: &mut Criterion) {
    let trace = rep_trace(&paper("pathfinder"));
    let mut traces: Vec<_> = trace.full.values().collect();
    traces.sort_by_key(|t| std::cmp::Reverse(t.entries.len()));
    let a = traces[0].pcs();
    let b = traces[1].pcs();
    c.bench_function("prune/lcs_pathfinder", |bencher| {
        bencher.iter(|| align_lcs(&a, &b));
    });
    let refs: Vec<&fsp_sim::ThreadTrace> = traces.to_vec();
    c.bench_function("prune/commonality_pathfinder", |bencher| {
        bencher.iter(|| Commonality::analyze(&refs, &CommonalityConfig::default()));
    });
}

/// Stage 3 — dynamic loop tagging of a representative trace.
fn bench_loop_tagging(c: &mut Criterion) {
    let w = paper("mvt");
    let trace = rep_trace(&w);
    let launch = w.launch();
    let forest = launch.program().cfg().loops(launch.program());
    let rep = trace.full.values().next().expect("has a representative");
    c.bench_function("prune/loop_tagging_mvt", |b| {
        b.iter(|| LoopTagging::analyze(rep, &forest));
    });
}

/// Stage 4 — bit-position selection.
fn bench_bit_selection(c: &mut Criterion) {
    let w = eval("gemm");
    let launch = w.launch();
    let program = launch.program();
    let sampler = BitSampler::default();
    c.bench_function("prune/bit_selection_gemm", |b| {
        b.iter(|| {
            program
                .instructions()
                .iter()
                .map(|i| sampler.select_instruction(i).len())
                .sum::<usize>()
        });
    });
}

/// Full plan construction (trace + all four stages), per kernel.
fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune/plan");
    group.sample_size(10);
    for id in ["gemm", "pathfinder", "hotspot"] {
        let w = eval(id);
        let experiment = fsp_inject::Experiment::prepare(&w).expect("prepare");
        let pipeline = PruningPipeline::new(PruningConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(id), &experiment, |b, e| {
            b.iter(|| pipeline.plan_for(e).expect("plan"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_grouping,
    bench_alignment,
    bench_loop_tagging,
    bench_bit_selection,
    bench_plan
);
criterion_main!(benches);
