//! Fault-site enumeration, sampling and injection-run cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsp_bench::{eval, full_trace};
use fsp_inject::{Experiment, SiteSpace, WeightedSite};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Building the exhaustive site space from a trace.
fn bench_site_space(c: &mut Criterion) {
    let w = eval("2dconv");
    let trace = full_trace(&w);
    c.bench_function("inject/site_space_build", |b| {
        b.iter(|| SiteSpace::new(trace.clone()));
    });
}

/// Uniform site sampling (the statistical baseline's inner loop).
fn bench_sampling(c: &mut Criterion) {
    let w = eval("2dconv");
    let space = SiteSpace::new(full_trace(&w));
    c.bench_function("inject/sample_1000", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| space.sample_many(1000, &mut rng));
    });
}

/// A single injection run end-to-end (memory image, execution, outcome
/// classification) — the paper's "one minute per experiment" unit on real
/// hardware.
fn bench_single_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("inject/run_one");
    for id in ["gemm", "pathfinder", "hotspot"] {
        let w = eval(id);
        let experiment = Experiment::prepare(&w).expect("prepare");
        let space = experiment.site_space(0..1);
        let site = space.site_at(space.thread_sites(0) / 2);
        group.bench_with_input(BenchmarkId::from_parameter(id), &site, |b, &site| {
            b.iter(|| experiment.run_one(site));
        });
    }
    group.finish();
}

/// A parallel mini-campaign (256 sites).
fn bench_campaign(c: &mut Criterion) {
    let w = eval("2dconv");
    let experiment = Experiment::prepare(&w).expect("prepare");
    let space = experiment.site_space(0..4);
    let sites: Vec<WeightedSite> = space
        .thread_site_iter(0)
        .take(256)
        .map(WeightedSite::from)
        .collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    c.bench_function("inject/campaign_256", |b| {
        b.iter(|| experiment.run_campaign(&sites, workers));
    });
}

criterion_group!(benches, bench_site_space, bench_sampling, bench_single_injection, bench_campaign);
criterion_main!(benches);
