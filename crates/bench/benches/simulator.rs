//! Assembler and interpreter throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsp_bench::eval;
use fsp_inject::InjectionTarget;
use fsp_sim::{NopHook, Simulator, Tracer};

/// Assembling a mid-sized kernel from text.
fn bench_assembler(c: &mut Criterion) {
    // Round-trip the GEMM program through its disassembly so the benched
    // source is realistic.
    let w = eval("gemm");
    let source = w.program().to_string();
    let body: String = source.lines().skip(1).collect::<Vec<_>>().join("\n");
    c.bench_function("asm/gemm", |b| {
        b.iter(|| fsp_isa::assemble("gemm", &body).expect("assembles"));
    });
}

/// Fault-free kernel execution (the unit of cost for every injection run).
fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    for id in ["gemm", "2dconv", "pathfinder", "hotspot", "lud_k46"] {
        let w = eval(id);
        let launch = w.launch();
        // Measure instructions/second.
        let mut memory = w.init_memory();
        let stats = Simulator::new()
            .run(&launch, &mut memory, &mut NopHook)
            .expect("fault-free");
        group.throughput(Throughput::Elements(stats.instructions));
        group.bench_with_input(BenchmarkId::new("run", id), &w, |b, w| {
            b.iter(|| {
                let mut memory = w.init_memory();
                Simulator::new()
                    .run(&launch, &mut memory, &mut NopHook)
                    .expect("fault-free")
            });
        });
    }
    group.finish();
}

/// Execution with full tracing enabled (profiling cost, paid once per
/// kernel before planning).
fn bench_tracing(c: &mut Criterion) {
    let w = eval("gemm");
    let launch = w.launch();
    c.bench_function("sim/traced_gemm", |b| {
        b.iter(|| {
            let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta())
                .with_full_traces(0..launch.num_threads());
            let mut memory = w.init_memory();
            Simulator::new().run(&launch, &mut memory, &mut tracer).expect("fault-free");
            tracer.finish()
        });
    });
}

criterion_group!(benches, bench_assembler, bench_interpreter, bench_tracing);
criterion_main!(benches);
