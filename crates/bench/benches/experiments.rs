//! End-to-end regeneration cost of the paper's artifacts.
//!
//! One bench per artifact family:
//!
//! * `table1` — paper-scale site accounting (Eq. 1) for a big kernel;
//! * `table2` — statistical sample sizing (Eqs. 2–4);
//! * `table3_4` — the CTA/thread grouping behind Tables III/IV;
//! * `table7` — the loop statistics behind Table VII;
//! * `fig9` — a pruned campaign (the thing Figure 9 compares);
//! * `fig10` — paper-scale plan construction (the stage accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use fsp_bench::{eval, paper};
use fsp_core::{LoopTagging, PruningConfig, PruningPipeline, ThreadGrouping};
use fsp_inject::{Experiment, InjectionTarget};
use fsp_sim::{Simulator, Tracer};
use fsp_stats::{required_samples_finite, required_samples_infinite};

fn bench_table1(c: &mut Criterion) {
    let w = paper("mvt");
    let launch = w.launch();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table1_mvt_sites", |b| {
        b.iter(|| {
            let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
            let mut memory = w.init_memory();
            Simulator::new().run(&launch, &mut memory, &mut tracer).expect("runs");
            tracer.finish().total_fault_sites()
        });
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("experiments/table2_sample_sizes", |b| {
        b.iter(|| {
            let a = required_samples_infinite(0.998, 0.0063);
            let bb = required_samples_infinite(0.95, 0.03);
            let cc = required_samples_finite(7_730_000_000, 0.998, 0.0063);
            (a, bb, cc.samples)
        });
    });
}

fn bench_table3_4(c: &mut Criterion) {
    let w = paper("2dconv");
    let launch = w.launch();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let mut memory = w.init_memory();
    Simulator::new().run(&launch, &mut memory, &mut tracer).expect("runs");
    let trace = tracer.finish();
    c.bench_function("experiments/table3_grouping_2dconv", |b| {
        b.iter(|| ThreadGrouping::analyze(&trace));
    });
}

fn bench_table7(c: &mut Criterion) {
    let w = paper("gemm");
    let trace = fsp_bench::rep_trace(&w);
    let launch = w.launch();
    let forest = launch.program().cfg().loops(launch.program());
    c.bench_function("experiments/table7_loops_gemm", |b| {
        b.iter(|| {
            trace
                .full
                .values()
                .map(|t| LoopTagging::analyze(t, &forest).max_total_iterations())
                .max()
        });
    });
}

fn bench_fig9(c: &mut Criterion) {
    let w = eval("gaussian_k1");
    let experiment = Experiment::prepare(&w).expect("prepare");
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let plan = pipeline.plan_for(&experiment).expect("plan");
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig9_pruned_campaign_gaussian_k1", |b| {
        b.iter(|| pipeline.run(&experiment, &plan, workers));
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let w = paper("2dconv");
    let experiment = Experiment::prepare(&w).expect("prepare");
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig10_plan_2dconv_paper_scale", |b| {
        b.iter(|| pipeline.plan_for(&experiment).expect("plan").stages);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3_4,
    bench_table7,
    bench_fig9,
    bench_fig10
);
criterion_main!(benches);
