//! Drivers for the paper's Figures 2–10.

use std::collections::BTreeMap;

use fsp_core::{BitSampler, PredBitPolicy, PruningConfig, PruningPipeline, ThreadGrouping};
use fsp_inject::{Experiment, FaultSite, InjectionTarget, WeightedSite};
use fsp_isa::{Dest, Register};
use fsp_stats::{FiveNumber, ResilienceProfile};
use fsp_workloads::{Scale, Workload};

use crate::output::Table;
use crate::tables::{full_space, trace, trace_with_reps};
use crate::Options;

/// Figure 2 — CTA grouping from injection-outcome distributions, using
/// the library's [`fsp_core::OutcomeGrouping`] (the paper's ground-truth
/// classifier) and quantifying agreement with the iCnt classifier.
#[must_use]
pub fn fig2(opts: &Options) -> String {
    use fsp_core::OutcomeGrouping;
    let mut out = String::from(
        "Figure 2: CTA grouping from fault-injection outcomes at one target instruction\n\n",
    );
    for id in ["2dconv", "hotspot"] {
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let (experiment, space) = full_space(&w);
        let pc = OutcomeGrouping::default_target_pc(&space);
        let grouping = OutcomeGrouping::analyze(&experiment, &space, pc, 2.0, opts.workers);
        let mut t = Table::new(&["CTA", "min", "q1", "median", "q3", "max", "mean masked%"]);
        for (cta, (f, mean)) in grouping
            .distributions
            .iter()
            .zip(&grouping.means)
            .enumerate()
        {
            t.row(vec![
                cta.to_string(),
                format!("{:.1}", f.min),
                format!("{:.1}", f.q1),
                format!("{:.1}", f.median),
                format!("{:.1}", f.q3),
                format!("{:.1}", f.max),
                format!("{mean:.1}"),
            ]);
        }
        // Quantify the paper's Fig. 2 / Fig. 3 claim: the outcome-based
        // grouping agrees with the pure-iCnt grouping.
        let icnt_grouping = ThreadGrouping::analyze(space.trace());
        let n = space.trace().num_ctas() as usize;
        let by_icnt = fsp_stats::labels_from_groups(
            &icnt_grouping
                .groups
                .iter()
                .map(|g| g.ctas.clone())
                .collect::<Vec<_>>(),
            n,
        );
        let agreement = fsp_stats::rand_index(&grouping.labels(), &by_icnt);
        // The iCnt classifier may be *finer* than the outcome grouping
        // (splitting CTAs whose outcomes coincide is harmless - it only
        // costs extra representatives). What must never happen is the
        // reverse: two CTAs sharing an iCnt group but differing in
        // outcomes.
        let outcome_labels = grouping.labels();
        let refines = (0..n).all(|i| {
            (0..n).all(|j| by_icnt[i] != by_icnt[j] || outcome_labels[i] == outcome_labels[j])
        });
        out.push_str(&format!(
            "{} (target pc {pc}):\n{t}\nOutcome-based CTA groups: {:?}\n\
             Rand index vs iCnt grouping (Fig. 3): {agreement:.3}; \
             iCnt grouping refines outcome grouping: {refines}\n\n",
            w.app(),
            grouping.groups,
        ));
    }
    out
}

/// Figure 3 — CTA grouping from per-CTA iCnt distributions, checked
/// against the iCnt classifier.
#[must_use]
pub fn fig3(_opts: &Options) -> String {
    let mut out = String::from(
        "Figure 3: CTA grouping from per-thread dynamic instruction counts (iCnt)\n\n",
    );
    for id in ["2dconv", "hotspot"] {
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let trace = trace(&w, std::iter::empty());
        let grouping = ThreadGrouping::analyze(&trace);
        let mut t = Table::new(&["CTA", "min", "q1", "median", "q3", "max", "mean iCnt"]);
        for cta in 0..trace.num_ctas() {
            let icnts: Vec<f64> = trace
                .cta_threads(cta)
                .map(|tid| f64::from(trace.icnt[tid as usize]))
                .collect();
            let f = FiveNumber::of(&icnts);
            t.row(vec![
                cta.to_string(),
                format!("{:.0}", f.min),
                format!("{:.0}", f.q1),
                format!("{:.0}", f.median),
                format!("{:.0}", f.q3),
                format!("{:.0}", f.max),
                format!("{:.1}", f.mean),
            ]);
        }
        let groups: Vec<Vec<u32>> = grouping.groups.iter().map(|g| g.ctas.clone()).collect();
        out.push_str(&format!(
            "{}:\n{t}\niCnt-based CTA groups: {groups:?}\n\n",
            w.app()
        ));
    }
    out
}

/// Figure 4 — per-thread masked% vs iCnt inside one CTA.
#[must_use]
pub fn fig4(opts: &Options) -> String {
    let mut out =
        String::from("Figure 4: thread grouping inside one CTA (masked% tracks iCnt)\n\n");
    for id in ["2dconv", "hotspot"] {
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let (experiment, space) = full_space(&w);
        let trace = space.trace().clone();
        // A CTA with iCnt diversity: the one whose thread iCnts span widest.
        let cta = (0..trace.num_ctas())
            .max_by_key(|&c| {
                let range = trace.cta_threads(c);
                let (mut lo, mut hi) = (u32::MAX, 0);
                for t in range {
                    lo = lo.min(trace.icnt[t as usize]);
                    hi = hi.max(trace.icnt[t as usize]);
                }
                hi - lo
            })
            .expect("at least one CTA");
        // Bit-sample each thread's sites to keep the campaign tractable.
        let sampler = BitSampler {
            samples_per_32: 8,
            pred_policy: PredBitPolicy::All,
        };
        let program = w.launch();
        let mut rows: Vec<(u32, u32, f64)> = Vec::new();
        for tid in trace.cta_threads(cta) {
            let full = &trace.full[tid];
            let mut sites = Vec::new();
            for (i, e) in full.entries.iter().enumerate() {
                let instr = program.program().instr(e.pc as usize);
                for sel in sampler.select_instruction(instr) {
                    for &bit in &sel.bits {
                        sites.push(WeightedSite::from(FaultSite {
                            tid,
                            dyn_idx: i as u32,
                            bit,
                        }));
                    }
                }
            }
            let masked = if sites.is_empty() {
                100.0
            } else {
                experiment
                    .run_campaign(&sites, opts.workers)
                    .profile
                    .pct_masked()
            };
            rows.push((tid, trace.icnt[tid as usize], masked));
        }
        let mut t = Table::new(&["thread", "iCnt", "masked%"]);
        for (tid, icnt, masked) in &rows {
            t.row(vec![
                tid.to_string(),
                icnt.to_string(),
                format!("{masked:.1}"),
            ]);
        }
        // Verify the claim: same iCnt => similar masked%.
        let mut by_icnt: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for (_, icnt, masked) in &rows {
            by_icnt.entry(*icnt).or_default().push(*masked);
        }
        let max_spread = by_icnt
            .values()
            .map(|v| {
                let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0, f64::max);
        out.push_str(&format!(
            "{} (CTA {cta}):\n{t}\nmax masked%-spread within an iCnt group: {max_spread:.1}%\n\n",
            w.app()
        ));
    }
    out
}

/// Figure 5 — PTXPlus trace alignment of two PathFinder representatives.
#[must_use]
pub fn fig5(_opts: &Options) -> String {
    let w = fsp_workloads::by_id("pathfinder", Scale::Eval).expect("registered");
    let (trace, grouping) = trace_with_reps(&w);
    let mut reps: Vec<u32> = grouping
        .representatives(&trace)
        .iter()
        .map(|r| r.tid)
        .collect();
    reps.sort_by_key(|tid| std::cmp::Reverse(trace.full[*tid].entries.len()));
    let (a, b) = (reps[0], reps[1]);
    let (ta, tb) = (&trace.full[a], &trace.full[b]);
    let alignment = fsp_core::align_lcs(&ta.pcs(), &tb.pcs());
    let matched_a: std::collections::BTreeSet<u32> =
        alignment.pairs.iter().map(|&(x, _)| x).collect();

    let program = w.launch();
    let mut out = format!(
        "Figure 5: PTXPlus trace comparison of two PathFinder representatives\n\
         thread a (tid {a}, iCnt {}), thread b (tid {b}, iCnt {}), common {}\n\n\
         thread a's dynamic instructions (| = common with b, * = a only):\n",
        ta.entries.len(),
        tb.entries.len(),
        alignment.pairs.len()
    );
    // Print the interesting window: 4 instructions around each transition.
    let mut last_state = None;
    let mut elided = 0usize;
    for (i, e) in ta.entries.iter().enumerate() {
        let common = matched_a.contains(&(i as u32));
        let boundary = last_state != Some(common)
            || ta
                .entries
                .get(i + 1)
                .is_some_and(|_| matched_a.contains(&(i as u32 + 1)) != common);
        if boundary || i < 3 || i + 3 >= ta.entries.len() {
            if elided > 0 {
                out.push_str(&format!("      ... {elided} more ...\n"));
                elided = 0;
            }
            let marker = if common { '|' } else { '*' };
            out.push_str(&format!(
                "  {marker} {i:4}  {}\n",
                program.program().instr(e.pc as usize)
            ));
        } else {
            elided += 1;
        }
        last_state = Some(common);
    }
    if elided > 0 {
        out.push_str(&format!("      ... {elided} more ...\n"));
    }
    out
}

/// Figure 6 — outcome distribution vs number of sampled loop iterations.
#[must_use]
pub fn fig6(opts: &Options) -> String {
    let mut out =
        String::from("Figure 6: impact of loop-wise pruning on the outcome distribution\n\n");
    let cases: [(&str, u64); 4] = [
        ("pathfinder", 0),
        ("syrk", 0),
        ("kmeans_k1", 0),
        ("kmeans_k1", 1),
    ];
    for (id, seed_offset) in cases {
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let experiment = Experiment::prepare(&w).expect("workload runs");
        let mut t = Table::new(&["#iterations", "masked%", "sdc%", "other%", "#runs"]);
        for num_iter in [1usize, 2, 3, 4, 6, 8, 10, 15] {
            let pipeline = PruningPipeline::new(PruningConfig {
                loop_samples: num_iter,
                loop_seed: opts.seed.wrapping_add(seed_offset),
                ..PruningConfig::default()
            });
            let plan = pipeline.plan_for(&experiment).expect("plan");
            let profile = pipeline.run(&experiment, &plan, opts.workers);
            t.row(vec![
                num_iter.to_string(),
                format!("{:.1}", profile.pct_masked()),
                format!("{:.1}", profile.pct_sdc()),
                format!("{:.1}", profile.pct_other()),
                plan.sites.len().to_string(),
            ]);
        }
        out.push_str(&format!(
            "{} {} (loop seed +{seed_offset}):\n{t}\n",
            w.app(),
            w.id()
        ));
    }
    out
}

/// Figure 7 — outcome distribution by bit-position section and register
/// type.
#[must_use]
pub fn fig7(opts: &Options) -> String {
    let mut out =
        String::from("Figure 7: outcome distribution by bit-position section (.u32 vs .pred)\n\n");
    for id in ["2dconv", "mvt"] {
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let (experiment, space) = full_space(&w);
        let trace = space.trace().clone();
        let program = w.launch();
        // Partition each thread's sites by (register class, bit section).
        let mut buckets: BTreeMap<(bool, u32), Vec<FaultSite>> = BTreeMap::new();
        for (tid, full) in trace.full.iter() {
            for (i, e) in full.entries.iter().enumerate() {
                let instr = program.program().instr(e.pc as usize);
                let mut offset = 0u32;
                for dest in instr.dests() {
                    let Dest::Reg(reg) = dest else { continue };
                    if reg.is_discard() {
                        continue;
                    }
                    let width = instr.register_dest_bits(*reg);
                    let is_pred = matches!(reg, Register::Pred(_));
                    for bit in 0..width {
                        let section = if is_pred { bit } else { bit / 8 };
                        buckets
                            .entry((is_pred, section))
                            .or_default()
                            .push(FaultSite {
                                tid,
                                dyn_idx: i as u32,
                                bit: offset + bit,
                            });
                    }
                    offset += width;
                }
            }
        }
        let mut t = Table::new(&["reg type", "bits", "masked%", "sdc%", "other%", "n"]);
        let per_bucket = if opts.quick { 150 } else { 400 };
        for ((is_pred, section), sites) in &buckets {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed + u64::from(*section));
            let sample: Vec<WeightedSite> = sites
                .choose_multiple(&mut rng, per_bucket.min(sites.len()))
                .map(|&s| WeightedSite::from(s))
                .collect();
            let profile = experiment.run_campaign(&sample, opts.workers).profile;
            let label = if *is_pred {
                format!("{section}")
            } else {
                format!("{}-{}", section * 8, section * 8 + 7)
            };
            t.row(vec![
                if *is_pred { ".pred" } else { ".u32" }.to_owned(),
                label,
                format!("{:.1}", profile.pct_masked()),
                format!("{:.1}", profile.pct_sdc()),
                format!("{:.1}", profile.pct_other()),
                sample.len().to_string(),
            ]);
        }
        out.push_str(&format!("{}:\n{t}\n", w.app()));
    }
    out
}

/// Figure 8 — outcome distribution vs number of sampled bit positions.
#[must_use]
pub fn fig8(opts: &Options) -> String {
    let mut out =
        String::from("Figure 8: impact of bit-wise pruning on the outcome distribution\n\n");
    for id in ["2dconv", "mvt"] {
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let experiment = Experiment::prepare(&w).expect("workload runs");
        let mut t = Table::new(&["#sampled bits", "masked%", "sdc%", "#runs"]);
        for samples in [4u32, 8, 16, 0] {
            let pipeline = PruningPipeline::new(PruningConfig {
                bits: BitSampler {
                    samples_per_32: samples,
                    pred_policy: PredBitPolicy::All,
                },
                ..PruningConfig::default()
            });
            let plan = pipeline.plan_for(&experiment).expect("plan");
            let profile = pipeline.run(&experiment, &plan, opts.workers);
            t.row(vec![
                if samples == 0 {
                    "all".to_owned()
                } else {
                    samples.to_string()
                },
                format!("{:.1}", profile.pct_masked()),
                format!("{:.1}", profile.pct_sdc()),
                plan.sites.len().to_string(),
            ]);
        }
        out.push_str(&format!("{}:\n{t}\n", w.app()));
    }
    out
}

/// Runs one kernel's pruned campaign and baseline, returning
/// `(plan sites, pruned profile, baseline profile)`.
fn prune_vs_baseline(
    w: &Workload,
    opts: &Options,
) -> (usize, ResilienceProfile, ResilienceProfile) {
    let experiment = Experiment::prepare(w).expect("workload runs");
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let plan = pipeline.plan_for(&experiment).expect("plan");
    let pruned = pipeline.run(&experiment, &plan, opts.workers);
    let space = experiment.site_space(0..w.launch().num_threads());
    let baseline = fsp_core::run_baseline(
        &experiment,
        &space,
        opts.baseline_samples(),
        opts.seed,
        opts.workers,
    );
    (plan.sites.len(), pruned, baseline)
}

/// Figure 9 — error-resilience comparison: progressive pruning vs the
/// statistical baseline, across all Table I kernels.
#[must_use]
pub fn fig9(opts: &Options) -> String {
    let mut t = Table::new(&[
        "Kernel",
        "pruned msk/sdc/other",
        "baseline msk/sdc/other",
        "Δmsk",
        "Δsdc",
        "Δother",
        "#runs",
    ]);
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    let mut n = 0;
    for w in fsp_workloads::all(Scale::Eval) {
        if w.paper_reference().is_none() {
            continue; // NN is not part of the paper's injection evaluation
        }
        let (runs, pruned, baseline) = prune_vs_baseline(&w, opts);
        let (dm, ds, do_) = pruned.diff(&baseline);
        sums.0 += dm.abs();
        sums.1 += ds.abs();
        sums.2 += do_.abs();
        n += 1;
        let fmt = |p: &ResilienceProfile| {
            format!(
                "{:5.1}/{:5.1}/{:5.1}",
                p.pct_masked(),
                p.pct_sdc(),
                p.pct_other()
            )
        };
        t.row(vec![
            format!("{} {}", w.app(), w.id()),
            fmt(&pruned),
            fmt(&baseline),
            format!("{dm:+.2}"),
            format!("{ds:+.2}"),
            format!("{do_:+.2}"),
            runs.to_string(),
        ]);
    }
    format!(
        "Figure 9: pruned vs baseline resilience profiles ({} baseline runs per kernel)\n\n{t}\n\
         Mean |Δ|: masked {:.2}%, sdc {:.2}%, other {:.2}%\n",
        opts.baseline_samples(),
        sums.0 / f64::from(n),
        sums.1 / f64::from(n),
        sums.2 / f64::from(n),
    )
}

/// Figure 10 — per-stage fault-site reduction at paper scale.
#[must_use]
pub fn fig10(opts: &Options) -> String {
    let mut t = Table::new(&[
        "Kernel",
        "exhaustive",
        "static-ACE",
        "+thread-wise",
        "+insn-wise",
        "+loop-wise",
        "+bit-wise",
        "baseline",
        "orders",
    ]);
    let baseline = opts.baseline_samples() as u64;
    for w in fsp_workloads::all(Scale::Paper) {
        if w.paper_reference().is_none() {
            continue;
        }
        let experiment = Experiment::prepare(&w).expect("workload runs");
        let pipeline = PruningPipeline::new(PruningConfig::default());
        let plan = pipeline.plan_for(&experiment).expect("plan");
        let s = plan.stages;
        t.row(vec![
            format!("{} {}", w.app(), w.id()),
            crate::output::sci(s.exhaustive as f64),
            crate::output::sci(s.after_static as f64),
            crate::output::sci(s.after_thread as f64),
            crate::output::sci(s.after_instruction as f64),
            crate::output::sci(s.after_loop as f64),
            s.after_bit.to_string(),
            baseline.to_string(),
            format!("{:.1}", s.reduction_orders()),
        ]);
    }
    format!(
        "Figure 10: fault sites remaining after each progressive pruning stage\n\
         (paper-scale geometry; \"orders\" = log10(exhaustive / final))\n\n{t}"
    )
}
