//! Drivers for the extensions beyond the paper: fault-model sweeps,
//! adaptive loop sampling and stage ablations.

use fsp_core::{
    AdaptiveConfig, BitSampler, CommonalityConfig, PredBitPolicy, PruningConfig, PruningPipeline,
};
use fsp_inject::{Experiment, FaultModel, InjectionTarget, WeightedSite};
use fsp_workloads::{Scale, Workload};

use crate::output::Table;
use crate::Options;

/// Compares the resilience profile under every [`FaultModel`] on one
/// kernel, using the same uniformly sampled site set for all models.
#[must_use]
pub fn fault_model_sweep(w: &Workload, samples: usize, opts: &Options) -> String {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let experiment = Experiment::prepare(w).expect("workload runs");
    let space = experiment.site_space(0..w.launch().num_threads());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sites: Vec<WeightedSite> = space
        .sample_many(samples, &mut rng)
        .into_iter()
        .map(WeightedSite::from)
        .collect();
    let mut t = Table::new(&["fault model", "masked%", "sdc%", "crash+hang%"]);
    for model in FaultModel::ALL {
        let profile = experiment
            .run_campaign_with(&sites, model, opts.workers)
            .profile;
        t.row(vec![
            model.name().to_owned(),
            format!("{:.1}", profile.pct_masked()),
            format!("{:.1}", profile.pct_sdc()),
            format!("{:.1}", profile.pct_other()),
        ]);
    }
    format!(
        "Fault-model sweep for {} ({} shared random sites):\n\n{t}",
        w.registry_id(),
        sites.len()
    )
}

/// Runs the adaptive loop-sampling procedure (the automated Figure 6) and
/// prints the convergence history.
#[must_use]
pub fn adaptive_report(w: &Workload, opts: &Options) -> String {
    let experiment = Experiment::prepare(w).expect("workload runs");
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let result = pipeline
        .run_adaptive(&experiment, &AdaptiveConfig::default(), opts.workers)
        .expect("adaptive run");
    let mut t = Table::new(&["#iterations", "masked%", "sdc%", "other%"]);
    for (n, p) in &result.history {
        t.row(vec![
            n.to_string(),
            format!("{:.1}", p.pct_masked()),
            format!("{:.1}", p.pct_sdc()),
            format!("{:.1}", p.pct_other()),
        ]);
    }
    format!(
        "Adaptive loop sampling for {}: converged at {} iteration(s), \
         {} injection runs\n\n{t}",
        w.registry_id(),
        result.loop_samples,
        result.plan.stages.after_bit
    )
}

/// Ablation: toggles each pruning stage independently and reports runs vs
/// accuracy against a shared baseline.
#[must_use]
pub fn ablation(w: &Workload, opts: &Options) -> String {
    let experiment = Experiment::prepare(w).expect("workload runs");
    let space = experiment.site_space(0..w.launch().num_threads());
    let baseline = fsp_core::run_baseline(
        &experiment,
        &space,
        opts.baseline_samples(),
        opts.seed,
        opts.workers,
    );

    // Stage bundles, progressively matching the paper's Figure 10 order,
    // plus single-stage ablations.
    let configs: Vec<(&str, PruningConfig)> = vec![
        ("thread only", PruningConfig::thread_wise_only()),
        (
            "thread + insn",
            PruningConfig {
                commonality: Some(CommonalityConfig::default()),
                ..PruningConfig::thread_wise_only()
            },
        ),
        (
            "thread + loop",
            PruningConfig {
                loop_samples: 7,
                ..PruningConfig::thread_wise_only()
            },
        ),
        (
            "thread + bit",
            PruningConfig {
                bits: BitSampler {
                    samples_per_32: 16,
                    pred_policy: PredBitPolicy::ZeroFlagOnly,
                },
                ..PruningConfig::thread_wise_only()
            },
        ),
        ("full pipeline", PruningConfig::default()),
    ];
    let mut t = Table::new(&["stages", "#runs", "Δmasked", "Δsdc", "Δother"]);
    for (name, config) in configs {
        let pipeline = PruningPipeline::new(config);
        let plan = pipeline.plan_for(&experiment).expect("plan");
        // Skip configurations whose campaigns would dwarf the baseline.
        if plan.stages.after_bit > 200_000 {
            t.row(vec![
                name.to_owned(),
                format!("{} (skipped)", plan.stages.after_bit),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let profile = pipeline.run(&experiment, &plan, opts.workers);
        let (dm, ds, do_) = profile.diff(&baseline);
        t.row(vec![
            name.to_owned(),
            plan.stages.after_bit.to_string(),
            format!("{dm:+.2}%"),
            format!("{ds:+.2}%"),
            format!("{do_:+.2}%"),
        ]);
    }
    format!(
        "Stage ablation for {} (baseline: {} runs -> {baseline}):\n\n{t}",
        w.registry_id(),
        opts.baseline_samples()
    )
}

/// Convenience: look up an eval-scale workload by id.
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn eval_workload(id: &str) -> Workload {
    fsp_workloads::by_id(id, Scale::Eval).unwrap_or_else(|| panic!("unknown workload `{id}`"))
}

/// Per-opcode vulnerability: groups sampled injection outcomes by the
/// opcode of the targeted instruction (an AVF-style breakdown the paper's
/// Section III-B campaign design hints at: "a diverse set of dynamic
/// instructions including memory access, arithmetic, logic, and special
/// functional instructions").
#[must_use]
pub fn opcode_vulnerability(w: &Workload, samples: usize, opts: &Options) -> String {
    use fsp_stats::ResilienceProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    let experiment = Experiment::prepare(w).expect("workload runs");
    let space = experiment.site_space(0..w.launch().num_threads());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sites: Vec<WeightedSite> = space
        .sample_many(samples, &mut rng)
        .into_iter()
        .map(WeightedSite::from)
        .collect();
    let result = experiment.run_campaign(&sites, opts.workers);

    let launch = w.launch();
    let program = launch.program();
    let trace = space.trace();
    let mut per_opcode: BTreeMap<&'static str, ResilienceProfile> = BTreeMap::new();
    for (ws, &outcome) in sites.iter().zip(&result.outcomes) {
        let full = &trace.full[ws.site.tid];
        let pc = full.entries[ws.site.dyn_idx as usize].pc;
        let op = program.instr(pc as usize).opcode.mnemonic();
        per_opcode.entry(op).or_default().record(outcome);
    }
    let mut t = Table::new(&["opcode", "masked%", "sdc%", "crash%", "hang%", "n"]);
    for (op, p) in &per_opcode {
        let total = p.total().max(1.0);
        t.row(vec![
            (*op).to_owned(),
            format!("{:.1}", p.pct_masked()),
            format!("{:.1}", p.pct_sdc()),
            format!("{:.1}", 100.0 * p.crashes() / total),
            format!("{:.1}", 100.0 * p.hangs() / total),
            format!("{:.0}", p.total()),
        ]);
    }
    format!(
        "Per-opcode vulnerability for {} ({} sampled sites):\n\n{t}",
        w.registry_id(),
        sites.len()
    )
}

/// Loop-seed sensitivity: runs the default pruned campaign under several
/// loop-sampling seeds and reports the spread — the stability check behind
/// the paper's Figure 6(c)/(d) two-seed comparison.
#[must_use]
pub fn seed_sensitivity(w: &Workload, opts: &Options) -> String {
    let experiment = Experiment::prepare(w).expect("workload runs");
    let mut t = Table::new(&["loop seed", "masked%", "sdc%", "other%", "#runs"]);
    let mut masked = Vec::new();
    for offset in 0..5u64 {
        let pipeline = PruningPipeline::new(PruningConfig {
            loop_seed: opts.seed.wrapping_add(offset * 0x9E37),
            ..PruningConfig::default()
        });
        let plan = pipeline.plan_for(&experiment).expect("plan");
        let profile = pipeline.run(&experiment, &plan, opts.workers);
        masked.push(profile.pct_masked());
        t.row(vec![
            format!("+{offset}"),
            format!("{:.1}", profile.pct_masked()),
            format!("{:.1}", profile.pct_sdc()),
            format!("{:.1}", profile.pct_other()),
            plan.stages.after_bit.to_string(),
        ]);
    }
    let lo = masked.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = masked.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    format!(
        "Loop-seed sensitivity for {} (masked% spread {:.2} points):\n\n{t}",
        w.registry_id(),
        hi - lo
    )
}

/// SDC-severity histogram: for sampled injections that silently corrupt
/// the output, how large is the relative output error?
#[must_use]
pub fn sdc_severity(w: &Workload, samples: usize, opts: &Options) -> String {
    use fsp_inject::SeverityBucket;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    let experiment = Experiment::prepare(w).expect("workload runs");
    let space = experiment.site_space(0..w.launch().num_threads());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sites = space.sample_many(samples, &mut rng);
    // Severity needs per-run detail; run serially but cheaply.
    let mut buckets: BTreeMap<SeverityBucket, usize> = BTreeMap::new();
    let mut errors = Vec::new();
    let mut sdc = 0usize;
    for site in &sites {
        let (outcome, severity) =
            experiment.run_one_detailed(*site, fsp_inject::FaultModel::SingleBitFlip);
        if outcome == fsp_stats::Outcome::Sdc {
            sdc += 1;
            let e = severity.expect("SDC outcomes carry a severity");
            *buckets.entry(SeverityBucket::of(e)).or_default() += 1;
            if e.is_finite() {
                errors.push(e);
            }
        }
    }
    let mut t = Table::new(&["severity", "count", "% of SDC"]);
    for bucket in SeverityBucket::ALL {
        let n = buckets.get(&bucket).copied().unwrap_or(0);
        t.row(vec![
            bucket.name().to_owned(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / sdc.max(1) as f64),
        ]);
    }
    let median = if errors.is_empty() {
        "n/a".to_owned()
    } else {
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        format!("{:.3e}", errors[errors.len() / 2])
    };
    format!(
        "SDC severity for {} ({} samples, {} SDC; median finite rel. error {median}):\n\n{t}",
        w.registry_id(),
        sites.len(),
        sdc
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_model_sweep_runs_and_orders_sanely() {
        let w = eval_workload("gaussian_k1");
        let opts = Options {
            quick: true,
            ..Options::default()
        };
        let report = fault_model_sweep(&w, 200, &opts);
        assert!(report.contains("single-bit-flip"));
        assert!(report.contains("random-value"));
    }

    #[test]
    fn adaptive_report_runs() {
        let w = eval_workload("gaussian_k125");
        let opts = Options {
            quick: true,
            ..Options::default()
        };
        let report = adaptive_report(&w, &opts);
        // Gaussian Fan1 is loop-free: converges immediately.
        assert!(report.contains("converged at 1 iteration"));
    }
}
