//! Plain-text table rendering.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Scientific-notation formatting matching the paper's Table I style
/// (`3.44E+07`).
#[must_use]
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_owned();
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = x / 10f64.powi(exp);
    format!("{mantissa:.2}E{exp:+03}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(sci(3.44e7), "3.44E+07");
        assert_eq!(sci(1.63e5), "1.63E+05");
        assert_eq!(sci(0.0), "0");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
