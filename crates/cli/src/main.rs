//! `fsp` — command-line driver for the fault-site-pruning reproduction.

use std::process::ExitCode;

use fsp_cli::{figures, tables, Options};
use fsp_core::{PruningConfig, PruningPipeline, ThreadGrouping};
use fsp_inject::{Experiment, InjectionTarget};
use fsp_workloads::Scale;

const USAGE: &str = "\
fsp — fault-site pruning for practical reliability analysis of GPGPU applications

USAGE:
    fsp <COMMAND> [OPTIONS]

COMMANDS:
    list                         List the registered kernels
    profile <kernel> [--paper]   Trace a kernel: threads, iCnt groups, fault sites
    campaign <kernel> [-n N]     Run a random-sampling injection campaign (eval scale)
    prune <kernel>               Run the progressive-pruning campaign and compare
    models <kernel> [-n N]       Compare fault models (single/double-bit, stuck-at, random)
    adaptive <kernel>            Adaptive loop-iteration sampling (automated Fig. 6)
    ablation <kernel>            Per-stage accuracy/cost ablation
    seeds <kernel>               Loop-seed sensitivity of the pruned estimate
    severity <kernel> [-n N]     SDC severity histogram (relative output error)
    opcodes <kernel> [-n N]      Per-opcode vulnerability breakdown
    disasm <kernel>              Disassemble a kernel (PTXPlus-like listing)
    lint [kernel] [--json]       Statically lint a kernel (all kernels when omitted);
         [--deny]                --json emits findings as JSON, --deny exits
                                 non-zero on any finding (warnings included)
    ace <kernel>                 Static ACE classification of a kernel's instructions
    protect <kernel>             Selectively harden a kernel (DMR) and verify by
                                 re-injection; see --budget / --scope / -n
    harden-report <kernel>       Coverage-vs-overhead curve over a budget sweep
    bench-inject [-n N] [--json] Benchmark campaign throughput per kernel:
                                 slow path (full re-execution) vs solo fast
                                 path (checkpoint resume + early convergence)
                                 vs batched fast path (multi-lane golden
                                 replay, see --batch); --json writes
                                 BENCH_inject.json (override with --out)
    ptx <file.ptx>               Translate an nvcc-style PTX kernel and disassemble it
    trace <kernel> <tid>         Dump one thread's dynamic instruction trace
    reproduce <ARTIFACT>         Regenerate a paper artifact:
                                 table1..table7, fig2..fig10, all
    serve                        Run the campaign orchestration service
    submit <kernel> [-n N]      Submit a campaign job (pruned, or sampled with -n)
    status [job-id]              Show one job (or all jobs) on the server;
                                 with an id, also renders the live per-outcome
                                 estimate ± CI table from `/progress`
    watch <job-id>               Live-refresh a job's streaming outcome
                                 estimates until it reaches a terminal state
    fetch <job-id>               Fetch a completed job's result document
    cancel <job-id>              Cancel a queued or running job
    worker                       Run a fleet worker: pull campaign leases from a
                                 coordinator (`fsp serve`), execute them with the
                                 checkpoint-resume fast path, stream outcomes back
    fleet-status                 Show the coordinator's fleet counters: chunks by
                                 state, requeues, duplicates, per-worker stats
    timeline [--out PATH]        Fetch the coordinator's live span timeline
                                 (`GET /trace`, Chrome trace-event JSON; the
                                 server must run with `serve --trace`)
    fleet-bench [--json]         Benchmark fleet scaling: sites/sec at 1/2/4
                                 workers for three kernels, plus the requeue
                                 overhead of killing a worker mid-run; --json
                                 writes BENCH_fleet.json (override with --out)

OPTIONS:
    --workers N    Campaign worker threads (default: all cores); for
                   `serve`, the job worker pool width
    --quick        Smaller statistical baselines (~6K instead of 60K runs)
    --seed S       RNG seed (default 0xF5EED)
    --batch N      For `bench-inject`: lane budget for batched multi-lane
                   injection — sites sharing a CTA ride one golden replay
                   as shadow lanes (default 16, max 64; 1 = solo path;
                   campaigns elsewhere always use the default budget)
    --out PATH     For `reproduce`: also write the artifact text to PATH
    -n N           Samples for `campaign`/`submit` (default: statistical
                   baseline / pruned mode)
    --addr A       Service address (default 127.0.0.1:7071)
    --data DIR     For `serve`: persistent state directory (default .fsp-serve)
    --local        For `submit`: run in-process, print the same result document
    --wait         For `submit`: poll until done, then print the result
    --budget F     For `protect`/`submit --protect`: overhead budget as a
                   fraction of full DMR (default 0.25; 1.0 = full DMR)
    --scope S      For `protect`: planner granularity, one of
                   range | opcode | thread-group (default range)
    --protect      For `submit`: submit a protect-mode job (uses --budget,
                   --scope and -n)
    --stop-at-margin E
                   For `submit`: stop the campaign early once every
                   outcome-class confidence interval half-width fits ±E.
                   Unlike --fleet this changes the result document, so it
                   is part of the job spec (and its fingerprint)
    --stop-confidence C
                   For `submit`: confidence level for the --stop-at-margin
                   intervals (default 0.998)
    --fleet        For `submit`: execute on fleet workers (start `fsp worker`
                   processes against the same --addr); placement only — the
                   result document stays byte-identical to a local run
    --name S       For `worker`: worker name for lease attribution and
                   metrics labels (default worker-<pid>)
    --idle-exit    For `worker`: exit once the coordinator reports no
                   pending chunks, instead of idling for more work
    --fail-after N For `worker`: abandon a lease after completing N chunks
                   without releasing it (crash simulation for fleet tests)
    --lease-ms N   For `serve`: lease TTL in milliseconds before an
                   unheartbeated chunk is re-served (default 30000)
    --chunk N      For `serve`: fault sites per lease chunk (default 64)
    --trace        For `serve`: enable the span tracer (serves `GET /trace`;
                   fleet grants instruct workers to trace too)
    --trace-out P  Any command: trace it and write the span timeline to P as
                   Chrome trace-event JSON (load in Perfetto / about:tracing)
    --profile      Any command: print an aggregated span profile (count,
                   total/self/min/max time per span name) to stderr on exit
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut samples: Option<usize> = None;
    let mut paper = false;
    let mut out_path: Option<String> = None;
    let mut addr = "127.0.0.1:7071".to_owned();
    let mut data_dir = ".fsp-serve".to_owned();
    let mut local = false;
    let mut wait = false;
    let mut json = false;
    let mut deny = false;
    let mut budget = 0.25f64;
    let mut scope = fsp_protect::ProtectScope::default();
    let mut protect_mode = false;
    let mut fleet = false;
    let mut stop_margin: Option<f64> = None;
    let mut stop_confidence: Option<f64> = None;
    let mut worker_name: Option<String> = None;
    let mut idle_exit = false;
    let mut fail_after: Option<usize> = None;
    let mut lease_ms: Option<u64> = None;
    let mut chunk: Option<usize> = None;
    let mut trace = false;
    let mut trace_out: Option<String> = None;
    let mut profile_spans = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                budget = parse(args.get(i), "--budget")?;
                if !(0.0..=1.0).contains(&budget) {
                    return Err("--budget must be in 0.0..=1.0".to_owned());
                }
            }
            "--scope" => {
                i += 1;
                let name = args.get(i).ok_or("--scope needs a value")?;
                scope = fsp_protect::ProtectScope::from_name(name).ok_or_else(|| {
                    format!("unknown scope `{name}` (range | opcode | thread-group)")
                })?;
            }
            "--protect" => protect_mode = true,
            "--workers" => {
                i += 1;
                opts.workers = parse(args.get(i), "--workers")?;
            }
            "--seed" => {
                i += 1;
                opts.seed = parse(args.get(i), "--seed")?;
            }
            "--batch" => {
                i += 1;
                opts.batch = parse(args.get(i), "--batch")?;
                if !(1..=fsp_inject::MAX_BATCH).contains(&opts.batch) {
                    return Err(format!("--batch must be in 1..={}", fsp_inject::MAX_BATCH));
                }
            }
            "-n" => {
                i += 1;
                samples = Some(parse(args.get(i), "-n")?);
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).ok_or("--out needs a path")?.clone());
            }
            "--addr" => {
                i += 1;
                addr = args.get(i).ok_or("--addr needs an address")?.clone();
            }
            "--data" => {
                i += 1;
                data_dir = args.get(i).ok_or("--data needs a directory")?.clone();
            }
            "--name" => {
                i += 1;
                worker_name = Some(args.get(i).ok_or("--name needs a value")?.clone());
            }
            "--fail-after" => {
                i += 1;
                fail_after = Some(parse(args.get(i), "--fail-after")?);
            }
            "--lease-ms" => {
                i += 1;
                lease_ms = Some(parse(args.get(i), "--lease-ms")?);
            }
            "--chunk" => {
                i += 1;
                chunk = Some(parse(args.get(i), "--chunk")?);
            }
            "--stop-at-margin" => {
                i += 1;
                let margin: f64 = parse(args.get(i), "--stop-at-margin")?;
                if !(margin > 0.0 && margin < 1.0) {
                    return Err("--stop-at-margin must be in (0, 1)".to_owned());
                }
                stop_margin = Some(margin);
            }
            "--stop-confidence" => {
                i += 1;
                let confidence: f64 = parse(args.get(i), "--stop-confidence")?;
                if !(confidence > 0.0 && confidence < 1.0) {
                    return Err("--stop-confidence must be in (0, 1)".to_owned());
                }
                stop_confidence = Some(confidence);
            }
            "--fleet" => fleet = true,
            "--trace" => trace = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).ok_or("--trace-out needs a path")?.clone());
            }
            "--profile" => profile_spans = true,
            "--idle-exit" => idle_exit = true,
            "--json" => json = true,
            "--deny" => deny = true,
            "--quick" => opts.quick = true,
            "--paper" => paper = true,
            "--local" => local = true,
            "--wait" => wait = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => positional.push(other.to_owned()),
        }
        i += 1;
    }
    let Some(command) = positional.first() else {
        return Err("missing command".to_owned());
    };
    let stop = match (stop_margin, stop_confidence) {
        (Some(margin), confidence) => Some((margin, confidence.unwrap_or(0.998))),
        (None, Some(_)) => return Err("--stop-confidence requires --stop-at-margin".to_owned()),
        (None, None) => None,
    };
    // The span tracer is process-global: any of the observability
    // surfaces switches it on before the command runs.
    if trace || trace_out.is_some() || profile_spans {
        fsp_obs::set_tracing(true);
    }
    let result = match command.as_str() {
        "list" => list(),
        "profile" => profile(positional.get(1), paper),
        "campaign" => campaign(positional.get(1), samples, &opts),
        "prune" => prune(positional.get(1), &opts),
        "models" => models(positional.get(1), samples, &opts),
        "adaptive" => adaptive(positional.get(1), &opts),
        "ablation" => ablation(positional.get(1), &opts),
        "opcodes" => opcodes(positional.get(1), samples, &opts),
        "disasm" => disasm(positional.get(1)),
        "lint" => lint(positional.get(1), json, deny),
        "ace" => ace(positional.get(1)),
        "protect" => protect(positional.get(1), budget, scope, samples, &opts),
        "harden-report" => harden_report(positional.get(1), scope, samples, &opts),
        "bench-inject" => bench_inject(samples, &opts, json, out_path.as_deref()),
        "ptx" => ptx_translate(positional.get(1)),
        "trace" => trace_thread(positional.get(1), positional.get(2)),
        "reproduce" => reproduce(positional.get(1), &opts, out_path.as_deref()),
        "seeds" => seeds(positional.get(1), &opts),
        "severity" => severity(positional.get(1), samples, &opts),
        "serve" => serve(&addr, &data_dir, &opts, lease_ms, chunk, trace),
        "timeline" => timeline(&addr, out_path.as_deref()),
        "submit" => submit(
            positional.get(1),
            samples,
            &opts,
            &addr,
            local,
            wait,
            fleet,
            protect_mode.then_some((budget, scope)),
            stop,
        ),
        "status" => status(positional.get(1), &addr),
        "watch" => watch(positional.get(1), &addr),
        "fetch" => fetch(positional.get(1), &addr),
        "cancel" => cancel(positional.get(1), &addr),
        "worker" => worker(&addr, worker_name, &opts, idle_exit, fail_after),
        "fleet-status" => fleet_status(&addr),
        "fleet-bench" => fleet_bench(samples, &opts, json, out_path.as_deref()),
        other => Err(format!("unknown command `{other}`")),
    };
    if result.is_ok() {
        if profile_spans {
            let snapshot = fsp_obs::snapshot();
            eprint!(
                "{}",
                fsp_obs::render_profile(&fsp_obs::profile(&snapshot.events))
            );
        }
        if let Some(path) = &trace_out {
            let snapshot = fsp_obs::snapshot();
            std::fs::write(path, fsp_obs::chrome_trace_json(&snapshot, "fsp"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path} ({} spans)", snapshot.events.len());
        }
    }
    result
}

fn parse<T: std::str::FromStr>(arg: Option<&String>, flag: &str) -> Result<T, String> {
    arg.ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("bad value for {flag}"))
}

fn kernel(id: Option<&String>, scale: Scale) -> Result<fsp_workloads::Workload, String> {
    let id = id.ok_or("missing kernel id")?;
    fsp_workloads::by_id(id, scale).ok_or_else(|| {
        format!(
            "unknown kernel `{id}` (try: {})",
            fsp_workloads::registry_ids().join(", ")
        )
    })
}

fn list() -> Result<(), String> {
    let mut t = fsp_cli::output::Table::new(&[
        "id",
        "suite",
        "application",
        "kernel",
        "paper threads",
        "eval threads",
    ]);
    for id in fsp_workloads::registry_ids() {
        let p = fsp_workloads::by_id(id, Scale::Paper).expect("registered");
        let e = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        t.row(vec![
            id.to_owned(),
            p.suite().name().to_owned(),
            p.app().to_owned(),
            format!("{} ({})", p.kernel(), p.id()),
            p.launch().num_threads().to_string(),
            e.launch().num_threads().to_string(),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn profile(id: Option<&String>, paper: bool) -> Result<(), String> {
    let scale = if paper { Scale::Paper } else { Scale::Eval };
    let w = kernel(id, scale)?;
    let launch = w.launch();
    let mut tracer = fsp_sim::Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let mut memory = w.init_memory();
    let stats = fsp_sim::Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .map_err(|e| format!("fault-free run failed: {e}"))?;
    let trace = tracer.finish();
    let grouping = ThreadGrouping::analyze(&trace);
    println!(
        "{} / {} ({}) at {scale:?} scale",
        w.app(),
        w.kernel(),
        w.id()
    );
    println!("  threads:          {}", trace.num_threads());
    println!("  CTAs:             {}", trace.num_ctas());
    println!("  dyn instructions: {}", stats.instructions);
    println!("  fault sites:      {}", trace.total_fault_sites());
    println!("  CTA groups:       {}", grouping.groups.len());
    println!("  representatives:  {}", grouping.num_representatives());
    println!(
        "  sites after thread-wise pruning: {}",
        grouping.pruned_site_count(&trace)
    );
    Ok(())
}

fn campaign(id: Option<&String>, samples: Option<usize>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let experiment = Experiment::prepare(&w).map_err(|e| e.to_string())?;
    let space = experiment.site_space(0..w.launch().num_threads());
    let n = samples.unwrap_or_else(|| opts.baseline_samples());
    let started = std::time::Instant::now();
    let profile = fsp_core::run_baseline(&experiment, &space, n, opts.seed, opts.workers);
    println!(
        "{}: {n} random injections over {} sites in {:.1?}",
        w.registry_id(),
        space.total_sites(),
        started.elapsed()
    );
    println!("  {profile}");
    print!("{}", sample_size_report(n, opts));
    Ok(())
}

/// The satellite a-priori check: how the plan's actual sample count
/// compares with the `required_samples` math at the requested
/// (confidence, margin) pair, warning on undershoot.
fn sample_size_report(actual: usize, opts: &Options) -> String {
    let (confidence, margin) = opts.stat_pair();
    let required = fsp_stats::required_samples_infinite(confidence, margin) as usize;
    let mut out = format!(
        "  a-priori requirement: {required} samples for {:.1}% confidence ±{:.2}% \
         (plan has {actual})\n",
        100.0 * confidence,
        100.0 * margin,
    );
    if actual < required {
        out.push_str(&format!(
            "  warning: plan undershoots the requested (confidence, margin) pair \
             by {} samples\n",
            required - actual
        ));
    }
    out
}

fn prune(id: Option<&String>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let experiment = Experiment::prepare(&w).map_err(|e| e.to_string())?;
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let plan = pipeline.plan_for(&experiment).map_err(|e| e.to_string())?;
    let s = plan.stages;
    println!("{}: progressive pruning", w.registry_id());
    println!("  exhaustive:        {}", s.exhaustive);
    println!("  after static-ACE:  {}", s.after_static);
    println!("  after absint:      {}", s.after_absint);
    println!("  after thread-wise: {}", s.after_thread);
    println!("  after insn-wise:   {}", s.after_instruction);
    println!("  after loop-wise:   {}", s.after_loop);
    println!("  after bit-wise:    {} injections", s.after_bit);
    print!("{}", sample_size_report(s.after_bit as usize, opts));
    if let Some(ace) = &plan.static_ace {
        println!(
            "  static ACE: {} un-ACE / {} partial / {} ACE instructions, {:.1}% of static bits pruned",
            ace.unace_instructions,
            ace.partial_instructions,
            ace.ace_instructions,
            100.0 * ace.pruned_fraction(),
        );
    }
    if let Some(c) = &plan.classify {
        println!(
            "  absint: {:.1} sites predicted CRASH, {:.1} Detected, {:.1} class-redistributed \
             ({:.2}% of the population skipped statically)",
            plan.predicted_crash_weight,
            plan.predicted_detected_weight,
            plan.class_redistributed_weight,
            100.0 * plan.static_skip_fraction(),
        );
        if c.classes > 0 {
            println!(
                "  absint classes: {} class(es) covering {} static bits",
                c.classes, c.class_pruned_bits
            );
        }
    }
    let started = std::time::Instant::now();
    let pruned = pipeline.run(&experiment, &plan, opts.workers);
    println!("  pruned profile ({:.1?}):   {pruned}", started.elapsed());
    let space = experiment.site_space(0..w.launch().num_threads());
    let baseline = fsp_core::run_baseline(
        &experiment,
        &space,
        opts.baseline_samples(),
        opts.seed,
        opts.workers,
    );
    println!("  baseline profile:  {baseline}");
    let (dm, ds, do_) = pruned.diff(&baseline);
    println!("  diff: masked {dm:+.2}% sdc {ds:+.2}% other {do_:+.2}%");
    Ok(())
}

fn models(id: Option<&String>, samples: Option<usize>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let n = samples.unwrap_or(1000);
    println!("{}", fsp_cli::extensions::fault_model_sweep(&w, n, opts));
    Ok(())
}

fn adaptive(id: Option<&String>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    println!("{}", fsp_cli::extensions::adaptive_report(&w, opts));
    Ok(())
}

fn ablation(id: Option<&String>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    println!("{}", fsp_cli::extensions::ablation(&w, opts));
    Ok(())
}

fn opcodes(id: Option<&String>, samples: Option<usize>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let n = samples.unwrap_or(2000);
    println!("{}", fsp_cli::extensions::opcode_vulnerability(&w, n, opts));
    Ok(())
}

fn disasm(id: Option<&String>) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let program = w.launch().program().clone();
    let cfg = program.cfg();
    let loops = cfg.loops(&program);
    println!("{program}");
    println!(
        "// {} instructions, {} basic blocks, {} loop(s)",
        program.len(),
        cfg.blocks().len(),
        loops.len()
    );
    for l in &loops.loops {
        println!(
            "// loop {}: header pc {}, {} instructions, depth {}",
            l.id,
            l.header,
            l.body.len(),
            l.depth
        );
    }
    Ok(())
}

fn lint(id: Option<&String>, json: bool, deny: bool) -> Result<(), String> {
    let targets: Vec<fsp_workloads::Workload> = match id {
        Some(_) => vec![kernel(id, Scale::Eval)?],
        None => fsp_workloads::all(Scale::Eval),
    };
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut doc = String::from("[\n");
    for (wi, w) in targets.iter().enumerate() {
        // The launch-aware pass adds the abstract-interpretation lints
        // (provable OOB, uninitialized shared reads, shared races,
        // divergence-dependent addresses) on top of the static checks.
        let report = fsp_analyze::lint_with_launch(w.program(), &fsp_core::abs_context_for(w));
        errors += report.errors();
        warnings += report.warnings();
        if json {
            doc.push_str(&format!(
                "  {{\"kernel\": \"{}\", \"errors\": {}, \"warnings\": {}, \"findings\": [",
                w.registry_id(),
                report.errors(),
                report.warnings()
            ));
            for (i, f) in report.findings.iter().enumerate() {
                doc.push_str(&format!(
                    "{}\n    {{\"kind\": \"{}\", \"severity\": \"{}\", \"pc\": {}, \
                     \"message\": {:?}}}",
                    if i == 0 { "" } else { "," },
                    f.kind.name(),
                    f.severity,
                    f.pc,
                    f.message,
                ));
            }
            if !report.findings.is_empty() {
                doc.push_str("\n  ");
            }
            doc.push_str(&format!(
                "]}}{}\n",
                if wi + 1 < targets.len() { "," } else { "" }
            ));
        } else if report.findings.is_empty() {
            println!("{}: clean", w.registry_id());
        } else {
            println!(
                "{}: {} error(s), {} warning(s)",
                w.registry_id(),
                report.errors(),
                report.warnings()
            );
            for f in &report.findings {
                println!("  {f}");
            }
        }
    }
    doc.push_str("]\n");
    if json {
        print!("{doc}");
    } else if targets.len() > 1 {
        println!(
            "{} kernel(s) linted: {errors} error(s), {warnings} warning(s)",
            targets.len()
        );
    }
    if errors > 0 {
        Err(format!("lint found {errors} error(s)"))
    } else if deny && warnings > 0 {
        Err(format!("lint found {warnings} warning(s) (--deny)"))
    } else {
        Ok(())
    }
}

fn ace(id: Option<&String>) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let program = w.program();
    let report = fsp_analyze::StaticAceReport::analyze(program);
    let classify = fsp_analyze::ClassifyReport::analyze(program, &fsp_core::abs_context_for(&w));
    println!("{}: static ACE classification", w.registry_id());
    for pc in 0..program.len() {
        let verdict = match report.classify(pc) {
            None => "-".to_owned(),
            Some(fsp_analyze::AceClass::Ace) => "ACE".to_owned(),
            Some(fsp_analyze::AceClass::UnAce) => "un-ACE".to_owned(),
            Some(fsp_analyze::AceClass::PartiallyUnAce) => {
                format!(
                    "partial ({}/{} bits dead)",
                    report.dead_bits_at(pc),
                    report.dest_bits_at(pc)
                )
            }
        };
        let mut absint = String::new();
        let crash = classify.crash_bits_at(pc);
        let detected = classify.detected_bits_at(pc);
        let class = classify.class_pruned_bits_at(pc);
        if crash + detected > 0 {
            absint.push_str(&format!("  predicted-DUE {}b", crash + detected));
        }
        if class > 0 {
            absint.push_str(&format!("  class {class}b"));
        }
        println!(
            "  {pc:4}  {:<44} {verdict}{absint}",
            program.instr(pc).to_string()
        );
    }
    let s = report.summary();
    println!(
        "{} un-ACE / {} partial / {} ACE instructions; {}/{} static bits pruned ({:.1}%)",
        s.unace_instructions,
        s.partial_instructions,
        s.ace_instructions,
        s.dead_bits,
        s.total_bits,
        100.0 * s.pruned_fraction(),
    );
    let c = classify.summary();
    println!(
        "absint: {} bits predicted CRASH, {} predicted Detected, \
         {} class-pruned in {} class(es); {:.1}% of static bits skipped",
        c.predicted_crash_bits,
        c.predicted_detected_bits,
        c.class_pruned_bits,
        c.classes,
        100.0 * c.skipped_fraction(),
    );
    Ok(())
}

/// `HardenConfig` shared by `protect` and `harden-report`.
fn harden_config(
    budget: f64,
    scope: fsp_protect::ProtectScope,
    samples: Option<usize>,
    opts: &Options,
) -> fsp_protect::HardenConfig {
    fsp_protect::HardenConfig {
        scope,
        budget,
        samples: samples.unwrap_or(500),
        seed: opts.seed,
        model: fsp_inject::FaultModel::SingleBitFlip,
        workers: opts.workers,
        use_ace: true,
    }
}

fn protect(
    id: Option<&String>,
    budget: f64,
    scope: fsp_protect::ProtectScope,
    samples: Option<usize>,
    opts: &Options,
) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let config = harden_config(budget, scope, samples, opts);
    let started = std::time::Instant::now();
    let outcome = fsp_protect::harden_and_verify(&w, &config).map_err(|e| e.to_string())?;
    let plan = &outcome.plan;
    let report = &outcome.report;
    println!(
        "{}: selective DMR at budget {budget} ({scope} scope), {} sites/side in {:.1?}",
        w.registry_id(),
        report.samples,
        started.elapsed()
    );
    println!(
        "  protected {} of {} candidate instructions (+{} static, detect trap at pc {})",
        report.protected_static,
        report.candidate_static,
        outcome.hardened.added_static(),
        outcome.hardened.detect_pc,
    );
    let mut t = fsp_cli::output::Table::new(&["unit", "vulnerability", "cost", "selected"]);
    for (unit, selected) in plan
        .selected
        .iter()
        .map(|u| (u, true))
        .chain(plan.rejected.iter().map(|u| (u, false)))
    {
        t.row(vec![
            unit.label.clone(),
            format!("{:.2}", unit.vulnerability),
            unit.cost.to_string(),
            if selected { "yes" } else { "no" }.to_owned(),
        ]);
    }
    println!("{t}");
    if plan.unprotectable_vulnerability > 0.0 {
        println!(
            "  unprotectable SDC weight (stores, guarded, control): {:.2}",
            plan.unprotectable_vulnerability
        );
    }
    println!(
        "  overhead: planned {:+.1}% measured {:+.1}% (full DMR {:+.1}%)",
        100.0 * report.planned_overhead,
        100.0 * report.measured_overhead(),
        100.0 * report.full_dmr_overhead,
    );
    println!("  baseline:  {}", report.baseline);
    println!("  protected: {}", report.protected);
    println!(
        "  SDC {:.2}% -> {:.2}% ({:+.2} points); {:.1}% of baseline SDC weight detected",
        report.baseline.pct_sdc(),
        report.protected.pct_sdc(),
        -report.sdc_reduction_points(),
        100.0 * report.detection_coverage(),
    );
    Ok(())
}

fn harden_report(
    id: Option<&String>,
    scope: fsp_protect::ProtectScope,
    samples: Option<usize>,
    opts: &Options,
) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let budgets = [0.0, 0.125, 0.25, 0.5, 0.75, 1.0];
    let config = harden_config(0.0, scope, samples, opts);
    let started = std::time::Instant::now();
    let curve = fsp_protect::coverage_curve(&w, &config, &budgets).map_err(|e| e.to_string())?;
    println!(
        "{}: coverage-vs-overhead curve ({scope} scope, {} sites/side, {:.1?})",
        w.registry_id(),
        config.samples,
        started.elapsed()
    );
    let mut t = fsp_cli::output::Table::new(&[
        "budget",
        "protected",
        "overhead",
        "SDC %",
        "detected %",
        "coverage %",
    ]);
    for r in &curve {
        t.row(vec![
            format!("{:.3}", r.budget),
            format!("{}/{}", r.protected_static, r.candidate_static),
            format!("{:+.1}%", 100.0 * r.measured_overhead()),
            format!("{:.2}", r.protected.pct_sdc()),
            format!("{:.2}", 100.0 * r.protected.detected() / r.samples as f64),
            format!("{:.1}", 100.0 * r.detection_coverage()),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// One kernel's `bench-inject` measurement.
struct BenchRow {
    id: &'static str,
    sites: usize,
    /// Batched fast path (multi-lane golden replay, `--batch` lanes).
    fast_secs: f64,
    /// Fast path with a lane budget of 1 (per-site checkpoint resume).
    solo_secs: f64,
    slow_secs: f64,
    /// Mean lanes resolved per shared replay in the batched run.
    lane_occupancy: f64,
    /// Golden run + checkpoint capture wall time (the campaign's setup
    /// phase, amortized over every injected site).
    prepare_nanos: u64,
    /// FNV-1a over the outcome codes in site order; identical across
    /// fast/slow paths and across tracing on/off.
    outcome_fnv: u64,
    skipped_fraction: f64,
    checkpoint_hits: u64,
    early_converged: u64,
    /// Static bits the abstract interpreter predicts as DUEs, as a
    /// fraction of the kernel's static destination bits.
    static_predicted_fraction: f64,
    /// Static bits folded into equivalence classes, same denominator.
    class_pruned_fraction: f64,
}

/// Benchmarks campaign throughput per registry kernel: the same sampled
/// single-bit-flip campaign is run on the slow path (full re-execution
/// per site) and the fast path (checkpoint resume + early convergence),
/// asserting the outcome vectors match along the way. With `--json` the
/// measurements are written as `BENCH_inject.json` (or `--out PATH`).
fn bench_inject(
    samples: Option<usize>,
    opts: &Options,
    json: bool,
    out_path: Option<&str>,
) -> Result<(), String> {
    use fsp_inject::{FaultModel, NopObserver, WeightedSite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = samples.unwrap_or(150);
    let mut rows: Vec<BenchRow> = Vec::new();
    for id in fsp_workloads::registry_ids() {
        let _kernel_span = fsp_obs::span_labeled("bench.kernel", id);
        let w = fsp_workloads::by_id(id, Scale::Eval).expect("registered");
        let prepare_start = fsp_obs::now_ns();
        let mut experiment = {
            let _prepare = fsp_obs::span("bench.prepare");
            Experiment::prepare(&w).map_err(|e| format!("{id}: {e}"))?
        };
        let prepare_nanos = fsp_obs::now_ns() - prepare_start;
        let space = experiment.site_space(0..w.launch().num_threads());
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let sites: Vec<WeightedSite> = space
            .sample_many(n, &mut rng)
            .into_iter()
            .map(WeightedSite::from)
            .collect();
        // Each path is run twice and the faster wall time kept: min-of-k
        // is the standard robust estimator for wall-clock benchmarks, and
        // it also absorbs the fast path's one-time cost of faulting the
        // checkpoint and golden-trace structures into cache (the slow path
        // never touches them).
        let mut timed = |fast: bool, batch: usize, label: &'static str| {
            experiment.set_fast_path(fast);
            experiment.set_batch(batch);
            let _path = fsp_obs::span_labeled("bench.path", label);
            let mut best: Option<(fsp_inject::IncrementalCampaign, f64)> = None;
            for _ in 0..2 {
                let started = std::time::Instant::now();
                let run = experiment.run_campaign_incremental(
                    &sites,
                    FaultModel::SingleBitFlip,
                    opts.workers,
                    &[],
                    &NopObserver,
                );
                let secs = started.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                    best = Some((run, secs));
                }
            }
            best.expect("two timed runs")
        };
        let (slow, slow_secs) = timed(false, 1, "slow");
        let (solo, solo_secs) = timed(true, 1, "solo");
        let (fast, fast_secs) = timed(true, opts.batch, "batched");
        if solo.outcomes != slow.outcomes {
            return Err(format!(
                "{id}: solo fast-path outcomes diverged from slow path"
            ));
        }
        if fast.outcomes != slow.outcomes {
            return Err(format!(
                "{id}: batched (--batch {}) outcomes diverged from slow path",
                opts.batch
            ));
        }
        let outcome_fnv = {
            let mut h = fsp_obs::Fnv1a::new();
            for o in &fast.outcomes {
                h.write(&[o.expect("complete run").code()]);
            }
            h.finish()
        };
        let c = fsp_analyze::ClassifyReport::analyze(w.program(), &fsp_core::abs_context_for(&w))
            .summary();
        let total_bits = c.total_bits.max(1) as f64;
        let work = fast.skipped_instructions + fast.executed_instructions;
        rows.push(BenchRow {
            id,
            sites: sites.len(),
            fast_secs,
            solo_secs,
            slow_secs,
            lane_occupancy: if fast.batch_replays == 0 {
                1.0
            } else {
                fast.batch_lanes as f64 / fast.batch_replays as f64
            },
            prepare_nanos,
            outcome_fnv,
            skipped_fraction: if work == 0 {
                0.0
            } else {
                fast.skipped_instructions as f64 / work as f64
            },
            checkpoint_hits: fast.checkpoint_hits,
            early_converged: fast.early_converged,
            static_predicted_fraction: (c.predicted_crash_bits + c.predicted_detected_bits) as f64
                / total_bits,
            class_pruned_fraction: c.class_pruned_bits as f64 / total_bits,
        });
    }
    let total_sites: usize = rows.iter().map(|r| r.sites).sum();
    let fast_total: f64 = rows.iter().map(|r| r.fast_secs).sum();
    let solo_total: f64 = rows.iter().map(|r| r.solo_secs).sum();
    let slow_total: f64 = rows.iter().map(|r| r.slow_secs).sum();
    if json {
        let mut doc = String::from("{\n");
        doc.push_str(&format!("  \"samples_per_kernel\": {n},\n"));
        doc.push_str(&format!("  \"workers\": {},\n", opts.workers));
        doc.push_str(&format!("  \"seed\": {},\n", opts.seed));
        doc.push_str(&format!("  \"batch\": {},\n", opts.batch));
        doc.push_str("  \"kernels\": [\n");
        for (i, r) in rows.iter().enumerate() {
            doc.push_str(&format!(
                "    {{\"id\": \"{}\", \"sites\": {}, \"slow_sites_per_sec\": {:.1}, \
                 \"solo_sites_per_sec\": {:.1}, \
                 \"fast_sites_per_sec\": {:.1}, \"speedup\": {:.2}, \
                 \"batch_speedup\": {:.2}, \"lane_occupancy\": {:.2}, \
                 \"prepare_nanos\": {}, \"slow_nanos\": {}, \"solo_nanos\": {}, \
                 \"fast_nanos\": {}, \
                 \"outcome_fnv\": \"{:#018x}\", \
                 \"skipped_prefix_fraction\": {:.4}, \"checkpoint_hits\": {}, \
                 \"early_converged\": {}, \"static_predicted_fraction\": {:.4}, \
                 \"class_pruned_fraction\": {:.4}}}{}\n",
                r.id,
                r.sites,
                r.sites as f64 / r.slow_secs,
                r.sites as f64 / r.solo_secs,
                r.sites as f64 / r.fast_secs,
                r.slow_secs / r.fast_secs,
                r.solo_secs / r.fast_secs,
                r.lane_occupancy,
                r.prepare_nanos,
                (r.slow_secs * 1e9) as u64,
                (r.solo_secs * 1e9) as u64,
                (r.fast_secs * 1e9) as u64,
                r.outcome_fnv,
                r.skipped_fraction,
                r.checkpoint_hits,
                r.early_converged,
                r.static_predicted_fraction,
                r.class_pruned_fraction,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        doc.push_str("  ],\n");
        doc.push_str(&format!(
            "  \"aggregate\": {{\"sites\": {}, \"slow_sites_per_sec\": {:.1}, \
             \"solo_sites_per_sec\": {:.1}, \
             \"fast_sites_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"batch_speedup\": {:.2}}}\n",
            total_sites,
            total_sites as f64 / slow_total,
            total_sites as f64 / solo_total,
            total_sites as f64 / fast_total,
            slow_total / fast_total,
            solo_total / fast_total,
        ));
        doc.push_str("}\n");
        let path = out_path.unwrap_or("BENCH_inject.json");
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        print!("{doc}");
        eprintln!("wrote {path}");
    } else {
        let mut t = fsp_cli::output::Table::new(&[
            "kernel",
            "sites",
            "slow sites/s",
            "solo sites/s",
            "batched sites/s",
            "speedup",
            "lanes",
            "skipped prefix",
            "ckpt hits",
            "early",
        ]);
        for r in &rows {
            t.row(vec![
                r.id.to_owned(),
                r.sites.to_string(),
                format!("{:.0}", r.sites as f64 / r.slow_secs),
                format!("{:.0}", r.sites as f64 / r.solo_secs),
                format!("{:.0}", r.sites as f64 / r.fast_secs),
                format!("{:.2}x", r.slow_secs / r.fast_secs),
                format!("{:.1}", r.lane_occupancy),
                format!("{:.1}%", 100.0 * r.skipped_fraction),
                r.checkpoint_hits.to_string(),
                r.early_converged.to_string(),
            ]);
        }
        println!("{t}");
        println!(
            "aggregate over {} kernels: {} sites, {:.0} -> {:.0} -> {:.0} sites/s \
             ({:.2}x vs slow, {:.2}x vs solo, batch {})",
            rows.len(),
            total_sites,
            total_sites as f64 / slow_total,
            total_sites as f64 / solo_total,
            total_sites as f64 / fast_total,
            slow_total / fast_total,
            solo_total / fast_total,
            opts.batch,
        );
    }
    Ok(())
}

fn ptx_translate(path: Option<&String>) -> Result<(), String> {
    let path = path.ok_or("missing PTX file path")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let program =
        fsp_isa::ptx::translate_ptx(&source).map_err(|e| format!("translating {path}: {e}"))?;
    let cfg = program.cfg();
    let loops = cfg.loops(&program);
    println!("{program}");
    println!(
        "// translated from {path}: {} instructions, {} basic blocks, {} loop(s), {} static dest bits",
        program.len(),
        cfg.blocks().len(),
        loops.len(),
        program.static_dest_bits(),
    );
    Ok(())
}

fn trace_thread(id: Option<&String>, tid: Option<&String>) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let tid: u32 = parse(tid, "<tid>")?;
    let launch = w.launch();
    if tid >= launch.num_threads() {
        return Err(format!(
            "thread {tid} out of range (kernel has {} threads)",
            launch.num_threads()
        ));
    }
    let mut tracer = fsp_sim::Tracer::new(launch.num_threads(), launch.threads_per_cta())
        .with_full_traces([tid]);
    let mut memory = w.init_memory();
    fsp_sim::Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .map_err(|e| format!("fault-free run failed: {e}"))?;
    let trace = tracer.finish();
    let program = launch.program();
    let forest = program.cfg().loops(program);
    let full = &trace.full[tid];
    let tagging = fsp_core::LoopTagging::analyze(full, &forest);
    println!(
        "thread {tid} of {}: {} dynamic instructions, {} fault sites",
        w.registry_id(),
        full.entries.len(),
        full.fault_bits()
    );
    for (i, (entry, tag)) in full.entries.iter().zip(&tagging.tags).enumerate() {
        let loop_note = tag.map_or(String::new(), |t| {
            format!("  [loop {} iter {}]", t.loop_id, t.iteration)
        });
        println!(
            "  {i:5}  pc {:4}  {:<44} bits {:2}{loop_note}",
            entry.pc,
            program.instr(entry.pc as usize).to_string(),
            entry.dest_bits,
        );
    }
    Ok(())
}

fn seeds(id: Option<&String>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    println!("{}", fsp_cli::extensions::seed_sensitivity(&w, opts));
    Ok(())
}

fn severity(id: Option<&String>, samples: Option<usize>, opts: &Options) -> Result<(), String> {
    let w = kernel(id, Scale::Eval)?;
    let n = samples.unwrap_or(1500);
    println!("{}", fsp_cli::extensions::sdc_severity(&w, n, opts));
    Ok(())
}

fn serve(
    addr: &str,
    data_dir: &str,
    opts: &Options,
    lease_ms: Option<u64>,
    chunk: Option<usize>,
    trace: bool,
) -> Result<(), String> {
    let mut config = fsp_serve::EngineConfig::new(data_dir)
        .job_workers(opts.workers)
        .trace(trace);
    if let Some(ms) = lease_ms {
        config = config.lease_ttl(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = chunk {
        config = config.chunk_sites(n);
    }
    let engine = std::sync::Arc::new(
        fsp_serve::Engine::open(config).map_err(|e| format!("opening {data_dir}: {e}"))?,
    );
    let server =
        fsp_serve::Server::bind(addr, engine).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("fsp-serve listening on {bound} (state in {data_dir})");
    server.run();
    Ok(())
}

/// Builds the job spec `submit` sends: pruned by default, sampled with
/// `-n`, protect with `--protect`.
fn submit_spec(
    id: Option<&String>,
    samples: Option<usize>,
    opts: &Options,
    protect: Option<(f64, fsp_protect::ProtectScope)>,
) -> Result<fsp_serve::JobSpec, String> {
    let id = id.ok_or("missing kernel id")?;
    let mut spec = match (protect, samples) {
        (Some((budget, scope)), samples) => {
            let mut spec = fsp_serve::JobSpec::protect(id, budget, samples.unwrap_or(500));
            if let fsp_serve::CampaignMode::Protect { scope: s, .. } = &mut spec.mode {
                *s = scope;
            }
            spec
        }
        (None, Some(n)) => fsp_serve::JobSpec::sampled(id, n),
        (None, None) => fsp_serve::JobSpec::pruned(id),
    };
    spec.seed = opts.seed;
    Ok(spec)
}

#[allow(clippy::too_many_arguments)]
fn submit(
    id: Option<&String>,
    samples: Option<usize>,
    opts: &Options,
    addr: &str,
    local: bool,
    wait: bool,
    fleet: bool,
    protect: Option<(f64, fsp_protect::ProtectScope)>,
    stop: Option<(f64, f64)>,
) -> Result<(), String> {
    let mut spec = submit_spec(id, samples, opts, protect)?;
    if let Some((margin, confidence)) = stop {
        if protect.is_some() {
            return Err("--stop-at-margin is not supported for protect jobs".to_owned());
        }
        spec = spec.with_stop(margin, confidence);
    }
    if local {
        if fleet {
            return Err("--local and --fleet are mutually exclusive".to_owned());
        }
        let result = fsp_serve::run_local(&spec, opts.workers)?;
        println!("{result}");
        return Ok(());
    }
    let client = fsp_serve::Client::new(addr);
    let job_id = if fleet {
        client.submit_fleet(&spec)?
    } else {
        client.submit(&spec)?
    };
    if wait {
        let status = client.wait(&job_id, std::time::Duration::from_secs(3600))?;
        match status.get("state").and_then(fsp_serve::Json::as_str) {
            Some("completed") => println!("{}", client.result(&job_id)?),
            Some(state) => return Err(format!("{job_id} ended in state `{state}`")),
            None => return Err("malformed status document".to_owned()),
        }
    } else {
        println!("{job_id}");
    }
    Ok(())
}

fn timeline(addr: &str, out: Option<&str>) -> Result<(), String> {
    let trace = fsp_serve::Client::new(addr).trace()?;
    match out {
        Some(path) => {
            std::fs::write(path, &trace).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{trace}"),
    }
    Ok(())
}

fn status(id: Option<&String>, addr: &str) -> Result<(), String> {
    let client = fsp_serve::Client::new(addr);
    match id {
        Some(id) => {
            // The raw document stays line one: it is the stable,
            // scriptable interface. The estimate table below is for
            // humans.
            println!("{}", client.status(id)?);
            println!("{}", progress_table(&client.progress(id)?));
        }
        None => println!("{}", client.jobs()?),
    }
    Ok(())
}

/// Renders a `/progress` document as the human-facing estimate table.
fn progress_table(doc: &fsp_serve::Json) -> String {
    use fsp_serve::Json;
    let str_field = |k: &str| doc.get(k).and_then(Json::as_str).unwrap_or("?");
    let u64_field = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
    let f64_field = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = format!(
        "{} ({} {}) [{}] {}/{} sites done, {} cached\n",
        str_field("id"),
        str_field("kernel"),
        str_field("mode"),
        str_field("state"),
        u64_field("done"),
        u64_field("total"),
        u64_field("cache_hits"),
    );
    let mut t = fsp_cli::output::Table::new(&["outcome", "count", "estimate", "± half width"]);
    for row in doc
        .get("outcomes")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let f = |k: &str| row.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        t.row(vec![
            row.get("outcome")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            row.get("count")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                .to_string(),
            format!("{:7.3}%", 100.0 * f("estimate")),
            format!("{:.3}%", 100.0 * f("half_width")),
        ]);
    }
    out.push_str(&t.to_string());
    let requested = match doc.get("margin") {
        Some(Json::Num(margin)) => format!("requested ±{:.3}%", 100.0 * margin),
        _ => "no stop requested".to_owned(),
    };
    out.push_str(&format!(
        "achieved ±{:.3}% at {:.1}% confidence ({requested}); \
         ~{} sites to converge\n",
        100.0 * f64_field("achieved_margin"),
        100.0 * f64_field("confidence"),
        u64_field("projected_remaining"),
    ));
    if let Some(Json::Bool(true)) = doc.get("early_stopped") {
        out.push_str(&format!(
            "early-stopped after {} of {} planned sites\n",
            u64_field("sites_injected"),
            u64_field("total"),
        ));
    }
    out
}

/// `fsp watch <job>`: redraws the progress table until the job reaches a
/// terminal state, pacing polls with the fleet's jittered backoff (quick
/// first checks, a capped gentle cadence for long campaigns).
fn watch(id: Option<&String>, addr: &str) -> Result<(), String> {
    let id = id.ok_or("missing job id")?;
    let client = fsp_serve::Client::new(addr);
    let mut backoff = fsp_fleet::Backoff::poll(fsp_fleet::wire::frame_fnv(id.as_bytes()));
    loop {
        let doc = client.progress(id)?;
        // ANSI clear-and-home keeps the table refreshing in place
        // without a TUI dependency.
        print!("\x1b[2J\x1b[H{}", progress_table(&doc));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match doc.get("state").and_then(fsp_serve::Json::as_str) {
            Some("queued" | "running") => {}
            Some(_) | None => return Ok(()),
        }
        std::thread::sleep(backoff.next_delay());
    }
}

fn fetch(id: Option<&String>, addr: &str) -> Result<(), String> {
    let id = id.ok_or("missing job id")?;
    println!("{}", fsp_serve::Client::new(addr).result(id)?);
    Ok(())
}

fn cancel(id: Option<&String>, addr: &str) -> Result<(), String> {
    let id = id.ok_or("missing job id")?;
    fsp_serve::Client::new(addr).cancel(id)?;
    eprintln!("cancellation requested for {id}");
    Ok(())
}

fn worker(
    addr: &str,
    name: Option<String>,
    opts: &Options,
    idle_exit: bool,
    fail_after: Option<usize>,
) -> Result<(), String> {
    let name = name.unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let mut config = fsp_fleet::WorkerConfig::new(addr, &name);
    config.campaign_workers = opts.workers;
    config.exit_when_idle = idle_exit;
    config.fail_after = fail_after;
    eprintln!("fsp worker `{name}` pulling leases from {addr}");
    static STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    let summary = fsp_fleet::run_worker(&config, &STOP)?;
    eprintln!(
        "worker `{name}` done: {} chunks, {} sites{}",
        summary.chunks,
        summary.sites,
        if summary.abandoned {
            " (abandoned a lease)"
        } else {
            ""
        }
    );
    Ok(())
}

fn fleet_status(addr: &str) -> Result<(), String> {
    let doc = fsp_serve::Client::new(addr).fleet_status()?;
    let count = |key: &str| doc.get(key).and_then(fsp_serve::Json::as_u64).unwrap_or(0);
    println!(
        "chunks: {} available, {} leased, {} done",
        count("chunks_available"),
        count("chunks_leased"),
        count("chunks_done")
    );
    println!(
        "requeues: {}   duplicate submissions: {}",
        count("requeues"),
        count("duplicates")
    );
    let workers = doc
        .get("workers")
        .and_then(fsp_serve::Json::as_arr)
        .unwrap_or_default();
    if workers.is_empty() {
        println!("workers: none seen yet");
        return Ok(());
    }
    let mut t = fsp_cli::output::Table::new(&["worker", "leases", "heartbeats", "chunks", "sites"]);
    for w in workers {
        let field = |key: &str| {
            w.get(key)
                .and_then(fsp_serve::Json::as_u64)
                .unwrap_or(0)
                .to_string()
        };
        t.row(vec![
            w.get("name")
                .and_then(fsp_serve::Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            field("leases"),
            field("heartbeats"),
            field("chunks"),
            field("sites"),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// One end-to-end fleet run for `fleet-bench`: an ephemeral coordinator
/// on a fresh state directory, `workers` in-process worker loops (one
/// campaign thread each, so worker count is the only scaling knob), one
/// sampled job. Returns (wall seconds, lease requeues observed).
fn fleet_bench_run(
    scratch: &std::path::Path,
    kernel: &str,
    n: usize,
    workers: usize,
    fail_after: Option<usize>,
    seed: u64,
) -> Result<(f64, u64), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let dir = scratch.join(format!(
        "{kernel}-w{workers}{}",
        if fail_after.is_some() { "-kill" } else { "" }
    ));
    // A dead worker's lease must expire quickly in the kill-overhead run;
    // healthy runs heartbeat well inside either TTL.
    let ttl = Duration::from_millis(if fail_after.is_some() { 1000 } else { 10_000 });
    let config = fsp_serve::EngineConfig::new(&dir)
        .job_workers(1)
        .chunk_sites(32)
        .lease_ttl(ttl);
    let engine = std::sync::Arc::new(
        fsp_serve::Engine::open(config).map_err(|e| format!("opening {}: {e}", dir.display()))?,
    );
    let handle = fsp_serve::Server::bind("127.0.0.1:0", std::sync::Arc::clone(&engine))
        .and_then(fsp_serve::Server::spawn)
        .map_err(|e| format!("starting coordinator: {e}"))?;
    let addr = handle.addr().to_string();
    let client = fsp_serve::Client::new(&addr);

    let mut spec = fsp_serve::JobSpec::sampled(kernel, n);
    spec.seed = seed;
    let started = std::time::Instant::now();
    let job = client.submit_fleet(&spec)?;

    let stop = AtomicBool::new(false);
    let status = std::thread::scope(|scope| {
        for i in 0..workers {
            let mut cfg = fsp_fleet::WorkerConfig::new(&addr, format!("bench-{i}"));
            cfg.campaign_workers = 1;
            if i == 0 {
                cfg.fail_after = fail_after;
            }
            let stop = &stop;
            scope.spawn(move || {
                let _ = fsp_fleet::run_worker(&cfg, stop);
            });
        }
        let status = client.wait(&job, Duration::from_secs(600));
        stop.store(true, Ordering::Relaxed);
        status
    })?;
    let secs = started.elapsed().as_secs_f64();
    match status.get("state").and_then(fsp_serve::Json::as_str) {
        Some("completed") => {}
        other => return Err(format!("{kernel} w={workers}: job ended as {other:?}")),
    }
    let requeues = client
        .metric("fsp_fleet_lease_requeues_total")
        .unwrap_or(0.0) as u64;
    handle.stop();
    engine.shutdown();
    Ok((secs, requeues))
}

/// Benchmarks distributed campaign execution: the same sampled job is
/// drained by 1, 2 and 4 single-threaded workers for three kernels, and
/// a separate run kills a worker mid-fleet (via `fail_after`) to price
/// one lease requeue. With `--json` the measurements are written as
/// `BENCH_fleet.json` (or `--out PATH`).
fn fleet_bench(
    samples: Option<usize>,
    opts: &Options,
    json: bool,
    out_path: Option<&str>,
) -> Result<(), String> {
    const KERNELS: [&str; 3] = ["gemm", "hotspot", "pathfinder"];
    const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
    let n = samples.unwrap_or(256);
    let scratch = std::env::temp_dir().join(format!("fsp-fleet-bench-{}", std::process::id()));

    struct FleetRow {
        kernel: &'static str,
        workers: usize,
        secs: f64,
    }
    let mut rows: Vec<FleetRow> = Vec::new();
    for kernel in KERNELS {
        for workers in WORKER_COUNTS {
            let (secs, _) = fleet_bench_run(&scratch, kernel, n, workers, None, opts.seed)?;
            eprintln!(
                "{kernel} w={workers}: {secs:.2}s ({:.0} sites/s)",
                n as f64 / secs
            );
            rows.push(FleetRow {
                kernel,
                workers,
                secs,
            });
        }
    }
    let baseline = rows
        .iter()
        .find(|r| r.kernel == "gemm" && r.workers == 2)
        .expect("measured above")
        .secs;
    let (kill_secs, requeues) = fleet_bench_run(&scratch, "gemm", n, 2, Some(1), opts.seed)?;
    eprintln!(
        "gemm w=2 with one mid-run kill: {kill_secs:.2}s ({requeues} requeues, \
         +{:.2}s vs healthy)",
        kill_secs - baseline
    );
    let _ = std::fs::remove_dir_all(&scratch);

    if json {
        let mut doc = String::from("{\n");
        doc.push_str(&format!("  \"samples_per_job\": {n},\n"));
        doc.push_str(&format!("  \"seed\": {},\n", opts.seed));
        doc.push_str("  \"chunk_sites\": 32,\n");
        doc.push_str("  \"scaling\": [\n");
        for (i, r) in rows.iter().enumerate() {
            doc.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"workers\": {}, \"sites\": {n}, \
                 \"secs\": {:.3}, \"sites_per_sec\": {:.1}}}{}\n",
                r.kernel,
                r.workers,
                r.secs,
                n as f64 / r.secs,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        doc.push_str("  ],\n");
        doc.push_str(&format!(
            "  \"kill_overhead\": {{\"kernel\": \"gemm\", \"workers\": 2, \
             \"healthy_secs\": {baseline:.3}, \"kill_secs\": {kill_secs:.3}, \
             \"overhead_secs\": {:.3}, \"requeues\": {requeues}}}\n",
            kill_secs - baseline
        ));
        doc.push_str("}\n");
        let path = out_path.unwrap_or("BENCH_fleet.json");
        std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
        print!("{doc}");
        eprintln!("wrote {path}");
    } else {
        let mut t = fsp_cli::output::Table::new(&["kernel", "workers", "secs", "sites/s"]);
        for r in &rows {
            t.row(vec![
                r.kernel.to_owned(),
                r.workers.to_string(),
                format!("{:.2}", r.secs),
                format!("{:.0}", n as f64 / r.secs),
            ]);
        }
        println!("{t}");
        println!(
            "mid-run kill (gemm, 2 workers): {kill_secs:.2}s vs {baseline:.2}s healthy \
             (+{:.2}s, {requeues} lease requeues)",
            kill_secs - baseline
        );
    }
    Ok(())
}

fn reproduce(
    artifact: Option<&String>,
    opts: &Options,
    out_path: Option<&str>,
) -> Result<(), String> {
    let artifact = artifact.ok_or("missing artifact (table1..table7, fig2..fig10, all)")?;
    let mut sink = String::new();
    type Driver = fn(&Options) -> String;
    let all: &[(&str, Driver)] = &[
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("fig2", figures::fig2),
        ("fig3", figures::fig3),
        ("fig4", figures::fig4),
        ("fig5", figures::fig5),
        ("fig6", figures::fig6),
        ("fig7", figures::fig7),
        ("fig8", figures::fig8),
        ("fig9", figures::fig9),
        ("fig10", figures::fig10),
    ];
    if artifact == "all" {
        for (name, driver) in all {
            let started = std::time::Instant::now();
            let text = driver(opts);
            let block = format!("==== {name} ({:.1?}) ====\n{text}", started.elapsed());
            println!("{block}");
            sink.push_str(&block);
            sink.push('\n');
        }
    } else {
        let Some((_, driver)) = all.iter().find(|(name, _)| name == artifact) else {
            return Err(format!("unknown artifact `{artifact}`"));
        };
        let text = driver(opts);
        println!("{text}");
        sink = text;
    }
    if let Some(path) = out_path {
        std::fs::write(path, sink).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
