//! Experiment drivers behind the `fsp` binary.
//!
//! Each table and figure of the paper's evaluation has a driver here that
//! regenerates it (on this repository's simulator substrate — see
//! `EXPERIMENTS.md` for the paper-vs-measured record):
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`tables::table1`] | Table I — exhaustive fault-site counts |
//! | [`tables::table2`] | Table II — statistical sample sizes (GEMM) |
//! | [`tables::table3`] | Table III — 2DCONV CTA/thread groups |
//! | [`tables::table4`] | Table IV — HotSpot CTA/thread groups |
//! | [`tables::table5`] | Table V — PathFinder common-block outcomes |
//! | [`tables::table6`] | Table VI — instruction-wise pruning accuracy |
//! | [`tables::table7`] | Table VII — loop statistics |
//! | [`figures::fig2`] | Fig. 2 — CTA grouping by injection outcomes |
//! | [`figures::fig3`] | Fig. 3 — CTA grouping by iCnt |
//! | [`figures::fig4`] | Fig. 4 — thread grouping inside one CTA |
//! | [`figures::fig5`] | Fig. 5 — PathFinder trace alignment |
//! | [`figures::fig6`] | Fig. 6 — loop-iteration sampling convergence |
//! | [`figures::fig7`] | Fig. 7 — outcomes by bit-position section |
//! | [`figures::fig8`] | Fig. 8 — outcomes by sampled-bit count |
//! | [`figures::fig9`] | Fig. 9 — pruned vs baseline profiles |
//! | [`figures::fig10`] | Fig. 10 — per-stage fault-site reduction |
//!
//! Beyond the paper's artifacts, the binary also exposes the static
//! analyses of `fsp-analyze`: `fsp lint [kernel]` (kernel linter) and
//! `fsp ace <kernel>` (per-instruction static ACE classification).

pub mod extensions;
pub mod figures;
pub mod output;
pub mod tables;

/// Shared driver options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Worker threads for injection campaigns.
    pub workers: usize,
    /// Reduced statistical baseline (quick mode) instead of the paper's
    /// 60K-run ground truth.
    pub quick: bool,
    /// RNG seed for baselines and sampling.
    pub seed: u64,
    /// Lane budget for batched multi-lane injection (clamped to
    /// `1..=fsp_inject::MAX_BATCH`; 1 disables batching).
    pub batch: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            quick: false,
            seed: 0xF5EED,
            batch: fsp_inject::DEFAULT_BATCH,
        }
    }
}

impl Options {
    /// The (confidence, error margin) pair the baselines target: the
    /// paper's (99.8%, ±0.63%), or (99%, ±1.66%) in quick mode.
    #[must_use]
    pub fn stat_pair(&self) -> (f64, f64) {
        if self.quick {
            (0.99, 0.0166)
        } else {
            (0.998, 0.0063)
        }
    }

    /// The statistical-baseline sample count: the paper's 60K (99.8% CI,
    /// ±0.63%), or ~6K in quick mode (99% CI, ±1.66%).
    #[must_use]
    pub fn baseline_samples(&self) -> usize {
        let (confidence, margin) = self.stat_pair();
        fsp_stats::required_samples_infinite(confidence, margin) as usize
    }
}
