//! Drivers for the paper's Tables I–VII.

use fsp_core::{
    CommonalityConfig, LoopStats, LoopTagging, PruningConfig, PruningPipeline, ThreadGrouping,
};
use fsp_inject::{Experiment, InjectionTarget, SiteSpace, WeightedSite};
use fsp_stats::{required_samples_infinite, ResilienceProfile};
use fsp_workloads::{Scale, Workload};

use crate::output::{sci, Table};
use crate::Options;

/// Traces a workload fault-free, with full traces for `full` thread ids.
pub(crate) fn trace(w: &Workload, full: impl IntoIterator<Item = u32>) -> fsp_sim::KernelTrace {
    let launch = w.launch();
    let mut tracer =
        fsp_sim::Tracer::new(launch.num_threads(), launch.threads_per_cta()).with_full_traces(full);
    let mut memory = w.init_memory();
    fsp_sim::Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .unwrap_or_else(|e| panic!("{} fault-free run failed: {e}", w.registry_id()));
    tracer.finish()
}

/// Traces with full traces for all representative threads.
pub(crate) fn trace_with_reps(w: &Workload) -> (fsp_sim::KernelTrace, ThreadGrouping) {
    let summary = trace(w, std::iter::empty());
    let grouping = ThreadGrouping::analyze(&summary);
    let reps: Vec<u32> = grouping
        .representatives(&summary)
        .iter()
        .map(|r| r.tid)
        .collect();
    let full = trace(w, reps);
    (full, grouping)
}

/// Table I — threads and exhaustive fault-site counts at paper scale.
#[must_use]
pub fn table1(_opts: &Options) -> String {
    let mut t = Table::new(&[
        "Suite",
        "Application",
        "Kernel",
        "ID",
        "#Threads",
        "#Fault Sites",
        "Paper #Thr",
        "Paper #Sites",
        "ratio",
    ]);
    for w in fsp_workloads::all(Scale::Paper) {
        let Some(paper) = w.paper_reference() else {
            continue;
        };
        let trace = trace(&w, std::iter::empty());
        let sites = trace.total_fault_sites();
        t.row(vec![
            w.suite().name().to_owned(),
            w.app().to_owned(),
            w.kernel().to_owned(),
            w.id().to_owned(),
            trace.num_threads().to_string(),
            sci(sites as f64),
            paper.threads.to_string(),
            sci(paper.fault_sites),
            format!("{:.2}", sites as f64 / paper.fault_sites),
        ]);
    }
    format!("Table I: exhaustive fault-site counts (Eq. 1), paper-scale geometry\n\n{t}")
}

/// Table II — required sample sizes and measured masked% for GEMM.
#[must_use]
pub fn table2(opts: &Options) -> String {
    let paper_scale = fsp_workloads::by_id("gemm", Scale::Paper).expect("gemm registered");
    let population = trace(&paper_scale, std::iter::empty()).total_fault_sites();

    let w = fsp_workloads::by_id("gemm", Scale::Eval).expect("gemm registered");
    let experiment = Experiment::prepare(&w).expect("gemm runs");
    let space = experiment.site_space(0..w.launch().num_threads());

    let mut t = Table::new(&[
        "Confidence",
        "Error Margin",
        "#Fault Sites",
        "Est. Time @1min/site",
        "Masked Output (%)",
    ]);
    let minutes = |n: u64| -> String {
        let m = n as f64;
        if m > 60.0 * 24.0 * 365.0 {
            format!("{:.0} years", m / (60.0 * 24.0 * 365.0))
        } else if m > 60.0 * 24.0 {
            format!("{:.0} days", m / (60.0 * 24.0))
        } else {
            format!("{:.0} hours", m / 60.0)
        }
    };
    t.row(vec![
        "100%".into(),
        "0.0%".into(),
        sci(population as f64),
        minutes(population),
        "?".into(),
    ]);
    for (conf, margin) in [(0.998, 0.0063), (0.95, 0.03)] {
        let n = required_samples_infinite(conf, margin) as usize;
        let n_run = if opts.quick {
            n.min(opts.baseline_samples())
        } else {
            n
        };
        let profile = fsp_core::run_baseline(&experiment, &space, n_run, opts.seed, opts.workers);
        t.row(vec![
            format!("{:.1}%", conf * 100.0),
            format!("±{:.2}%", margin * 100.0),
            n.to_string(),
            minutes(n as u64),
            format!("{:.1}%  (n={n_run})", profile.pct_masked()),
        ]);
    }
    format!(
        "Table II: fault sites and statistics for GEMM\n\
         (population from paper-scale trace; campaigns at eval scale)\n\n{t}"
    )
}

fn grouping_table(w: &Workload) -> String {
    let trace = trace(w, std::iter::empty());
    let grouping = ThreadGrouping::analyze(&trace);
    let mut t = Table::new(&[
        "CTA Grp",
        "Avg iCnt",
        "CTA Prop.",
        "Thd Grp",
        "Thd iCnt",
        "Thd Prop.",
    ]);
    for (gi, g) in grouping.groups.iter().enumerate() {
        let total_threads: u64 = g.thread_groups.iter().map(|tg| tg.population).sum();
        for (ti, tg) in g.thread_groups.iter().enumerate() {
            t.row(vec![
                if ti == 0 {
                    format!("C-{}", gi + 1)
                } else {
                    String::new()
                },
                if ti == 0 {
                    format!("{:.0}", g.mean_icnt())
                } else {
                    String::new()
                },
                if ti == 0 {
                    format!("{:.2}%", 100.0 * g.cta_proportion(grouping.total_ctas))
                } else {
                    String::new()
                },
                format!("T-{}{}", gi + 1, ti + 1),
                tg.icnt.to_string(),
                format!(
                    "{:.2}%",
                    100.0 * tg.population as f64 / total_threads as f64
                ),
            ]);
        }
    }
    format!(
        "{} ({} CTAs, {} threads, {} representatives)\n\n{t}",
        w.app(),
        grouping.total_ctas,
        trace.num_threads(),
        grouping.num_representatives()
    )
}

/// Table III — CTA and thread groups for 2DCONV (paper scale).
#[must_use]
pub fn table3(_opts: &Options) -> String {
    let w = fsp_workloads::by_id("2dconv", Scale::Paper).expect("2dconv registered");
    format!(
        "Table III: CTA and thread groups for 2DCONV\n\n{}",
        grouping_table(&w)
    )
}

/// Table IV — CTA and thread groups for HotSpot (paper scale).
#[must_use]
pub fn table4(_opts: &Options) -> String {
    let w = fsp_workloads::by_id("hotspot", Scale::Paper).expect("hotspot registered");
    format!(
        "Table IV: CTA and thread groups for HotSpot\n\n{}",
        grouping_table(&w)
    )
}

/// Table V — instruction-wise extrapolation accuracy on two PathFinder
/// representative threads.
#[must_use]
pub fn table5(opts: &Options) -> String {
    let w = fsp_workloads::by_id("pathfinder", Scale::Eval).expect("pathfinder registered");
    let experiment = Experiment::prepare(&w).expect("pathfinder runs");
    let (trace, grouping) = trace_with_reps(&w);
    // The two longest representatives (the paper's threads "a" and "b").
    let mut reps: Vec<u32> = grouping
        .representatives(&trace)
        .iter()
        .map(|r| r.tid)
        .collect();
    reps.sort_by_key(|tid| std::cmp::Reverse(trace.full[*tid].entries.len()));
    let (a, b) = (reps[0], reps[1]);
    let ta = &trace.full[a];
    let tb = &trace.full[b];
    let alignment = fsp_core::align_lcs(&tb.pcs(), &ta.pcs());

    // Inject the matched ("common") instructions of each thread, bit-sampled
    // to keep the campaign tractable, with identical bit positions on both
    // sides.
    let sampler = fsp_core::BitSampler {
        samples_per_32: 8,
        pred_policy: fsp_core::PredBitPolicy::All,
    };
    let program = w.launch();
    let sites_for = |tid: u32, idxs: &[u32]| -> Vec<WeightedSite> {
        let tr = &trace.full[tid];
        let mut sites = Vec::new();
        for &i in idxs {
            let instr = program.program().instr(tr.entries[i as usize].pc as usize);
            for sel in sampler.select_instruction(instr) {
                for &bit in &sel.bits {
                    sites.push(WeightedSite {
                        site: fsp_inject::FaultSite {
                            tid,
                            dyn_idx: i,
                            bit,
                        },
                        weight: 1.0,
                    });
                }
            }
        }
        sites
    };
    let b_common: Vec<u32> = alignment.pairs.iter().map(|&(bi, _)| bi).collect();
    let a_common: Vec<u32> = alignment.pairs.iter().map(|&(_, ai)| ai).collect();
    let pa = experiment
        .run_campaign(&sites_for(a, &a_common), opts.workers)
        .profile;
    let pb = experiment
        .run_campaign(&sites_for(b, &b_common), opts.workers)
        .profile;

    let mut t = Table::new(&["Thread", "iCnt", "% Common Insn", "% MSK", "% SDC"]);
    let common_pct_a = 100.0 * alignment.pairs.len() as f64 / ta.entries.len() as f64;
    t.row(vec![
        format!("a (tid {a})"),
        ta.entries.len().to_string(),
        format!("{common_pct_a:.1}%"),
        format!("{:.1}%", pa.pct_masked()),
        format!("{:.1}%", pa.pct_sdc()),
    ]);
    t.row(vec![
        format!("b (tid {b})"),
        tb.entries.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * alignment.pairs.len() as f64 / tb.entries.len() as f64
        ),
        format!("{:.1}%", pb.pct_masked()),
        format!("{:.1}%", pb.pct_sdc()),
    ]);
    let (dm, ds, _) = pa.diff(&pb);
    format!(
        "Table V: effect of instruction-wise pruning for two PathFinder threads\n\
         (injections into the common block only; extrapolation error: \
         masked {dm:+.2}%, sdc {ds:+.2}%)\n\n{t}"
    )
}

/// Table VI — instruction-wise pruning: fraction pruned and introduced
/// error per kernel.
#[must_use]
pub fn table6(opts: &Options) -> String {
    let mut t = Table::new(&[
        "Application",
        "Kernel",
        "% Pruned Common Insn",
        "Err MSK",
        "Err SDC",
    ]);
    let mut skipped = Vec::new();
    for w in fsp_workloads::all(Scale::Eval) {
        let experiment = Experiment::prepare(&w).expect("workload runs");
        let pipeline_off = PruningPipeline::new(PruningConfig {
            commonality: None,
            loop_samples: 0,
            bits: fsp_core::BitSampler {
                samples_per_32: 8,
                pred_policy: fsp_core::PredBitPolicy::ZeroFlagOnly,
            },
            ..PruningConfig::default()
        });
        let pipeline_on = PruningPipeline::new(PruningConfig {
            commonality: Some(CommonalityConfig::default()),
            ..*pipeline_off.config()
        });
        let plan_on = pipeline_on.plan_for(&experiment).expect("plan");
        let Some(commonality) = &plan_on.commonality else {
            skipped.push(format!("{} {} (single representative)", w.app(), w.id()));
            continue;
        };
        if !commonality.is_effective() {
            skipped.push(format!(
                "{} {} (no exploitable commonality)",
                w.app(),
                w.id()
            ));
            continue;
        }
        let plan_off = pipeline_off.plan_for(&experiment).expect("plan");
        let p_on = pipeline_on.run(&experiment, &plan_on, opts.workers);
        let p_off = pipeline_off.run(&experiment, &plan_off, opts.workers);
        let (dm, ds, _) = p_on.diff(&p_off);
        t.row(vec![
            w.app().to_owned(),
            w.id().to_owned(),
            format!("{:.2}%", 100.0 * commonality.pruned_fraction()),
            format!("{dm:+.2}%"),
            format!("{ds:+.2}%"),
        ]);
    }
    format!(
        "Table VI: instruction-wise pruning summary (eval scale)\n\n{t}\n\
         Not applicable: {}\n",
        skipped.join(", ")
    )
}

/// Table VII — loop statistics per kernel at paper scale.
#[must_use]
pub fn table7(_opts: &Options) -> String {
    let mut rows: Vec<(String, String, u32, u64, f64)> = Vec::new();
    for w in fsp_workloads::all(Scale::Paper) {
        let (trace, grouping) = trace_with_reps(&w);
        let program = w.launch();
        let forest = program.program().cfg().loops(program.program());
        let reps = grouping.representatives(&trace);
        // Weight each representative's tagging by the threads it covers.
        let mut in_loop = 0f64;
        let mut total = 0f64;
        let mut stats = Vec::new();
        for rep in &reps {
            let tagging = LoopTagging::analyze(&trace.full[rep.tid], &forest);
            in_loop += rep.covered_threads as f64 * tagging.instructions_in_loops() as f64;
            total += rep.covered_threads as f64 * tagging.tags.len() as f64;
            stats.push(tagging);
        }
        let agg = LoopStats::aggregate(&stats);
        let frac = if total == 0.0 { 0.0 } else { in_loop / total };
        rows.push((
            format!("{} {}", w.app(), w.id()),
            w.kernel().to_owned(),
            trace.num_threads(),
            agg.max_iterations,
            100.0 * frac,
        ));
    }
    rows.sort_by(|x, y| x.4.partial_cmp(&y.4).expect("no NaN"));
    let mut t = Table::new(&["Kernel", "Name", "#Thd", "#Loop Iter.", "% Insn in Loop"]);
    for (id, name, thd, iters, frac) in rows {
        t.row(vec![
            id,
            name,
            thd.to_string(),
            iters.to_string(),
            format!("{frac:.2}%"),
        ]);
    }
    format!("Table VII: statistics related to loops (paper-scale geometry)\n\n{t}")
}

/// Convenience wrapper used by Table V / figure drivers needing the site
/// space of every thread at eval scale.
pub(crate) fn full_space(w: &Workload) -> (Experiment<'_, Workload>, SiteSpace) {
    let experiment = Experiment::prepare(w).expect("workload runs");
    let space = experiment.site_space(0..w.launch().num_threads());
    (experiment, space)
}

/// Sanity check used in tests: pruned profiles carry the exhaustive weight.
#[must_use]
pub fn weights_ok(profile: &ResilienceProfile, exhaustive: u64) -> bool {
    (profile.total() - exhaustive as f64).abs() <= 1e-6 * exhaustive as f64
}
