//! The protection planner: ranks DMR candidates by measured vulnerability
//! and selects under a dynamic-instruction overhead budget.
//!
//! Vulnerability is *measured*, not guessed: a baseline injection campaign
//! on the unprotected kernel attributes its SDC weight back to the static
//! instruction each faulted site belongs to, optionally scaled by the
//! statically-live bit fraction from fsp-analyze (a fault in a
//! statically-dead destination bit can never become an SDC, so those bits
//! do not justify protection). The cost of protecting a static
//! instruction is [`transform::DYNAMIC_OVERHEAD`] extra dynamic
//! instructions per fault-free execution, counted from the trace.
//!
//! The budget is expressed as a fraction of the *full-DMR* added cost
//! (protecting every candidate): `--budget 1.0` is full DMR, `--budget
//! 0.25` spends at most a quarter of full DMR's dynamic overhead.
//! Selection is a greedy knapsack by vulnerability-per-cost.

use std::collections::{BTreeMap, BTreeSet};

use fsp_analyze::StaticAceReport;
use fsp_core::ThreadGrouping;
use fsp_inject::{SiteSpace, WeightedSite};
use fsp_isa::KernelProgram;
use fsp_stats::Outcome;

use crate::transform;

/// Selection granularity of the planner.
///
/// Scope controls how candidates are *grouped and attributed* — the
/// emitted transformation is always static and whole-grid (every thread
/// executes the inserted compare groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtectScope {
    /// Contiguous runs of candidate instructions select together
    /// (basic-block-ish units).
    #[default]
    Range,
    /// All candidates of one static opcode class select together.
    Opcode,
    /// Per-instruction units, with vulnerability attributed through the
    /// thread-grouping representatives of [`fsp_core`]: only sites
    /// belonging to representative threads contribute, extrapolated by
    /// their group's site weight.
    ThreadGroup,
}

impl ProtectScope {
    /// All scopes, for sweeps and argument parsing.
    pub const ALL: [ProtectScope; 3] = [
        ProtectScope::Range,
        ProtectScope::Opcode,
        ProtectScope::ThreadGroup,
    ];

    /// Stable CLI/wire name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ProtectScope::Range => "range",
            ProtectScope::Opcode => "opcode",
            ProtectScope::ThreadGroup => "thread-group",
        }
    }

    /// Parses a [`ProtectScope::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<ProtectScope> {
        ProtectScope::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for ProtectScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One selection unit of the planner.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanUnit {
    /// Human-readable unit label (`pc 3..7`, `opcode mad`, ...).
    pub label: String,
    /// The candidate pcs in the unit.
    pub pcs: Vec<usize>,
    /// Attributed SDC weight (live-bit scaled when ACE data is present).
    pub vulnerability: f64,
    /// Added dynamic instructions if the unit is protected.
    pub cost: u64,
}

/// The planner's decision: which pcs to protect and the ledger behind it.
#[derive(Debug, Clone)]
pub struct ProtectionPlan {
    /// Selection granularity used.
    pub scope: ProtectScope,
    /// Budget as a fraction of the full-DMR added cost.
    pub budget: f64,
    /// Selected units, in selection order (best ratio first).
    pub selected: Vec<PlanUnit>,
    /// Units that did not fit the budget.
    pub rejected: Vec<PlanUnit>,
    /// Union of the selected units' pcs.
    pub selected_pcs: BTreeSet<usize>,
    /// Added dynamic instructions of the selection.
    pub added_cost: u64,
    /// Added dynamic instructions of protecting every candidate.
    pub full_dmr_cost: u64,
    /// Fault-free dynamic instructions of the unprotected kernel.
    pub baseline_instructions: u64,
    /// SDC weight attributed to instructions DMR cannot protect (stores,
    /// guarded instructions, predicate writers).
    pub unprotectable_vulnerability: f64,
}

impl ProtectionPlan {
    /// Selected overhead relative to the unprotected kernel's dynamic
    /// instruction count.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        ratio(self.added_cost, self.baseline_instructions)
    }

    /// Full-DMR overhead relative to the unprotected kernel.
    #[must_use]
    pub fn full_dmr_overhead_fraction(&self) -> f64 {
        ratio(self.full_dmr_cost, self.baseline_instructions)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Everything the planner consumes. `space` must carry full traces for
/// every thread whose sites appear in `sites` (the verification driver
/// traces all threads).
#[derive(Debug)]
pub struct PlanInputs<'a> {
    /// The unprotected program.
    pub program: &'a KernelProgram,
    /// Site space of the fault-free run (full traces).
    pub space: &'a SiteSpace,
    /// The baseline campaign's sites.
    pub sites: &'a [WeightedSite],
    /// The baseline campaign's outcomes, parallel to `sites`.
    pub outcomes: &'a [Outcome],
    /// Optional static ACE analysis for live-bit scaling.
    pub ace: Option<&'a StaticAceReport>,
    /// Optional abstract-interpretation classification: bits statically
    /// predicted to crash/trap (and equivalence-class members, which share
    /// their representative's non-SDC outcome) can never surface as SDCs,
    /// so they scale an instruction's vulnerability down like dead bits.
    pub classify: Option<&'a fsp_analyze::ClassifyReport>,
}

/// Plans a selective protection under `budget` (fraction of full-DMR
/// added cost, clamped to `0.0..=1.0`).
///
/// # Panics
///
/// Panics if `outcomes` and `sites` lengths differ.
#[must_use]
pub fn plan(inputs: &PlanInputs<'_>, scope: ProtectScope, budget: f64) -> ProtectionPlan {
    assert_eq!(
        inputs.sites.len(),
        inputs.outcomes.len(),
        "one outcome per site"
    );
    let budget = budget.clamp(0.0, 1.0);
    let trace = inputs.space.trace();
    let program_len = inputs.program.len();

    // Dynamic executions per static instruction, from the full traces.
    let mut exec: Vec<u64> = vec![0; program_len];
    for thread in trace.full.values() {
        for entry in &thread.entries {
            exec[entry.pc as usize] += 1;
        }
    }
    let baseline_instructions: u64 = trace.icnt.iter().map(|&n| u64::from(n)).sum();

    // SDC weight attributed per pc. Thread-group scope restricts
    // attribution to representative threads and extrapolates by their
    // group's site weight.
    let rep_weight: Option<BTreeMap<u32, f64>> = match scope {
        ProtectScope::ThreadGroup => {
            let grouping = ThreadGrouping::analyze(trace);
            Some(
                grouping
                    .representatives(trace)
                    .into_iter()
                    .map(|r| (r.tid, r.site_weight()))
                    .collect(),
            )
        }
        _ => None,
    };
    let mut sdc_weight: Vec<f64> = vec![0.0; program_len];
    for (ws, outcome) in inputs.sites.iter().zip(inputs.outcomes) {
        if *outcome != Outcome::Sdc {
            continue;
        }
        let scale = match &rep_weight {
            Some(reps) => match reps.get(&ws.site.tid) {
                Some(w) => *w,
                None => continue,
            },
            None => 1.0,
        };
        let Some(thread) = trace.full.get(ws.site.tid) else {
            continue;
        };
        let Some(entry) = thread.entries.get(ws.site.dyn_idx as usize) else {
            continue;
        };
        sdc_weight[entry.pc as usize] += ws.weight * scale;
    }

    // Live-bit scaling: statically-dead destination bits cannot surface,
    // and neither can bits the abstract interpreter predicts as DUEs or
    // folds into equivalence classes (provable crash at every use).
    let vuln = |pc: usize| -> f64 {
        let mut live = 1.0;
        if let Some(ace) = inputs.ace {
            let dest = ace.dest_bits_at(pc);
            if dest > 0 {
                let mut skipped = ace.dead_bits_at(pc);
                if let Some(c) = inputs.classify {
                    skipped +=
                        c.crash_bits_at(pc) + c.detected_bits_at(pc) + c.class_pruned_bits_at(pc);
                }
                live = f64::from(dest - skipped.min(dest)) / f64::from(dest);
            }
        }
        sdc_weight[pc] * live
    };
    let cost = |pc: usize| -> u64 { exec[pc] * transform::DYNAMIC_OVERHEAD };

    let candidates = transform::candidate_pcs(inputs.program);
    let candidate_set: BTreeSet<usize> = candidates.iter().copied().collect();
    let unprotectable_vulnerability: f64 = (0..program_len)
        .filter(|pc| !candidate_set.contains(pc))
        .map(|pc| sdc_weight[pc])
        .sum();
    let full_dmr_cost: u64 = candidates.iter().map(|&pc| cost(pc)).sum();

    let mut units = build_units(inputs.program, &candidates, scope, &vuln, &cost);
    // Greedy knapsack by vulnerability per unit cost; zero-cost units
    // (never-executed code) sort first and are free to take.
    units.sort_by(|a, b| {
        let ra = unit_ratio(a);
        let rb = unit_ratio(b);
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cost.cmp(&b.cost))
            .then_with(|| a.pcs.cmp(&b.pcs))
    });
    let cap = (budget * full_dmr_cost as f64).round() as u64;
    let mut selected = Vec::new();
    let mut rejected = Vec::new();
    let mut added_cost = 0u64;
    for unit in units {
        if added_cost + unit.cost <= cap {
            added_cost += unit.cost;
            selected.push(unit);
        } else {
            rejected.push(unit);
        }
    }
    let selected_pcs: BTreeSet<usize> = selected
        .iter()
        .flat_map(|u| u.pcs.iter().copied())
        .collect();

    ProtectionPlan {
        scope,
        budget,
        selected,
        rejected,
        selected_pcs,
        added_cost,
        full_dmr_cost,
        baseline_instructions,
        unprotectable_vulnerability,
    }
}

/// A unit's selection priority: vulnerability per unit of cost, with
/// zero-cost units ranked above everything (they are free).
fn unit_ratio(unit: &PlanUnit) -> f64 {
    if unit.cost == 0 {
        f64::INFINITY
    } else {
        unit.vulnerability / unit.cost as f64
    }
}

fn build_units(
    program: &KernelProgram,
    candidates: &[usize],
    scope: ProtectScope,
    vuln: &dyn Fn(usize) -> f64,
    cost: &dyn Fn(usize) -> u64,
) -> Vec<PlanUnit> {
    let make = |label: String, pcs: Vec<usize>| -> PlanUnit {
        let vulnerability = pcs.iter().map(|&pc| vuln(pc)).sum();
        let cost = pcs.iter().map(|&pc| cost(pc)).sum();
        PlanUnit {
            label,
            pcs,
            vulnerability,
            cost,
        }
    };
    match scope {
        ProtectScope::Range => {
            // Contiguous candidate runs.
            let mut units = Vec::new();
            let mut run: Vec<usize> = Vec::new();
            for &pc in candidates {
                if run.last().is_some_and(|&last| pc != last + 1) {
                    let label = range_label(&run);
                    units.push(make(label, std::mem::take(&mut run)));
                }
                run.push(pc);
            }
            if !run.is_empty() {
                let label = range_label(&run);
                units.push(make(label, run));
            }
            units
        }
        ProtectScope::Opcode => {
            let mut by_op: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
            for &pc in candidates {
                by_op
                    .entry(program.instr(pc).opcode.mnemonic())
                    .or_default()
                    .push(pc);
            }
            by_op
                .into_iter()
                .map(|(op, pcs)| make(format!("opcode {op}"), pcs))
                .collect()
        }
        ProtectScope::ThreadGroup => candidates
            .iter()
            .map(|&pc| make(format!("pc {pc}"), vec![pc]))
            .collect(),
    }
}

fn range_label(run: &[usize]) -> String {
    match run {
        [] => String::new(),
        [one] => format!("pc {one}"),
        [first, .., last] => format!("pc {first}..{last}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::FaultSite;
    use fsp_isa::assemble;
    use fsp_sim::{Launch, MemBlock, Simulator, Tracer};

    fn fixture() -> (fsp_isa::KernelProgram, SiteSpace) {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x4
            mul.u32 $r2, $r1, 0x3
            add.u32 $r3, $r2, 0x1
            st.global.u32 [$r1], $r3
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p.clone()).grid(1, 1).block(2, 1, 1);
        let mut tracer = Tracer::new(2, 2).with_full_traces(0..2);
        let mut mem = MemBlock::with_words(16);
        Simulator::new()
            .run(&launch, &mut mem, &mut tracer)
            .unwrap();
        (p, SiteSpace::new(tracer.finish()))
    }

    fn site(tid: u32, dyn_idx: u32) -> WeightedSite {
        WeightedSite::from(FaultSite {
            tid,
            dyn_idx,
            bit: 0,
        })
    }

    #[test]
    fn scope_names_round_trip() {
        for s in ProtectScope::ALL {
            assert_eq!(ProtectScope::from_name(s.name()), Some(s));
        }
        assert_eq!(ProtectScope::from_name("nonesuch"), None);
    }

    #[test]
    fn full_budget_selects_every_candidate() {
        let (p, space) = fixture();
        let sites = [site(0, 1), site(0, 2), site(1, 1)];
        let outcomes = [Outcome::Sdc, Outcome::Masked, Outcome::Sdc];
        let inputs = PlanInputs {
            program: &p,
            space: &space,
            sites: &sites,
            outcomes: &outcomes,
            ace: None,
            classify: None,
        };
        let plan = plan(&inputs, ProtectScope::Range, 1.0);
        let candidates: BTreeSet<usize> = transform::candidate_pcs(&p).into_iter().collect();
        assert_eq!(plan.selected_pcs, candidates);
        assert_eq!(plan.added_cost, plan.full_dmr_cost);
        // 3 candidate pcs x 2 threads x 2 retired instructions each.
        assert_eq!(plan.full_dmr_cost, 12);
        assert_eq!(plan.baseline_instructions, 10);
        assert!(plan.rejected.is_empty());
    }

    #[test]
    fn partial_budget_prefers_measured_sdc_contributors() {
        let (p, space) = fixture();
        // All SDC weight lands on the mul at pc 1.
        let sites = [site(0, 1), site(1, 1), site(0, 2)];
        let outcomes = [Outcome::Sdc, Outcome::Sdc, Outcome::Masked];
        let inputs = PlanInputs {
            program: &p,
            space: &space,
            sites: &sites,
            outcomes: &outcomes,
            ace: None,
            classify: None,
        };
        // Opcode scope so each static instruction is its own unit here.
        let plan = plan(&inputs, ProtectScope::Opcode, 0.34);
        assert!(plan.selected_pcs.contains(&1), "mul carries all the SDC");
        assert!(!plan.selected_pcs.contains(&0));
        assert!(!plan.selected_pcs.contains(&2));
        assert!(plan.added_cost <= plan.full_dmr_cost / 3 + 1);
        assert!(!plan.rejected.is_empty());
    }

    #[test]
    fn zero_budget_selects_only_free_units() {
        let (p, space) = fixture();
        let sites = [site(0, 1)];
        let outcomes = [Outcome::Sdc];
        let inputs = PlanInputs {
            program: &p,
            space: &space,
            sites: &sites,
            outcomes: &outcomes,
            ace: None,
            classify: None,
        };
        let plan = plan(&inputs, ProtectScope::Range, 0.0);
        assert_eq!(plan.added_cost, 0);
        assert!(plan.selected_pcs.is_empty(), "every unit here has cost");
    }

    #[test]
    fn unprotectable_weight_is_ledgered() {
        let (p, space) = fixture();
        // dyn_idx 3 is the store: SDC weight there cannot be protected.
        let sites = [site(0, 3)];
        let outcomes = [Outcome::Sdc];
        let inputs = PlanInputs {
            program: &p,
            space: &space,
            sites: &sites,
            outcomes: &outcomes,
            ace: None,
            classify: None,
        };
        let plan = plan(&inputs, ProtectScope::Range, 1.0);
        assert!((plan.unprotectable_vulnerability - 1.0).abs() < 1e-12);
    }
}
