//! Selective kernel hardening with detection-aware verification.
//!
//! The pruning pipeline (fsp-core) makes *measuring* a kernel's
//! vulnerability cheap; this crate closes the loop by *acting* on the
//! measurement. It applies selective duplicate-and-compare (DMR) to the
//! most vulnerable instructions under a dynamic-instruction overhead
//! budget, then verifies the hardened kernel by re-running the same
//! injection campaign against it and watching SDC outcomes convert to
//! [`fsp_stats::Outcome::Detected`].
//!
//! The crate splits into three layers:
//!
//! * [`transform`] — the mechanical DMR pass over [`fsp_isa`] programs:
//!   shadow recomputation, raw-bit compare, branch to an appended
//!   `trap` detected-error exit ([`fsp_isa::Opcode::Trap`]).
//! * [`plan`] — the protection planner: attributes a baseline campaign's
//!   SDC weight back to static instructions (optionally live-bit scaled
//!   by fsp-analyze), groups candidates by [`plan::ProtectScope`], and
//!   greedily selects under the budget.
//! * [`verify`] — re-injection verification: remaps the baseline fault
//!   sites onto the transformed program and measures detection coverage
//!   and SDC reduction against overhead.

pub mod plan;
pub mod transform;
pub mod verify;

pub use plan::{plan as plan_protection, PlanInputs, PlanUnit, ProtectScope, ProtectionPlan};
pub use transform::{
    candidate_pcs, harden, is_candidate, HardenError, HardenedKernel, DETECT_LABEL,
    DYNAMIC_OVERHEAD, GROUP_OVERHEAD,
};
pub use verify::{
    coverage_curve, harden_and_verify, remap_sites, HardenConfig, HardeningOutcome,
    HardeningReport, ProtectError, ProtectedTarget,
};
