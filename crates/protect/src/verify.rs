//! Detection-aware re-injection verification.
//!
//! Hardening claims are only as good as their measurement. This module
//! re-runs the *same* fault campaign against the hardened kernel: every
//! baseline fault site is remapped to the equivalent dynamic instruction
//! instance of the transformed program (same thread, same logical
//! instruction execution, same destination bit), so the baseline and
//! protected campaigns are site-for-site comparable — an SDC that the
//! compare catches flips to [`Outcome::Detected`], and the conversion is
//! directly attributable rather than statistical.

use std::collections::{BTreeMap, BTreeSet};

use fsp_analyze::StaticAceReport;
use fsp_inject::{Experiment, FaultModel, InjectionTarget, SiteSpace, WeightedSite};
use fsp_sim::{Launch, MemBlock, SimFault};
use fsp_stats::{Outcome, ResilienceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::plan::{self, PlanInputs, ProtectScope, ProtectionPlan};
use crate::transform::{self, HardenedKernel};

/// A target wrapper that launches the hardened program with the wrapped
/// target's geometry, parameters and memory image.
#[derive(Debug)]
pub struct ProtectedTarget<'a, T: InjectionTarget> {
    inner: &'a T,
    launch: Launch,
    name: String,
}

impl<'a, T: InjectionTarget> ProtectedTarget<'a, T> {
    /// Wraps `inner`, substituting `program` into its launch.
    #[must_use]
    pub fn new(inner: &'a T, program: fsp_isa::KernelProgram) -> Self {
        let base = inner.launch();
        let (gx, gy) = base.grid_dim();
        let (bx, by, bz) = base.block_dim();
        let name = format!("{}__dmr", inner.name());
        let launch = Launch::new(program)
            .grid(gx, gy)
            .block(bx, by, bz)
            .params(base.param_values().iter().copied())
            .shared_bytes(base.shared_size());
        ProtectedTarget {
            inner,
            launch,
            name,
        }
    }
}

impl<T: InjectionTarget> InjectionTarget for ProtectedTarget<'_, T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn launch(&self) -> Launch {
        self.launch.clone()
    }

    fn init_memory(&self) -> MemBlock {
        self.inner.init_memory()
    }

    fn output_region(&self) -> (u32, usize) {
        self.inner.output_region()
    }
}

/// Why hardening or verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectError {
    /// The unprotected kernel's fault-free run faulted (a workload bug).
    Workload(SimFault),
    /// The *hardened* kernel's fault-free run faulted — the transformation
    /// broke transparency (a hardening bug, never expected).
    Hardened(SimFault),
    /// The transformation itself failed.
    Harden(transform::HardenError),
    /// The kernel exposes no fault sites to measure against.
    EmptySiteSpace,
}

impl std::fmt::Display for ProtectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtectError::Workload(e) => write!(f, "fault-free run failed: {e}"),
            ProtectError::Hardened(e) => {
                write!(f, "hardened kernel's fault-free run failed: {e}")
            }
            ProtectError::Harden(e) => write!(f, "hardening failed: {e}"),
            ProtectError::EmptySiteSpace => write!(f, "kernel has no fault sites"),
        }
    }
}

impl std::error::Error for ProtectError {}

impl From<transform::HardenError> for ProtectError {
    fn from(e: transform::HardenError) -> Self {
        ProtectError::Harden(e)
    }
}

/// Configuration of [`harden_and_verify`].
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Planner selection granularity.
    pub scope: ProtectScope,
    /// Budget as a fraction of full-DMR dynamic overhead (`1.0` = full).
    pub budget: f64,
    /// Baseline campaign size (sites sampled uniformly from Eq. 1's
    /// population).
    pub samples: usize,
    /// RNG seed for the site sample.
    pub seed: u64,
    /// Fault model of both campaigns.
    pub model: FaultModel,
    /// Campaign worker threads.
    pub workers: usize,
    /// Scale vulnerability by the statically-live bit fraction from
    /// fsp-analyze.
    pub use_ace: bool,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            scope: ProtectScope::default(),
            budget: 0.25,
            samples: 500,
            seed: 2018,
            model: FaultModel::SingleBitFlip,
            workers: 1,
            use_ace: true,
        }
    }
}

/// The measured outcome of one harden-and-verify run.
#[derive(Debug, Clone)]
pub struct HardeningReport {
    /// Kernel name (unprotected).
    pub kernel: String,
    /// Planner scope.
    pub scope: ProtectScope,
    /// Requested budget fraction.
    pub budget: f64,
    /// DMR-candidate static instructions.
    pub candidate_static: usize,
    /// Protected static instructions.
    pub protected_static: usize,
    /// Campaign size (sites per side).
    pub samples: usize,
    /// Baseline (unprotected) profile over the sampled sites.
    pub baseline: ResilienceProfile,
    /// Protected profile over the same (remapped) sites.
    pub protected: ResilienceProfile,
    /// Weight of baseline-SDC sites the hardened kernel *detects*.
    pub converted_sdc_to_detected: f64,
    /// Total baseline SDC weight (denominator of the coverage).
    pub baseline_sdc_weight: f64,
    /// Fault-free dynamic instructions, unprotected.
    pub baseline_instructions: u64,
    /// Fault-free dynamic instructions, hardened.
    pub hardened_instructions: u64,
    /// Planner-estimated overhead fraction of the selection.
    pub planned_overhead: f64,
    /// Full-DMR overhead fraction (the upper end of the curve).
    pub full_dmr_overhead: f64,
}

impl HardeningReport {
    /// Measured dynamic-instruction overhead of the hardened kernel.
    #[must_use]
    pub fn measured_overhead(&self) -> f64 {
        if self.baseline_instructions == 0 {
            0.0
        } else {
            (self.hardened_instructions as f64 - self.baseline_instructions as f64)
                / self.baseline_instructions as f64
        }
    }

    /// Percentage-point SDC reduction vs the unprotected baseline.
    #[must_use]
    pub fn sdc_reduction_points(&self) -> f64 {
        self.baseline.pct_sdc() - self.protected.pct_sdc()
    }

    /// Fraction of baseline SDC weight converted to detections.
    #[must_use]
    pub fn detection_coverage(&self) -> f64 {
        if self.baseline_sdc_weight == 0.0 {
            0.0
        } else {
            self.converted_sdc_to_detected / self.baseline_sdc_weight
        }
    }
}

/// Everything [`harden_and_verify`] produced: the plan, the transformed
/// kernel and the measurements.
#[derive(Debug, Clone)]
pub struct HardeningOutcome {
    /// The planner's decision and ledger.
    pub plan: ProtectionPlan,
    /// The transformed kernel.
    pub hardened: HardenedKernel,
    /// The measured report.
    pub report: HardeningReport,
    /// Baseline outcomes, in site order.
    pub baseline_outcomes: Vec<Outcome>,
    /// Protected outcomes over the remapped sites, in the same order.
    pub protected_outcomes: Vec<Outcome>,
}

/// Remaps baseline fault sites onto the hardened program.
///
/// A baseline site addresses (thread, k-th retired instruction, bit). The
/// hardened trace interleaves shadow/compare instructions, so the k-th
/// *original* instruction sits at a different dynamic index; this walks
/// the protected thread trace and maps each baseline dynamic index to the
/// dynamic index of the same logical instruction instance. Bits carry
/// over unchanged (the original copy keeps its destination).
///
/// # Panics
///
/// Panics if the traces disagree on the original-instruction sequence —
/// that would mean the transformation changed fault-free control flow,
/// which the transparency tests forbid.
#[must_use]
pub fn remap_sites(
    hardened: &HardenedKernel,
    baseline: &SiteSpace,
    protected: &SiteSpace,
    sites: &[WeightedSite],
) -> Vec<WeightedSite> {
    // new pc -> original pc, for entries that are original instructions
    // (shadows, compares, branches and the trap map to None).
    let mut orig_of_new: Vec<Option<usize>> = vec![None; hardened.program.len()];
    for old_pc in 0..hardened.original_len() {
        orig_of_new[hardened.original_pc(old_pc)] = Some(old_pc);
    }

    let mut per_thread: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    sites
        .iter()
        .map(|ws| {
            let map = per_thread.entry(ws.site.tid).or_insert_with(|| {
                let base = &baseline.trace().full[ws.site.tid];
                let prot = &protected.trace().full[ws.site.tid];
                let mapped: Vec<u32> = prot
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| orig_of_new[e.pc as usize].is_some())
                    .map(|(j, _)| j as u32)
                    .collect();
                assert_eq!(
                    mapped.len(),
                    base.entries.len(),
                    "hardened trace must retire the same original instructions"
                );
                for (k, &j) in mapped.iter().enumerate() {
                    let old = &base.entries[k];
                    let new = &prot.entries[j as usize];
                    assert_eq!(
                        orig_of_new[new.pc as usize],
                        Some(old.pc as usize),
                        "original-instruction sequences must agree"
                    );
                    assert_eq!(old.dest_bits, new.dest_bits, "destinations must agree");
                }
                mapped
            });
            let mut site = ws.site;
            site.dyn_idx = map[site.dyn_idx as usize];
            WeightedSite {
                site,
                weight: ws.weight,
            }
        })
        .collect()
}

/// Plans, hardens and verifies: baseline campaign → planner → DMR
/// transform → transparency check (fault-free golden equality) → remapped
/// re-injection campaign.
///
/// # Errors
///
/// [`ProtectError`] on workload faults, transformation failure or an
/// empty site population.
pub fn harden_and_verify<T: InjectionTarget>(
    target: &T,
    config: &HardenConfig,
) -> Result<HardeningOutcome, ProtectError> {
    let experiment = Experiment::prepare(target).map_err(ProtectError::Workload)?;
    let launch = target.launch();
    let space = experiment.site_space(0..launch.num_threads());
    if space.total_sites() == 0 {
        return Err(ProtectError::EmptySiteSpace);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sites: Vec<WeightedSite> = space
        .sample_many(config.samples, &mut rng)
        .into_iter()
        .map(WeightedSite::from)
        .collect();
    let baseline_run = experiment.run_campaign_with(&sites, config.model, config.workers);

    let program = launch.program();
    let ace = config.use_ace.then(|| StaticAceReport::analyze(program));
    let classify = config
        .use_ace
        .then(|| fsp_analyze::ClassifyReport::analyze(program, &fsp_core::abs_context_for(target)));
    let inputs = PlanInputs {
        program,
        space: &space,
        sites: &sites,
        outcomes: &baseline_run.outcomes,
        ace: ace.as_ref(),
        classify: classify.as_ref(),
    };
    let plan = plan::plan(&inputs, config.scope, config.budget);
    let hardened = transform::harden(program, &plan.selected_pcs)?;

    let protected_target = ProtectedTarget::new(target, hardened.program.clone());
    let protected_exp = Experiment::prepare(&protected_target).map_err(ProtectError::Hardened)?;
    // Transparency: the hardened kernel must reproduce the golden output
    // bit-for-bit with no fault injected.
    assert_eq!(
        protected_exp.golden(),
        experiment.golden(),
        "hardening must be output-transparent on the fault-free run"
    );
    let tids: BTreeSet<u32> = sites.iter().map(|ws| ws.site.tid).collect();
    let protected_space = protected_exp.site_space(tids);
    let mapped = remap_sites(&hardened, &space, &protected_space, &sites);
    let protected_run = protected_exp.run_campaign_with(&mapped, config.model, config.workers);

    let mut baseline_sdc_weight = 0.0;
    let mut converted = 0.0;
    for ((ws, base), prot) in sites
        .iter()
        .zip(&baseline_run.outcomes)
        .zip(&protected_run.outcomes)
    {
        if *base == Outcome::Sdc {
            baseline_sdc_weight += ws.weight;
            if *prot == Outcome::Detected {
                converted += ws.weight;
            }
        }
    }

    let report = HardeningReport {
        kernel: target.name().to_owned(),
        scope: config.scope,
        budget: plan.budget,
        candidate_static: transform::candidate_pcs(program).len(),
        protected_static: plan.selected_pcs.len(),
        samples: sites.len(),
        baseline: baseline_run.profile,
        protected: protected_run.profile,
        converted_sdc_to_detected: converted,
        baseline_sdc_weight,
        baseline_instructions: experiment.fault_free_instructions(),
        hardened_instructions: protected_exp.fault_free_instructions(),
        planned_overhead: plan.overhead_fraction(),
        full_dmr_overhead: plan.full_dmr_overhead_fraction(),
    };
    Ok(HardeningOutcome {
        plan,
        hardened,
        report,
        baseline_outcomes: baseline_run.outcomes,
        protected_outcomes: protected_run.outcomes,
    })
}

/// Sweeps budgets and returns one report per point — the
/// coverage-vs-overhead curve of `fsp harden-report`.
///
/// # Errors
///
/// Propagates the first [`ProtectError`].
pub fn coverage_curve<T: InjectionTarget>(
    target: &T,
    config: &HardenConfig,
    budgets: &[f64],
) -> Result<Vec<HardeningReport>, ProtectError> {
    budgets
        .iter()
        .map(|&budget| {
            let config = HardenConfig {
                budget,
                ..config.clone()
            };
            harden_and_verify(target, &config).map(|o| o.report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::testing::CountdownTarget;

    fn config(budget: f64) -> HardenConfig {
        HardenConfig {
            budget,
            samples: 300,
            workers: 2,
            ..HardenConfig::default()
        }
    }

    #[test]
    fn full_dmr_detects_most_baseline_sdc() {
        let target = CountdownTarget::new();
        let outcome = harden_and_verify(&target, &config(1.0)).unwrap();
        let report = &outcome.report;
        assert!(report.baseline_sdc_weight > 0.0, "baseline must show SDC");
        assert!(
            report.protected.detected() > 0.0,
            "full DMR must detect faults"
        );
        assert!(
            report.protected.pct_sdc() < report.baseline.pct_sdc(),
            "full DMR must reduce SDC ({:.2}% -> {:.2}%)",
            report.baseline.pct_sdc(),
            report.protected.pct_sdc()
        );
        assert!(report.detection_coverage() > 0.5);
        // Weight conservation: the 4-class profile accounts for every
        // sampled site on both sides (Eq. 1 population of the sample).
        assert!((report.baseline.total() - report.samples as f64).abs() < 1e-9);
        assert!((report.protected.total() - report.samples as f64).abs() < 1e-9);
        assert!(report.measured_overhead() > 0.0);
    }

    #[test]
    fn partial_budget_costs_less_than_full_dmr() {
        // Per-instruction units: the countdown kernel's Range scope folds
        // its whole loop body into one unit too big for a half budget.
        let scoped = |budget| HardenConfig {
            scope: ProtectScope::ThreadGroup,
            ..config(budget)
        };
        let target = CountdownTarget::new();
        let full = harden_and_verify(&target, &scoped(1.0)).unwrap().report;
        let part = harden_and_verify(&target, &scoped(0.5)).unwrap().report;
        assert!(part.protected_static < full.protected_static);
        assert!(part.measured_overhead() < full.measured_overhead());
        assert!(part.planned_overhead <= full.planned_overhead);
        assert!(
            part.protected.pct_sdc() < part.baseline.pct_sdc(),
            "even a half budget must reduce SDC on the countdown kernel"
        );
    }

    #[test]
    fn remapped_sites_reproduce_masked_outcomes() {
        // A site that was masked at baseline because the destination is
        // dead stays analysable after remapping: outcomes vectors line up
        // one-to-one.
        let target = CountdownTarget::new();
        let outcome = harden_and_verify(&target, &config(1.0)).unwrap();
        assert_eq!(
            outcome.baseline_outcomes.len(),
            outcome.protected_outcomes.len()
        );
    }

    #[test]
    fn coverage_curve_is_monotone_in_protected_instructions() {
        let target = CountdownTarget::new();
        let curve = coverage_curve(&target, &config(0.0), &[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(curve.len(), 3);
        assert!(curve[0].protected_static <= curve[1].protected_static);
        assert!(curve[1].protected_static <= curve[2].protected_static);
        assert_eq!(curve[0].measured_overhead(), 0.0, "zero budget is free");
    }
}
