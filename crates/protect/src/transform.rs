//! The selective DMR (duplicate-and-compare) transformation.
//!
//! Each protected instruction is expanded into a four-instruction group:
//!
//! ```text
//! op.ty  $rS, <sources>        ; shadow recomputation (runs first)
//! op.ty  $rD, <sources>        ; the original instruction
//! set.eq.u32.u32 $pK, $rD, $rS ; raw-bit compare (zero flag on mismatch)
//! @$pK.eq bra __fsp_detect     ; branch to the detected-error exit
//! ```
//!
//! The shadow runs *before* the original so that instructions whose
//! destination also appears among their sources (`add.u32 $r3, $r3, 1`)
//! recompute from the pre-write value. Writes fully overwrite their 32-bit
//! register with the masked result, so a raw `u32` equality compare is
//! bit-exact for every scalar type, NaNs included. `set.eq` produces
//! all-ones on a match and `0` on a mismatch; the predicate destination
//! receives the result's condition codes, so the zero flag is set exactly
//! on mismatch and the `@$pK.eq` guard branches to the appended
//! [`trap`](fsp_isa::Opcode::Trap) block only when the shadow disagrees.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use fsp_isa::{
    CmpOp, Dest, Guard, Instruction, KernelProgram, Opcode, Operand, PredTest, Register, NUM_GPRS,
    NUM_PREDS,
};

/// Label of the appended detected-error exit block.
pub const DETECT_LABEL: &str = "__fsp_detect";

/// Static instructions added per protected instruction (shadow + compare +
/// guarded branch).
pub const GROUP_OVERHEAD: usize = 3;

/// Dynamic instructions retired per protected execution in a fault-free
/// run: the shadow and the compare. The guarded branch is skipped when the
/// values match, and skipped guards do not retire.
pub const DYNAMIC_OVERHEAD: u64 = 2;

/// Why a program (or a requested instruction) cannot be hardened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HardenError {
    /// The requested pc is outside the program.
    PcOutOfRange {
        /// The offending pc.
        pc: usize,
        /// Program length.
        len: usize,
    },
    /// The instruction at `pc` is not a DMR candidate (guarded, control
    /// flow, store, or without a single general-purpose register
    /// destination).
    NotACandidate {
        /// The offending pc.
        pc: usize,
    },
    /// Every general-purpose register is already live somewhere in the
    /// program, leaving no shadow register.
    NoFreeGpr,
    /// Every predicate register is used somewhere in the program, leaving
    /// no compare predicate.
    NoFreePred,
}

impl fmt::Display for HardenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardenError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc} out of range for a {len}-instruction program")
            }
            HardenError::NotACandidate { pc } => {
                write!(f, "instruction at pc {pc} is not a DMR candidate")
            }
            HardenError::NoFreeGpr => write!(f, "no free general-purpose register for the shadow"),
            HardenError::NoFreePred => write!(f, "no free predicate register for the compare"),
        }
    }
}

impl std::error::Error for HardenError {}

/// Whether an instruction can be protected by duplicate-and-compare:
/// unguarded, non-control, with exactly one non-discard general-purpose
/// register destination (stores, predicate writers and dual-destination
/// `set` instructions are out).
#[must_use]
pub fn is_candidate(instr: &Instruction) -> bool {
    if instr.guard.is_some() || instr.is_control() {
        return false;
    }
    if matches!(instr.opcode, Opcode::St | Opcode::Ssy | Opcode::Nop) {
        return false;
    }
    let Some(Dest::Reg(reg @ Register::Gpr(_))) = instr.dst[0] else {
        return false;
    };
    !reg.is_discard() && instr.dst[1].is_none()
}

/// The pcs of every DMR candidate in `program`, in order.
#[must_use]
pub fn candidate_pcs(program: &KernelProgram) -> Vec<usize> {
    (0..program.len())
        .filter(|&pc| is_candidate(program.instr(pc)))
        .collect()
}

/// A hardened kernel: the transformed program plus the bookkeeping needed
/// to relate it back to the original (pc remapping, shadow resources).
#[derive(Debug, Clone)]
pub struct HardenedKernel {
    /// The transformed program (name suffixed with `__dmr`).
    pub program: KernelProgram,
    /// The protected original pcs, ascending.
    pub protected_pcs: Vec<usize>,
    /// The shadow general-purpose register.
    pub shadow_gpr: u8,
    /// The compare predicate register.
    pub compare_pred: u8,
    /// pc of the appended `trap` detected-error exit.
    pub detect_pc: usize,
    protected: BTreeSet<usize>,
    /// `pc_map[t]` = new pc of the *group start* of original pc `t`
    /// (`pc_map[len]` = first appended instruction).
    pc_map: Vec<usize>,
}

impl HardenedKernel {
    /// New pc of the group start of original pc `t` (the shadow for
    /// protected instructions, the instruction itself otherwise). Branch
    /// targets are remapped with this, so a jump to a protected
    /// instruction re-runs its shadow first.
    #[must_use]
    pub fn group_start(&self, old_pc: usize) -> usize {
        self.pc_map[old_pc]
    }

    /// New pc of the *original* instruction for original pc `t` — one past
    /// the shadow for protected instructions. Fault-site remapping targets
    /// this copy, so injected faults land in the live destination the
    /// compare checks.
    #[must_use]
    pub fn original_pc(&self, old_pc: usize) -> usize {
        self.pc_map[old_pc] + usize::from(self.protected.contains(&old_pc))
    }

    /// Whether original pc `t` is protected.
    #[must_use]
    pub fn is_protected(&self, old_pc: usize) -> bool {
        self.protected.contains(&old_pc)
    }

    /// Static instructions added by the transformation.
    #[must_use]
    pub fn added_static(&self) -> usize {
        self.program.len() - self.original_len()
    }

    /// Length of the original (untransformed) program.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.pc_map.len() - 1
    }
}

/// Applies duplicate-and-compare to the instructions in `pcs`.
///
/// The transformation is purely static and whole-grid: every thread
/// executes the shadow/compare groups. Planning (which pcs end up in
/// `pcs`) is where selectivity and scoping live — see [`crate::plan`].
///
/// # Errors
///
/// [`HardenError`] when a pc is out of range or not a candidate, or when
/// no free shadow register / compare predicate exists.
pub fn harden(
    program: &KernelProgram,
    pcs: &BTreeSet<usize>,
) -> Result<HardenedKernel, HardenError> {
    let len = program.len();
    for &pc in pcs {
        if pc >= len {
            return Err(HardenError::PcOutOfRange { pc, len });
        }
        if !is_candidate(program.instr(pc)) {
            return Err(HardenError::NotACandidate { pc });
        }
    }
    let (shadow_gpr, compare_pred) = free_registers(program)?;

    // Group starts: each protected pc before `t` inserts GROUP_OVERHEAD
    // extra instructions ahead of it.
    let mut pc_map = Vec::with_capacity(len + 1);
    let mut inserted = 0usize;
    for pc in 0..=len {
        pc_map.push(pc + inserted * GROUP_OVERHEAD);
        if pcs.contains(&pc) {
            inserted += 1;
        }
    }
    let detect_pc = pc_map[len];

    let mut out: Vec<Instruction> = Vec::with_capacity(detect_pc + 1);
    for pc in 0..len {
        let mut instr = program.instr(pc).clone();
        if let Some(t) = instr.target {
            instr.target = Some(pc_map[t]);
        }
        if pcs.contains(&pc) {
            let dst = instr.dst[0]
                .and_then(|d| d.register())
                .expect("candidate has a register destination");
            let mut shadow = instr.clone();
            shadow.dst[0] = Some(Dest::Reg(Register::Gpr(shadow_gpr)));
            out.push(shadow);
            out.push(instr);
            let mut compare = Instruction::new(Opcode::Set);
            compare.cmp = Some(CmpOp::Eq);
            compare.dst[0] = Some(Dest::Reg(Register::Pred(compare_pred)));
            compare.src[0] = Some(Operand::reg(dst));
            compare.src[1] = Some(Operand::reg(Register::Gpr(shadow_gpr)));
            out.push(compare);
            let mut branch = Instruction::new(Opcode::Bra);
            branch.guard = Some(Guard {
                pred: compare_pred,
                test: PredTest::Eq,
            });
            branch.target = Some(detect_pc);
            out.push(branch);
        } else {
            out.push(instr);
        }
    }
    debug_assert_eq!(out.len(), detect_pc);
    out.push(Instruction::new(Opcode::Trap));

    let mut labels: BTreeMap<String, usize> = program
        .labels()
        .iter()
        .map(|(name, &pc)| (name.clone(), pc_map[pc]))
        .collect();
    let mut detect_label = DETECT_LABEL.to_owned();
    while labels.contains_key(&detect_label) {
        detect_label.push('_');
    }
    labels.insert(detect_label, detect_pc);

    Ok(HardenedKernel {
        program: KernelProgram::from_parts(format!("{}__dmr", program.name()), out, labels),
        protected_pcs: pcs.iter().copied().collect(),
        shadow_gpr,
        compare_pred,
        detect_pc,
        protected: pcs.clone(),
        pc_map,
    })
}

/// Finds an unused general-purpose register and an unused predicate,
/// scanning from the highest index down (kernels allocate from the
/// bottom, so the top of each register file is most likely free).
fn free_registers(program: &KernelProgram) -> Result<(u8, u8), HardenError> {
    let mut gpr_used = [false; NUM_GPRS as usize];
    let mut pred_used = [false; NUM_PREDS as usize];
    let mut mark = |reg: Register| match reg {
        Register::Gpr(n) => gpr_used[n as usize] = true,
        Register::Pred(n) => pred_used[n as usize] = true,
        _ => {}
    };
    for pc in 0..program.len() {
        let instr = program.instr(pc);
        if let Some(g) = instr.guard {
            mark(Register::Pred(g.pred));
        }
        for dest in instr.dests() {
            match dest {
                Dest::Reg(r) => mark(*r),
                Dest::Mem(m) => {
                    if let Some(base) = m.base {
                        mark(base);
                    }
                }
            }
        }
        for src in instr.sources() {
            if let Some(r) = src.register() {
                mark(r);
            }
        }
    }
    let shadow = (0..NUM_GPRS)
        .rev()
        .find(|&n| !gpr_used[n as usize] && !Register::Gpr(n).is_discard())
        .ok_or(HardenError::NoFreeGpr)?;
    let pred = (0..NUM_PREDS)
        .rev()
        .find(|&n| !pred_used[n as usize])
        .ok_or(HardenError::NoFreePred)?;
    Ok((shadow, pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    fn program() -> KernelProgram {
        assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            mov.u32 $r2, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.lt.u32.u32 $p0/$o127, $r1, 0x4
            @$p0.ne bra loop
            st.global.u32 [$r2], $r1
            exit
            "#,
        )
        .unwrap()
    }

    #[test]
    fn candidate_filter() {
        let p = program();
        // The movs and the add produce a GPR; set writes pred+discard, the
        // guarded branch, store and exit are all excluded.
        assert_eq!(candidate_pcs(&p), vec![0, 1, 2]);
    }

    #[test]
    fn harden_expands_groups_and_remaps_branches() {
        let p = program();
        let pcs: BTreeSet<usize> = [0, 2].into_iter().collect();
        let h = harden(&p, &pcs).unwrap();
        assert_eq!(h.program.len(), p.len() + 2 * GROUP_OVERHEAD + 1);
        assert_eq!(h.added_static(), 2 * GROUP_OVERHEAD + 1);
        // Group starts: pc 0 -> 0, pc 2 -> 5 (after the first group).
        assert_eq!(h.group_start(0), 0);
        assert_eq!(h.group_start(1), 4);
        assert_eq!(h.group_start(2), 5);
        assert_eq!(h.original_pc(2), 6);
        assert!(h.is_protected(2) && !h.is_protected(1));
        // The loop-back branch must target the group start of the add, so
        // a re-entry recomputes the shadow before the compare.
        let bra = h.program.instr(h.original_pc(4));
        assert_eq!(bra.opcode, Opcode::Bra);
        assert_eq!(bra.target, Some(h.group_start(2)));
        // The appended trap is the detect block and is labelled.
        assert_eq!(h.program.instr(h.detect_pc).opcode, Opcode::Trap);
        assert_eq!(h.program.labels().get(DETECT_LABEL), Some(&h.detect_pc));
        // Inserted guard branches target the trap.
        let guard_bra = h.program.instr(h.group_start(0) + 3);
        assert_eq!(guard_bra.opcode, Opcode::Bra);
        assert_eq!(guard_bra.target, Some(h.detect_pc));
        assert_eq!(
            guard_bra.guard,
            Some(Guard {
                pred: h.compare_pred,
                test: PredTest::Eq
            })
        );
    }

    #[test]
    fn harden_rejects_non_candidates() {
        let p = program();
        let pcs: BTreeSet<usize> = [5].into_iter().collect();
        assert_eq!(
            harden(&p, &pcs).unwrap_err(),
            HardenError::NotACandidate { pc: 5 }
        );
        let pcs: BTreeSet<usize> = [99].into_iter().collect();
        assert_eq!(
            harden(&p, &pcs).unwrap_err(),
            HardenError::PcOutOfRange { pc: 99, len: 7 }
        );
    }

    #[test]
    fn shadow_resources_avoid_used_registers() {
        let p = program();
        let pcs: BTreeSet<usize> = [0].into_iter().collect();
        let h = harden(&p, &pcs).unwrap();
        assert_ne!(h.shadow_gpr, 1, "r1 is live");
        assert_ne!(h.compare_pred, 0, "p0 is live");
    }
}
