//! Fault-free transparency oracle: every shipped kernel, protected at
//! full budget with no fault injected, must produce bit-identical output
//! buffers to the unprotected kernel.
//!
//! This is the differential test that justifies trusting the DMR pass:
//! the inserted shadow/compare/branch groups may only ever change
//! behaviour when a fault actually corrupts a protected destination.

use std::collections::BTreeSet;

use fsp_inject::Experiment;
use fsp_protect::{candidate_pcs, harden, ProtectedTarget};
use fsp_workloads::Scale;

#[test]
fn full_dmr_is_output_transparent_on_every_kernel() {
    let mut checked = 0usize;
    for workload in fsp_workloads::all(Scale::Paper) {
        let program = workload.program();
        let pcs: BTreeSet<usize> = candidate_pcs(program).into_iter().collect();
        assert!(
            !pcs.is_empty(),
            "{}: no DMR candidates at all would make protection vacuous",
            workload.registry_id()
        );
        let hardened = harden(program, &pcs)
            .unwrap_or_else(|e| panic!("{}: harden failed: {e}", workload.registry_id()));

        let baseline = Experiment::prepare(&workload)
            .unwrap_or_else(|e| panic!("{}: fault-free run failed: {e}", workload.registry_id()));
        let protected = ProtectedTarget::new(&workload, hardened.program.clone());
        // prepare() errors if the fault-free run faults, so success here
        // also proves the trap never fires without an injected fault.
        let protected_exp = Experiment::prepare(&protected).unwrap_or_else(|e| {
            panic!(
                "{}: hardened fault-free run failed (trap fired or faulted): {e}",
                workload.registry_id()
            )
        });
        assert_eq!(
            baseline.golden(),
            protected_exp.golden(),
            "{}: hardened output differs from the unprotected golden run",
            workload.registry_id()
        );
        assert!(
            protected_exp.fault_free_instructions() > baseline.fault_free_instructions(),
            "{}: full DMR must add dynamic instructions",
            workload.registry_id()
        );
        checked += 1;
    }
    assert!(checked >= 17, "expected all shipped kernels, got {checked}");
}
