//! The fleet wire protocol: outcome-record codec and checksummed frames.
//!
//! Everything a lease or an outcome submission carries on the wire is
//! framed here, in formats deliberately shared with the persistent outcome
//! store:
//!
//! * [`OutcomeKey`] + [`encode_record`] / [`decode_record`] — the store's
//!   fixed 32-byte record (little-endian fields + 16-bit FNV checksum).
//!   This codec *is* the store's on-disk format; a worker's outcome frame
//!   therefore decodes directly into store inserts, byte for byte.
//! * [`SiteFrame`] — a lease's chunk plan: packed fault sites
//!   ([`fsp_inject::pack_sites`]) hex-armored with an FNV-1a checksum over
//!   the raw bytes.
//! * [`OutcomeFrame`] — a worker's results for one lease: concatenated
//!   32-byte records, hex-armored, FNV-1a checksummed as a frame (each
//!   record additionally carries its own 16-bit checksum).
//!
//! Frames ride inside JSON request/response bodies ([`crate::json`]); hex
//! armor keeps them printable without a base64 dependency.

use fsp_inject::{FaultModel, FaultSite};
use fsp_obs::Fnv1a;
use fsp_stats::Outcome;

use crate::json::Json;

/// Size of one serialized outcome record.
pub const RECORD_LEN: usize = 32;

/// The store key: everything that determines an injection outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutcomeKey {
    /// Kernel program fingerprint ([`fsp_workloads::program_fingerprint`]).
    pub fingerprint: u64,
    /// Launch-configuration hash (`Workload::launch_hash`, mixed with the
    /// classifier and static-analysis versions by the service).
    pub launch: u64,
    /// Fault model wire code ([`FaultModel::code`]).
    pub model: u8,
    /// The injected site.
    pub site: FaultSite,
}

impl OutcomeKey {
    /// Builds a key for one site of a fingerprinted kernel launch.
    #[must_use]
    pub fn new(fingerprint: u64, launch: u64, model: FaultModel, site: FaultSite) -> Self {
        OutcomeKey {
            fingerprint,
            launch,
            model: model.code(),
            site,
        }
    }
}

/// Encodes one outcome record in the store's fixed 32-byte layout.
#[must_use]
pub fn encode_record(key: &OutcomeKey, outcome: Outcome) -> [u8; RECORD_LEN] {
    let mut buf = [0u8; RECORD_LEN];
    buf[0..8].copy_from_slice(&key.fingerprint.to_le_bytes());
    buf[8..16].copy_from_slice(&key.launch.to_le_bytes());
    buf[16..20].copy_from_slice(&key.site.tid.to_le_bytes());
    buf[20..24].copy_from_slice(&key.site.dyn_idx.to_le_bytes());
    buf[24..28].copy_from_slice(&key.site.bit.to_le_bytes());
    buf[28] = key.model;
    buf[29] = outcome.code();
    let mut h = Fnv1a::new();
    h.write(&buf[..30]);
    buf[30..32].copy_from_slice(&(h.finish() as u16).to_le_bytes());
    buf
}

/// Decodes one 32-byte outcome record; `None` on short input, a checksum
/// mismatch or an unknown outcome code.
#[must_use]
pub fn decode_record(buf: &[u8]) -> Option<(OutcomeKey, Outcome)> {
    if buf.len() < RECORD_LEN {
        return None;
    }
    let mut h = Fnv1a::new();
    h.write(&buf[..30]);
    if (h.finish() as u16).to_le_bytes() != [buf[30], buf[31]] {
        return None;
    }
    let word = |r: std::ops::Range<usize>| u32::from_le_bytes(buf[r].try_into().expect("4 bytes"));
    let outcome = Outcome::from_code(buf[29])?;
    Some((
        OutcomeKey {
            fingerprint: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
            launch: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            model: buf[28],
            site: FaultSite {
                tid: word(16..20),
                dyn_idx: word(20..24),
                bit: word(24..28),
            },
        },
        outcome,
    ))
}

/// Hex-armors raw frame bytes.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble"));
    }
    out
}

/// Decodes hex armor; `None` on odd length or a non-hex digit.
#[must_use]
pub fn from_hex(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = text
        .chars()
        .map(|c| c.to_digit(16))
        .collect::<Option<_>>()?;
    Some(
        digits
            .chunks_exact(2)
            .map(|d| (d[0] << 4 | d[1]) as u8)
            .collect(),
    )
}

/// FNV-1a over a whole frame's raw bytes (the frame-level checksum).
#[must_use]
pub fn frame_fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// A chunk plan on the wire: the lease's fault sites, packed and
/// checksummed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteFrame {
    /// The sites, in chunk order.
    pub sites: Vec<FaultSite>,
}

impl SiteFrame {
    /// Encodes the frame as JSON fields (`sites` hex + `fnv` checksum).
    #[must_use]
    pub fn to_fields(&self) -> Vec<(String, Json)> {
        let packed = fsp_inject::pack_sites(&self.sites);
        vec![
            ("sites".to_owned(), Json::Str(to_hex(&packed))),
            ("fnv".to_owned(), Json::Str(frame_fnv(&packed).to_string())),
        ]
    }

    /// Decodes the frame from a JSON object carrying `sites` + `fnv`.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields, bad hex, a checksum mismatch
    /// or torn site packing.
    pub fn from_json(value: &Json) -> Result<SiteFrame, String> {
        let hex = value
            .get("sites")
            .and_then(Json::as_str)
            .ok_or("frame missing `sites`")?;
        let fnv = value
            .get("fnv")
            .and_then(Json::as_u64)
            .ok_or("frame missing `fnv`")?;
        let packed = from_hex(hex).ok_or("`sites` is not valid hex")?;
        if frame_fnv(&packed) != fnv {
            return Err("site frame checksum mismatch".to_owned());
        }
        let sites = fsp_inject::unpack_sites(&packed).ok_or("torn site frame")?;
        Ok(SiteFrame { sites })
    }
}

/// A worker's outcome submission for one lease: every record keyed exactly
/// as the coordinator's outcome store will persist it.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeFrame {
    /// The submitting worker's name (metrics attribution).
    pub worker: String,
    /// The decoded records.
    pub records: Vec<(OutcomeKey, Outcome)>,
}

impl OutcomeFrame {
    /// Encodes the frame as a JSON body for `POST /leases/:id/outcomes`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut raw = Vec::with_capacity(self.records.len() * RECORD_LEN);
        for (key, outcome) in &self.records {
            raw.extend_from_slice(&encode_record(key, *outcome));
        }
        Json::obj([
            ("worker", Json::Str(self.worker.clone())),
            ("records", Json::Str(to_hex(&raw))),
            ("fnv", Json::Str(frame_fnv(&raw).to_string())),
        ])
    }

    /// Decodes and verifies a submission body: frame checksum first, then
    /// every record's own checksum.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields, bad hex, either checksum
    /// failing, or a record count that does not divide into 32-byte
    /// records.
    pub fn from_json(value: &Json) -> Result<OutcomeFrame, String> {
        let worker = value
            .get("worker")
            .and_then(Json::as_str)
            .ok_or("frame missing `worker`")?
            .to_owned();
        let hex = value
            .get("records")
            .and_then(Json::as_str)
            .ok_or("frame missing `records`")?;
        let fnv = value
            .get("fnv")
            .and_then(Json::as_u64)
            .ok_or("frame missing `fnv`")?;
        let raw = from_hex(hex).ok_or("`records` is not valid hex")?;
        if frame_fnv(&raw) != fnv {
            return Err("outcome frame checksum mismatch".to_owned());
        }
        if raw.len() % RECORD_LEN != 0 {
            return Err("outcome frame is not whole records".to_owned());
        }
        let records = raw
            .chunks_exact(RECORD_LEN)
            .map(|chunk| decode_record(chunk).ok_or("corrupt record in outcome frame"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(OutcomeFrame { worker, records })
    }
}

/// Upper bound on spans per [`TraceFrame`]: keeps the JSON body of a
/// submission (outcome records + trace) under the coordinator's request
/// size limit. Excess spans are dropped newest-first, preserving the
/// structural lease/campaign spans that open earliest.
pub const MAX_FRAME_SPANS: usize = 4096;

/// One traced span (or instant) shipped by a worker.
///
/// `rel_ns` is the span's start on the *worker's* clock, relative to the
/// moment the worker received the lease grant — the only instant both
/// sides can name. The coordinator rebases it onto its own timeline as
/// `grant_ns + rel_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEntry {
    /// Worker-local thread lane.
    pub tid: u32,
    /// Stack depth at open.
    pub depth: u32,
    /// Span name.
    pub name: String,
    /// Optional dynamic label.
    pub label: Option<String>,
    /// Start relative to grant receipt (may be negative: spans drained
    /// from a previous lease).
    pub rel_ns: i64,
    /// Duration (zero for instants).
    pub dur_ns: u64,
    /// Whether this is an instant event rather than a span.
    pub instant: bool,
}

/// A worker's span submission, riding piggyback on an [`OutcomeFrame`]
/// body. The coordinator-clock `grant_ns` from the lease grant is echoed
/// back so the coordinator can rebase statelessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFrame {
    /// Coordinator-clock nanoseconds at grant time (echoed from the
    /// grant).
    pub grant_ns: u64,
    /// The worker's drained spans, start-relative to grant receipt.
    pub spans: Vec<SpanEntry>,
}

impl TraceFrame {
    /// Encodes the frame as JSON fields to splice into an outcome
    /// submission body.
    #[must_use]
    pub fn to_fields(&self) -> Vec<(String, Json)> {
        let spans = self
            .spans
            .iter()
            .take(MAX_FRAME_SPANS)
            .map(|s| {
                let mut fields = vec![
                    ("tid".to_owned(), Json::u64(u64::from(s.tid))),
                    ("depth".to_owned(), Json::u64(u64::from(s.depth))),
                    ("name".to_owned(), Json::Str(s.name.clone())),
                    ("rel_ns".to_owned(), Json::Str(s.rel_ns.to_string())),
                    ("dur_ns".to_owned(), Json::u64(s.dur_ns)),
                    ("instant".to_owned(), Json::Bool(s.instant)),
                ];
                if let Some(label) = &s.label {
                    fields.push(("label".to_owned(), Json::Str(label.clone())));
                }
                Json::Obj(fields)
            })
            .collect();
        vec![
            ("trace_grant_ns".to_owned(), Json::u64(self.grant_ns)),
            ("trace_spans".to_owned(), Json::Arr(spans)),
        ]
    }

    /// Decodes the trace fields from a submission body; `Ok(None)` when
    /// the body carries no trace (an untraced worker).
    ///
    /// # Errors
    ///
    /// Returns a message when trace fields are present but malformed.
    pub fn from_json(value: &Json) -> Result<Option<TraceFrame>, String> {
        let Some(grant_ns) = value.get("trace_grant_ns").and_then(Json::as_u64) else {
            return Ok(None);
        };
        let spans = value
            .get("trace_spans")
            .and_then(Json::as_arr)
            .ok_or("trace frame missing `trace_spans`")?;
        let spans = spans
            .iter()
            .map(|s| {
                let num = |field: &str| {
                    s.get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("trace span missing `{field}`"))
                };
                Ok(SpanEntry {
                    tid: u32::try_from(num("tid")?).map_err(|_| "trace span tid overflow")?,
                    depth: u32::try_from(num("depth")?).map_err(|_| "trace span depth overflow")?,
                    name: s
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("trace span missing `name`")?
                        .to_owned(),
                    label: s.get("label").and_then(Json::as_str).map(str::to_owned),
                    rel_ns: s
                        .get("rel_ns")
                        .and_then(Json::as_str)
                        .and_then(|t| t.parse().ok())
                        .ok_or("trace span missing `rel_ns`")?,
                    dur_ns: num("dur_ns")?,
                    instant: s.get("instant").and_then(Json::as_bool).unwrap_or(false),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Some(TraceFrame { grant_ns, spans }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bit: u32) -> OutcomeKey {
        OutcomeKey::new(
            0xDEAD_BEEF_0102_0304,
            0x0505_0606_0707_0808,
            FaultModel::SingleBitFlip,
            FaultSite {
                tid: 7,
                dyn_idx: 21,
                bit,
            },
        )
    }

    #[test]
    fn record_codec_round_trips() {
        let rec = encode_record(&key(3), Outcome::Sdc);
        assert_eq!(decode_record(&rec), Some((key(3), Outcome::Sdc)));
        // A single flipped byte fails the checksum.
        let mut bad = rec;
        bad[5] ^= 0x40;
        assert_eq!(decode_record(&bad), None);
        assert_eq!(decode_record(&rec[..31]), None);
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("0g"), None);
        assert_eq!(from_hex("012"), None);
    }

    #[test]
    fn site_frame_round_trips_and_rejects_corruption() {
        let frame = SiteFrame {
            sites: (0..5)
                .map(|i| FaultSite {
                    tid: i,
                    dyn_idx: i * 3,
                    bit: 31 - i,
                })
                .collect(),
        };
        let json = Json::Obj(frame.to_fields());
        assert_eq!(SiteFrame::from_json(&json).unwrap(), frame);

        // Flip one nibble of the payload: the frame checksum must catch it.
        let Json::Obj(mut pairs) = json else {
            unreachable!()
        };
        if let Json::Str(hex) = &mut pairs[0].1 {
            let mut chars: Vec<char> = hex.chars().collect();
            chars[4] = if chars[4] == '0' { '1' } else { '0' };
            *hex = chars.into_iter().collect();
        }
        assert!(SiteFrame::from_json(&Json::Obj(pairs)).is_err());
    }

    #[test]
    fn outcome_frame_round_trips_and_rejects_corruption() {
        let frame = OutcomeFrame {
            worker: "w1".to_owned(),
            records: vec![(key(0), Outcome::Masked), (key(1), Outcome::HANG)],
        };
        let text = frame.to_json().to_string();
        let back = OutcomeFrame::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, frame);

        // Tamper with the checksum field: rejected before record decode.
        let tampered = text.replace("\"fnv\":\"", "\"fnv\":\"9");
        assert!(OutcomeFrame::from_json(&Json::parse(&tampered).unwrap()).is_err());
    }

    #[test]
    fn trace_frame_round_trips_and_is_optional() {
        let frame = TraceFrame {
            grant_ns: 123_456_789_000,
            spans: vec![
                SpanEntry {
                    tid: 1,
                    depth: 0,
                    name: "worker.lease".to_owned(),
                    label: Some("lease-0".to_owned()),
                    rel_ns: -250,
                    dur_ns: 9_000,
                    instant: false,
                },
                SpanEntry {
                    tid: 1,
                    depth: 1,
                    name: "worker.heartbeat".to_owned(),
                    label: None,
                    rel_ns: 40,
                    dur_ns: 0,
                    instant: true,
                },
            ],
        };
        let body = Json::Obj(frame.to_fields()).to_string();
        let back = TraceFrame::from_json(&Json::parse(&body).unwrap())
            .unwrap()
            .expect("trace fields present");
        assert_eq!(back, frame);

        // An outcome body without trace fields is simply untraced.
        let plain = OutcomeFrame {
            worker: "w1".to_owned(),
            records: vec![(key(0), Outcome::Masked)],
        }
        .to_json();
        assert_eq!(TraceFrame::from_json(&plain).unwrap(), None);
    }
}
