//! Capped exponential backoff with deterministic jitter.
//!
//! Shared by the worker runtime (transient coordinator errors, empty lease
//! polls) and the service client's `wait` polling. The jitter source is a
//! tiny xorshift stream seeded per [`Backoff`], so delay schedules are
//! reproducible for a given seed yet decorrelated across workers.

use std::time::Duration;

/// A capped exponential backoff schedule with multiplicative jitter.
///
/// Delays grow `base * 2^attempt`, saturating at `cap`, then each delay is
/// scaled by a jitter factor drawn uniformly from `[0.5, 1.0)` so that
/// independent retriers do not synchronize.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Creates a schedule from `base` (first delay) to `cap` (largest
    /// pre-jitter delay), jittered from `seed`.
    #[must_use]
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            // Xorshift must not start at 0; fold in a constant.
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The schedule used for coordinator polling: 50ms doubling to 2s.
    #[must_use]
    pub fn poll(seed: u64) -> Self {
        Backoff::new(Duration::from_millis(50), Duration::from_secs(2), seed)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Returns the next delay and advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .max(Duration::from_millis(1));
        // Jitter factor in [0.5, 1.0): keep at least half the nominal delay
        // so the cap still bounds the worst-case polling rate.
        let jitter = 0.5 + (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        raw.mul_f64(jitter)
    }

    /// Resets the schedule after a success, keeping the jitter stream.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Sleeps for the next delay.
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 42);
        let delays: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        // Every delay respects the jittered envelope [raw/2, raw).
        let mut raw = Duration::from_millis(10);
        for d in &delays {
            let expect = raw.min(Duration::from_millis(500));
            assert!(*d >= expect.div_f64(2.0), "{d:?} below half of {expect:?}");
            assert!(*d <= expect, "{d:?} above {expect:?}");
            raw = raw.saturating_mul(2);
        }
        // Late delays saturate near the cap, not at the base.
        assert!(delays[11] >= Duration::from_millis(250));
    }

    #[test]
    fn reset_restarts_the_envelope() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 7);
        for _ in 0..8 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay() <= Duration::from_millis(10));
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::poll(3);
        let mut b = Backoff::poll(3);
        let da: Vec<Duration> = (0..6).map(|_| a.next_delay()).collect();
        let db: Vec<Duration> = (0..6).map(|_| b.next_delay()).collect();
        assert_eq!(da, db);
        let mut c = Backoff::poll(4);
        let dc: Vec<Duration> = (0..6).map(|_| c.next_delay()).collect();
        assert_ne!(da, dc, "different seeds decorrelate");
    }
}
