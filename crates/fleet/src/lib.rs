//! Distributed campaign execution: leased work-stealing over the
//! deterministic injection engine.
//!
//! Injection campaigns are embarrassingly parallel across fault sites,
//! and each outcome is a pure function of (kernel program, launch
//! configuration, fault model, fault site). This crate turns that into a
//! horizontal-scaling layer: a **coordinator** (embedded in `fsp-serve`)
//! shards a campaign's deterministic site plan into chunk **leases**, and
//! any number of `fsp worker` processes pull leases over HTTP, execute
//! them with the checkpoint-resume fast path and stream checksummed
//! outcome frames back.
//!
//! Fault tolerance is protocol-level, not state-level:
//!
//! - leases carry deadlines renewed by heartbeat; an expired lease is
//!   re-served to whichever worker asks next (work stealing);
//! - outcome frames are keyed exactly like the persistent store's 32-byte
//!   records, and the store's idempotent insert collapses the duplicate
//!   deliveries an at-least-once protocol produces;
//! - determinism of the simulator means rival submissions for a stolen
//!   lease agree bit-for-bit, so the final profile is byte-identical to a
//!   local run at any worker count and any kill schedule.
//!
//! Layers, bottom up:
//!
//! - [`json`] — the dependency-free JSON layer (bit-exact `f64` round
//!   trip), re-exported by `fsp-serve`.
//! - [`wire`] — the outcome-record codec shared with the store, plus
//!   FNV-checksummed site and outcome frames.
//! - [`retry`] — capped exponential backoff with jitter, shared by the
//!   worker runtime and the service client.
//! - [`lease`] — the coordinator's lease table: publish, acquire,
//!   heartbeat, complete, requeue.
//! - [`worker`] — the `fsp worker` runtime: lease loop, heartbeat
//!   thread, campaign execution, outcome submission.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_sign_loss)]
#![allow(clippy::missing_panics_doc)]

pub mod json;
pub mod lease;
pub mod retry;
pub mod wire;
pub mod worker;

pub use json::Json;
pub use lease::{
    Acquired, ChunkSpec, FleetConfig, Grant, HeartbeatError, LeaseMeta, LeaseTable, Submission,
    WorkerStats,
};
pub use retry::Backoff;
pub use wire::{decode_record, encode_record, OutcomeFrame, OutcomeKey, SiteFrame, RECORD_LEN};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};
