//! The coordinator's lease table: chunked campaign plans leased to
//! workers under deadlines, with automatic requeue (work stealing).
//!
//! The table is deliberately in-memory only. Durability lives one layer
//! down in the outcome store: every accepted outcome frame is persisted
//! before the lease is marked done, so a coordinator crash loses only
//! lease bookkeeping — on reopen the job replans, resolves persisted
//! outcomes as cache hits and republishes the remainder.
//!
//! Lifecycle of a chunk:
//!
//! ```text
//! publish → Available → acquire → Leased(worker, deadline) → complete → Done
//!                ^                       |
//!                +—— deadline expired ———+   (lazy requeue inside acquire)
//! ```
//!
//! Completion is accepted from *any* worker holding the chunk's outcomes —
//! including a worker whose lease has already expired and been re-leased
//! to someone else. The simulator is deterministic, so rival submissions
//! carry identical outcomes and whichever lands first wins; the loser is
//! counted as a duplicate and dropped without effect.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use fsp_inject::{FaultModel, FaultSite};
use fsp_stats::Outcome;

use crate::json::Json;
use crate::wire::SiteFrame;

/// Tuning knobs for the coordinator's lease layer.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// How long a lease lives without a heartbeat before it may be stolen.
    pub lease_ttl: Duration,
    /// Fault sites per chunk (the work-stealing granularity).
    pub chunk_sites: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            lease_ttl: Duration::from_secs(30),
            chunk_sites: 64,
        }
    }
}

/// One chunk of a campaign plan, submitted to the table by the engine.
#[derive(Debug, Clone)]
pub struct ChunkSpec {
    /// Owning job id.
    pub job: String,
    /// Position of this chunk within the job's plan.
    pub chunk_idx: usize,
    /// Kernel id (workers re-derive the experiment from it).
    pub kernel: String,
    /// Fault model of the campaign.
    pub model: FaultModel,
    /// Kernel program fingerprint, echoed into every outcome record.
    pub fingerprint: u64,
    /// Keyed launch hash, echoed into every outcome record.
    pub launch: u64,
    /// The chunk's fault sites, in plan order.
    pub sites: Vec<FaultSite>,
}

/// A granted lease, as handed to a worker.
#[derive(Debug, Clone)]
pub struct Grant {
    /// Lease id (`lease-<n>`), the handle for heartbeat and submission.
    pub lease: String,
    /// Kernel id to execute.
    pub kernel: String,
    /// Fault model to inject.
    pub model: FaultModel,
    /// Expected kernel fingerprint (worker-side binary-skew check).
    pub fingerprint: u64,
    /// Keyed launch hash to copy into outcome records (opaque to workers).
    pub launch: u64,
    /// Time until the lease may be stolen unless renewed.
    pub ttl: Duration,
    /// Whether the coordinator is tracing: the worker should enable its
    /// own tracer and ship a span frame with the outcomes.
    pub trace: bool,
    /// Coordinator-clock nanoseconds at grant time. Workers echo it in
    /// their trace frame; the coordinator rebases worker-relative span
    /// times onto its own timeline with it, so no cross-process clock
    /// state is kept between requests.
    pub grant_ns: u64,
    /// The sites to inject.
    pub sites: Vec<FaultSite>,
}

impl Grant {
    /// Encodes the grant as a `POST /leases` response body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("lease".to_owned(), Json::Str(self.lease.clone())),
            ("kernel".to_owned(), Json::Str(self.kernel.clone())),
            ("model".to_owned(), Json::Str(self.model.name().to_owned())),
            (
                "fingerprint".to_owned(),
                Json::Str(self.fingerprint.to_string()),
            ),
            ("launch".to_owned(), Json::Str(self.launch.to_string())),
            (
                "ttl_ms".to_owned(),
                Json::Num(u64::try_from(self.ttl.as_millis()).unwrap_or(u64::MAX) as f64),
            ),
            ("trace".to_owned(), Json::Bool(self.trace)),
            ("grant_ns".to_owned(), Json::u64(self.grant_ns)),
        ];
        fields.extend(
            SiteFrame {
                sites: self.sites.clone(),
            }
            .to_fields(),
        );
        Json::Obj(fields)
    }

    /// Decodes a grant from a `POST /leases` response body.
    ///
    /// # Errors
    ///
    /// Returns a message on missing fields, an unknown model name or a
    /// corrupt site frame.
    pub fn from_json(value: &Json) -> Result<Grant, String> {
        let text = |field: &str| {
            value
                .get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("grant missing `{field}`"))
        };
        let model = FaultModel::from_name(text("model")?)
            .ok_or_else(|| "grant carries unknown fault model".to_owned())?;
        let frame = SiteFrame::from_json(value)?;
        Ok(Grant {
            lease: text("lease")?.to_owned(),
            kernel: text("kernel")?.to_owned(),
            model,
            fingerprint: value
                .get("fingerprint")
                .and_then(Json::as_u64)
                .ok_or("grant missing `fingerprint`")?,
            launch: value
                .get("launch")
                .and_then(Json::as_u64)
                .ok_or("grant missing `launch`")?,
            ttl: Duration::from_millis(
                value
                    .get("ttl_ms")
                    .and_then(Json::as_u64)
                    .ok_or("grant missing `ttl_ms`")?,
            ),
            // Optional for wire compatibility with pre-tracing grants.
            trace: value.get("trace").and_then(Json::as_bool).unwrap_or(false),
            grant_ns: value.get("grant_ns").and_then(Json::as_u64).unwrap_or(0),
            sites: frame.sites,
        })
    }
}

/// The validation envelope of a lease: every record a worker submits for
/// it must carry exactly these key fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseMeta {
    /// Owning job id.
    pub job: String,
    /// Expected kernel fingerprint.
    pub fingerprint: u64,
    /// Expected keyed launch hash.
    pub launch: u64,
    /// Expected fault model.
    pub model: FaultModel,
}

/// Outcome of a lease acquisition attempt.
#[derive(Debug, Clone)]
pub struct Acquired {
    /// The granted lease, if any chunk was available.
    pub grant: Option<Grant>,
    /// Chunks still outstanding (available + leased) after this grant —
    /// lets an idle worker distinguish "drained" from "all leased out".
    pub pending: usize,
}

/// Why a heartbeat was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatError {
    /// No such lease (completed and collected, retracted, or never issued).
    Unknown,
    /// The lease expired and was re-leased to another worker.
    NotHolder,
}

/// Disposition of an outcome submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// First complete delivery; the chunk is now done.
    Accepted,
    /// The chunk was already done (at-least-once delivery collapsing).
    Duplicate,
    /// No such lease.
    Unknown,
    /// The frame does not cover every site of the lease.
    Incomplete,
}

#[derive(Debug)]
enum ChunkState {
    Available,
    Leased { worker: String, deadline: Instant },
    Done { delivered: bool },
}

#[derive(Debug)]
struct Chunk {
    spec: ChunkSpec,
    state: ChunkState,
    outcomes: BTreeMap<FaultSite, Outcome>,
}

/// Per-worker counters, surfaced through `/metrics` and `GET /fleet`.
#[derive(Debug, Default, Clone)]
pub struct WorkerStats {
    /// Leases granted to this worker.
    pub leases: u64,
    /// Heartbeat renewals received.
    pub heartbeats: u64,
    /// Chunks this worker delivered first.
    pub chunks: u64,
    /// Sites in those chunks (the throughput counter).
    pub sites: u64,
}

#[derive(Debug, Default)]
struct Inner {
    chunks: BTreeMap<u64, Chunk>,
    next_id: u64,
    workers: BTreeMap<String, WorkerStats>,
    requeues: u64,
    duplicates: u64,
}

/// The lease table. One per engine; shared by the HTTP layer and the
/// per-job supervisors.
#[derive(Debug)]
pub struct LeaseTable {
    config: FleetConfig,
    inner: Mutex<Inner>,
    progress: Condvar,
}

fn parse_lease_id(lease: &str) -> Option<u64> {
    lease.strip_prefix("lease-")?.parse().ok()
}

impl LeaseTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        LeaseTable {
            config,
            inner: Mutex::new(Inner::default()),
            progress: Condvar::new(),
        }
    }

    /// The table's tuning knobs.
    #[must_use]
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Publishes chunks, making them available to any worker.
    pub fn publish(&self, specs: Vec<ChunkSpec>) {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        for spec in specs {
            let id = inner.next_id;
            inner.next_id += 1;
            inner.chunks.insert(
                id,
                Chunk {
                    spec,
                    state: ChunkState::Available,
                    outcomes: BTreeMap::new(),
                },
            );
        }
        drop(inner);
        self.progress.notify_all();
    }

    /// Removes every chunk of a job (cancellation / shutdown). Returns how
    /// many chunks were dropped.
    pub fn retract_job(&self, job: &str) -> usize {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let before = inner.chunks.len();
        inner.chunks.retain(|_, c| c.spec.job != job);
        before - inner.chunks.len()
    }

    /// Requeues leases whose deadline has passed. Internal; called with the
    /// lock held from `acquire`.
    fn requeue_expired(inner: &mut Inner, now: Instant) {
        for chunk in inner.chunks.values_mut() {
            if let ChunkState::Leased { deadline, .. } = &chunk.state {
                if *deadline <= now {
                    chunk.state = ChunkState::Available;
                    inner.requeues += 1;
                }
            }
        }
    }

    /// Grants the lowest-numbered available chunk to `worker`, requeuing
    /// expired leases first (this is where work stealing happens).
    pub fn acquire(&self, worker: &str) -> Acquired {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("lease table poisoned");
        Self::requeue_expired(&mut inner, now);
        let ttl = self.config.lease_ttl;
        let mut grant = None;
        for (id, chunk) in &mut inner.chunks {
            if matches!(chunk.state, ChunkState::Available) {
                chunk.state = ChunkState::Leased {
                    worker: worker.to_owned(),
                    deadline: now + ttl,
                };
                grant = Some(Grant {
                    lease: format!("lease-{id}"),
                    kernel: chunk.spec.kernel.clone(),
                    model: chunk.spec.model,
                    fingerprint: chunk.spec.fingerprint,
                    launch: chunk.spec.launch,
                    ttl,
                    trace: fsp_obs::tracing_enabled(),
                    grant_ns: fsp_obs::now_ns(),
                    sites: chunk.spec.sites.clone(),
                });
                break;
            }
        }
        if grant.is_some() {
            inner.workers.entry(worker.to_owned()).or_default().leases += 1;
        }
        let pending = inner
            .chunks
            .values()
            .filter(|c| !matches!(c.state, ChunkState::Done { .. }))
            .count();
        Acquired { grant, pending }
    }

    /// Renews a lease's deadline. A lease past its deadline but not yet
    /// stolen renews successfully (the work is still exclusively held).
    ///
    /// # Errors
    ///
    /// [`HeartbeatError::Unknown`] if the lease no longer exists,
    /// [`HeartbeatError::NotHolder`] if it was stolen by another worker —
    /// the renewing worker should abandon the chunk.
    pub fn heartbeat(&self, lease: &str, worker: &str) -> Result<Duration, HeartbeatError> {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let id = parse_lease_id(lease).ok_or(HeartbeatError::Unknown)?;
        let ttl = self.config.lease_ttl;
        let chunk = inner.chunks.get_mut(&id).ok_or(HeartbeatError::Unknown)?;
        match &mut chunk.state {
            ChunkState::Leased {
                worker: holder,
                deadline,
            } if holder == worker => {
                *deadline = Instant::now() + ttl;
                inner
                    .workers
                    .entry(worker.to_owned())
                    .or_default()
                    .heartbeats += 1;
                Ok(ttl)
            }
            ChunkState::Leased { .. } => Err(HeartbeatError::NotHolder),
            // Expired and requeued but not re-leased: let the original
            // holder take it back rather than redo the work.
            ChunkState::Available => {
                chunk.state = ChunkState::Leased {
                    worker: worker.to_owned(),
                    deadline: Instant::now() + ttl,
                };
                inner
                    .workers
                    .entry(worker.to_owned())
                    .or_default()
                    .heartbeats += 1;
                Ok(ttl)
            }
            ChunkState::Done { .. } => Err(HeartbeatError::Unknown),
        }
    }

    /// The key fields a submission for `lease` must match, or `None` if
    /// the lease no longer exists. Coordinators validate frames against
    /// this before persisting anything.
    #[must_use]
    pub fn meta(&self, lease: &str) -> Option<LeaseMeta> {
        let inner = self.inner.lock().expect("lease table poisoned");
        let chunk = inner.chunks.get(&parse_lease_id(lease)?)?;
        Some(LeaseMeta {
            job: chunk.spec.job.clone(),
            fingerprint: chunk.spec.fingerprint,
            launch: chunk.spec.launch,
            model: chunk.spec.model,
        })
    }

    /// Records a worker's outcomes for a lease. Accepted from any worker —
    /// lease expiry races are resolved by first-complete-wins; the
    /// deterministic simulator guarantees rivals agree.
    pub fn complete(
        &self,
        lease: &str,
        worker: &str,
        outcomes: &BTreeMap<FaultSite, Outcome>,
    ) -> Submission {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let Some(id) = parse_lease_id(lease) else {
            return Submission::Unknown;
        };
        let Some(chunk) = inner.chunks.get_mut(&id) else {
            return Submission::Unknown;
        };
        if matches!(chunk.state, ChunkState::Done { .. }) {
            inner.duplicates += 1;
            return Submission::Duplicate;
        }
        if !chunk.spec.sites.iter().all(|s| outcomes.contains_key(s)) {
            return Submission::Incomplete;
        }
        chunk.outcomes = chunk.spec.sites.iter().map(|s| (*s, outcomes[s])).collect();
        chunk.state = ChunkState::Done { delivered: false };
        let sites = chunk.spec.sites.len() as u64;
        let stats = inner.workers.entry(worker.to_owned()).or_default();
        stats.chunks += 1;
        stats.sites += sites;
        drop(inner);
        self.progress.notify_all();
        Submission::Accepted
    }

    /// Collects newly-completed chunks of a job (each chunk is delivered
    /// exactly once) as `(chunk_idx, site → outcome)` pairs.
    pub fn take_completed(&self, job: &str) -> Vec<(usize, BTreeMap<FaultSite, Outcome>)> {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let mut out = Vec::new();
        for chunk in inner.chunks.values_mut() {
            if chunk.spec.job == job {
                if let ChunkState::Done { delivered } = &mut chunk.state {
                    if !*delivered {
                        *delivered = true;
                        out.push((chunk.spec.chunk_idx, std::mem::take(&mut chunk.outcomes)));
                    }
                }
            }
        }
        out
    }

    /// Drops a job's delivered chunks once the supervisor has consumed
    /// them, bounding table growth.
    pub fn prune_delivered(&self, job: &str) {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        inner.chunks.retain(|_, c| {
            c.spec.job != job || !matches!(c.state, ChunkState::Done { delivered: true })
        });
    }

    /// Blocks until some chunk completes or `timeout` passes.
    pub fn wait_progress(&self, timeout: Duration) {
        let inner = self.inner.lock().expect("lease table poisoned");
        let _unused = self
            .progress
            .wait_timeout(inner, timeout)
            .expect("lease table poisoned");
    }

    /// Total lease requeues (expired leases returned to the pool).
    #[must_use]
    pub fn requeues(&self) -> u64 {
        self.inner.lock().expect("lease table poisoned").requeues
    }

    /// Total duplicate outcome submissions dropped.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.inner.lock().expect("lease table poisoned").duplicates
    }

    /// Snapshot of per-worker counters.
    #[must_use]
    pub fn worker_stats(&self) -> BTreeMap<String, WorkerStats> {
        self.inner
            .lock()
            .expect("lease table poisoned")
            .workers
            .clone()
    }

    /// A `GET /fleet` status document: chunk counts by state plus
    /// per-worker counters.
    #[must_use]
    pub fn status_json(&self) -> Json {
        let inner = self.inner.lock().expect("lease table poisoned");
        let mut available = 0u64;
        let mut leased = 0u64;
        let mut done = 0u64;
        for chunk in inner.chunks.values() {
            match chunk.state {
                ChunkState::Available => available += 1,
                ChunkState::Leased { .. } => leased += 1,
                ChunkState::Done { .. } => done += 1,
            }
        }
        let workers: Vec<Json> = inner
            .workers
            .iter()
            .map(|(name, s)| {
                Json::obj([
                    ("name", Json::Str(name.clone())),
                    ("leases", Json::Num(s.leases as f64)),
                    ("heartbeats", Json::Num(s.heartbeats as f64)),
                    ("chunks", Json::Num(s.chunks as f64)),
                    ("sites", Json::Num(s.sites as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("chunks_available", Json::Num(available as f64)),
            ("chunks_leased", Json::Num(leased as f64)),
            ("chunks_done", Json::Num(done as f64)),
            ("requeues", Json::Num(inner.requeues as f64)),
            ("duplicates", Json::Num(inner.duplicates as f64)),
            ("workers", Json::Arr(workers)),
        ])
    }

    /// Appends the fleet's Prometheus metrics to `out`.
    pub fn render_metrics(&self, out: &mut String) {
        use std::fmt::Write as _;
        let inner = self.inner.lock().expect("lease table poisoned");
        let pending = inner
            .chunks
            .values()
            .filter(|c| !matches!(c.state, ChunkState::Done { .. }))
            .count();
        let _ = writeln!(out, "# TYPE fsp_fleet_chunks_pending gauge");
        let _ = writeln!(out, "fsp_fleet_chunks_pending {pending}");
        let _ = writeln!(out, "# TYPE fsp_fleet_lease_requeues_total counter");
        let _ = writeln!(out, "fsp_fleet_lease_requeues_total {}", inner.requeues);
        let _ = writeln!(out, "# TYPE fsp_fleet_duplicate_submissions_total counter");
        let _ = writeln!(
            out,
            "fsp_fleet_duplicate_submissions_total {}",
            inner.duplicates
        );
        for (metric, help) in [
            ("leases_granted", "leases granted"),
            ("heartbeats", "heartbeat renewals"),
            ("chunks_completed", "chunks delivered first"),
            ("sites_completed", "fault sites executed (throughput)"),
        ] {
            let _ = writeln!(out, "# TYPE fsp_fleet_{metric}_total counter");
            for (name, s) in &inner.workers {
                let value = match metric {
                    "leases_granted" => s.leases,
                    "heartbeats" => s.heartbeats,
                    "chunks_completed" => s.chunks,
                    _ => s.sites,
                };
                let _ = writeln!(
                    out,
                    "fsp_fleet_{metric}_total{{worker=\"{name}\"}} {value} # {help}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(job: &str, chunk_idx: usize, first_bit: u32, n: u32) -> ChunkSpec {
        ChunkSpec {
            job: job.to_owned(),
            chunk_idx,
            kernel: "saxpy".to_owned(),
            model: FaultModel::SingleBitFlip,
            fingerprint: 0xF1,
            launch: 0x1A,
            sites: (0..n)
                .map(|i| FaultSite {
                    tid: 0,
                    dyn_idx: 0,
                    bit: first_bit + i,
                })
                .collect(),
        }
    }

    fn outcomes_for(grant: &Grant) -> BTreeMap<FaultSite, Outcome> {
        grant.sites.iter().map(|s| (*s, Outcome::Masked)).collect()
    }

    fn table(ttl_ms: u64) -> LeaseTable {
        LeaseTable::new(FleetConfig {
            lease_ttl: Duration::from_millis(ttl_ms),
            chunk_sites: 4,
        })
    }

    #[test]
    fn grant_complete_collect() {
        let t = table(10_000);
        t.publish(vec![spec("job-1", 0, 0, 3), spec("job-1", 1, 3, 3)]);
        let a = t.acquire("w1");
        let g = a.grant.expect("chunk available");
        assert_eq!(a.pending, 2);
        assert_eq!(g.sites.len(), 3);
        assert_eq!(t.heartbeat(&g.lease, "w1"), Ok(Duration::from_secs(10)));
        assert_eq!(
            t.complete(&g.lease, "w1", &outcomes_for(&g)),
            Submission::Accepted
        );
        let done = t.take_completed("job-1");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 0);
        assert_eq!(done[0].1.len(), 3);
        assert!(t.take_completed("job-1").is_empty(), "delivered once");
        // Second chunk still pending (now leased to w2).
        assert_eq!(t.acquire("w2").pending, 1);
    }

    #[test]
    fn expired_lease_is_stolen_and_duplicate_dropped() {
        let t = table(1);
        t.publish(vec![spec("job-1", 0, 0, 2)]);
        let g1 = t.acquire("w1").grant.expect("granted");
        std::thread::sleep(Duration::from_millis(5));
        // w2 steals the expired lease.
        let g2 = t.acquire("w2").grant.expect("stolen");
        assert_eq!(g1.lease, g2.lease);
        assert_eq!(t.requeues(), 1);
        // The original holder's heartbeat is now refused.
        assert_eq!(t.heartbeat(&g1.lease, "w1"), Err(HeartbeatError::NotHolder));
        // w1 finished anyway and submits first: first-complete-wins.
        assert_eq!(
            t.complete(&g1.lease, "w1", &outcomes_for(&g1)),
            Submission::Accepted
        );
        assert_eq!(
            t.complete(&g2.lease, "w2", &outcomes_for(&g2)),
            Submission::Duplicate
        );
        assert_eq!(t.duplicates(), 1);
        assert_eq!(t.take_completed("job-1").len(), 1);
    }

    #[test]
    fn incomplete_and_unknown_submissions_refused() {
        let t = table(10_000);
        t.publish(vec![spec("job-1", 0, 0, 3)]);
        let g = t.acquire("w1").grant.expect("granted");
        let mut partial = outcomes_for(&g);
        partial.remove(&g.sites[2]);
        assert_eq!(t.complete(&g.lease, "w1", &partial), Submission::Incomplete);
        assert_eq!(t.complete("lease-999", "w1", &partial), Submission::Unknown);
        assert_eq!(t.heartbeat("lease-999", "w1"), Err(HeartbeatError::Unknown));
        assert_eq!(t.heartbeat("bogus", "w1"), Err(HeartbeatError::Unknown));
    }

    #[test]
    fn retract_drops_a_jobs_chunks() {
        let t = table(10_000);
        t.publish(vec![spec("job-1", 0, 0, 2), spec("job-2", 0, 2, 2)]);
        assert_eq!(t.retract_job("job-1"), 1);
        let g = t.acquire("w1").grant.expect("job-2 remains");
        assert_eq!(g.sites[0].bit, 2);
    }

    #[test]
    fn expired_but_unstolen_lease_renews() {
        let t = table(1);
        t.publish(vec![spec("job-1", 0, 0, 1)]);
        let g = t.acquire("w1").grant.expect("granted");
        std::thread::sleep(Duration::from_millis(5));
        // Nobody stole it yet: the holder may renew even past the deadline.
        assert!(t.heartbeat(&g.lease, "w1").is_ok());
    }

    #[test]
    fn grant_json_round_trips() {
        let t = table(10_000);
        t.publish(vec![spec("job-1", 0, 0, 3)]);
        let g = t.acquire("w1").grant.expect("granted");
        let text = g.to_json().to_string();
        let back = Grant::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.lease, g.lease);
        assert_eq!(back.kernel, g.kernel);
        assert_eq!(back.model, g.model);
        assert_eq!(back.fingerprint, g.fingerprint);
        assert_eq!(back.launch, g.launch);
        assert_eq!(back.ttl, g.ttl);
        assert_eq!(back.sites, g.sites);
    }

    #[test]
    fn status_and_metrics_render() {
        let t = table(10_000);
        t.publish(vec![spec("job-1", 0, 0, 2), spec("job-1", 1, 2, 2)]);
        let g = t.acquire("w1").grant.expect("granted");
        t.complete(&g.lease, "w1", &outcomes_for(&g));
        let status = t.status_json();
        assert_eq!(status.get("chunks_done").and_then(Json::as_u64), Some(1));
        assert_eq!(
            status.get("chunks_available").and_then(Json::as_u64),
            Some(1)
        );
        let mut metrics = String::new();
        t.render_metrics(&mut metrics);
        assert!(metrics.contains("fsp_fleet_chunks_pending 1"));
        assert!(metrics.contains("fsp_fleet_sites_completed_total{worker=\"w1\"} 2"));
    }
}
