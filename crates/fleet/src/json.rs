//! A minimal JSON value, encoder and parser for the fleet and service
//! wire types.
//!
//! The workspace's `serde` is an offline no-op stub, so the service speaks
//! JSON through this hand-rolled module instead. It is deliberately small:
//! one [`Json`] tree type, a strict recursive-descent parser and a compact
//! encoder. Two properties matter to the service and are tested:
//!
//! * **Numeric exactness** — `f64` values encode via Rust's shortest
//!   round-trip formatting, so a resilience profile survives the wire
//!   bit-identically (the warm-cache acceptance check diffs profiles for
//!   exact equality).
//! * **Deterministic output** — objects preserve insertion order, so the
//!   same value always encodes to the same bytes (CI diffs service output
//!   against in-process output textually).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are doubles on the wire).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as an exact unsigned integer. Accepts integral numbers
    /// within `f64`'s exact range and decimal strings (the wire encodes
    /// 64-bit values beyond 2^53 — e.g. fingerprints — as strings).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes a `u64` losslessly: as a JSON number when `f64`-exact,
    /// as a decimal string beyond 2^53 (see [`Json::as_u64`]).
    #[must_use]
    pub fn u64(v: u64) -> Json {
        if v <= 9_007_199_254_740_992 {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// Parses a JSON document (strict: one value, trailing whitespace only).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without the trailing ".0";
                    // everything else uses shortest-round-trip formatting.
                    // Both parse back to the identical f64.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{n:.0}")
                    } else {
                        write!(f, "{n:?}")
                    }
                } else {
                    // JSON has no Inf/NaN; the wire types never produce
                    // them (profiles are finite by construction).
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect_literal(bytes, pos, "null", Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0C),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        let c = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj([
            ("a", Json::Num(1.5)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::Str("line\n\"quote\"".to_owned())),
            ("big", Json::u64(u64::MAX)),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse(&text).unwrap().get("big").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123_456_789.123_456,
            6000.0,
            -0.0,
        ] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(6000.0).to_string(), "6000");
        assert_eq!(Json::Num(-0.0).to_string(), "-0");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"k\" : [ 1 , { \"x\" : null } ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }
}
