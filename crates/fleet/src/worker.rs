//! The work-stealing worker runtime behind `fsp worker`.
//!
//! A worker is a plain loop: pull a lease from the coordinator, execute
//! its chunk with the checkpoint-resume fast path, stream the outcomes
//! back, repeat. All fault tolerance lives in the protocol rather than in
//! worker state:
//!
//! * transient coordinator errors retry under capped exponential backoff
//!   with jitter ([`crate::retry::Backoff`]);
//! * a heartbeat thread renews the active lease at a third of its TTL; if
//!   the coordinator reports the lease stolen (409) or gone (404), a lost
//!   flag cancels the running campaign between chunks and the lease is
//!   abandoned — the rightful holder finishes it;
//! * a worker that dies loses only its leased chunk, which expires on the
//!   coordinator and is re-served to whichever worker asks next.
//!
//! Workers hold no durable state. Outcome records are keyed with the
//! fingerprint and (opaque) launch hash carried by the lease, so a
//! worker's submission is byte-compatible with records the coordinator
//! would have written locally — the store collapses duplicates and the
//! final profile cannot depend on which worker ran what.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use fsp_inject::{CampaignObserver, Experiment, WeightedSite};
use fsp_workloads::{Scale, Workload};

use crate::json::Json;
use crate::lease::Grant;
use crate::retry::Backoff;
use crate::wire::{OutcomeFrame, OutcomeKey, SpanEntry, TraceFrame};

/// How many consecutive transport failures a worker tolerates before
/// concluding the coordinator is gone for good.
const MAX_TRANSPORT_FAILURES: u32 = 60;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Worker name, used for lease attribution and metrics labels.
    pub name: String,
    /// OS threads for the injection campaign of each chunk.
    pub campaign_workers: usize,
    /// Exit once the coordinator reports no pending chunks (instead of
    /// idling for more work).
    pub exit_when_idle: bool,
    /// Fault injection for tests and benchmarks: after completing this
    /// many chunks, abandon the next granted lease without executing or
    /// releasing it (simulates a worker crash mid-lease).
    pub fail_after: Option<usize>,
}

impl WorkerConfig {
    /// A worker named `name` against `addr`, with library defaults.
    #[must_use]
    pub fn new(addr: impl Into<String>, name: impl Into<String>) -> Self {
        WorkerConfig {
            addr: addr.into(),
            name: name.into(),
            campaign_workers: 1,
            exit_when_idle: false,
            fail_after: None,
        }
    }
}

/// What a worker did before exiting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Chunks executed and delivered.
    pub chunks: usize,
    /// Fault sites in those chunks.
    pub sites: usize,
    /// Whether the worker exited via `fail_after` holding an undelivered
    /// lease.
    pub abandoned: bool,
}

/// One blocking HTTP exchange (the worker cannot use `fsp_serve::Client`
/// without a dependency cycle; the protocol is four lines of HTTP/1.1).
fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("sending request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading response: {e}"))?;
    let (head, response_body) = response
        .split_once("\r\n\r\n")
        .ok_or("truncated HTTP response")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    Ok((status, response_body.to_owned()))
}

/// Cancels the running campaign between chunks once the lease is lost or
/// the worker is asked to stop.
struct LeaseObserver<'a> {
    lost: &'a AtomicBool,
    stop: &'a AtomicBool,
}

impl CampaignObserver for LeaseObserver<'_> {
    fn should_cancel(&self) -> bool {
        self.lost.load(Ordering::Relaxed) || self.stop.load(Ordering::Relaxed)
    }
}

/// Prepared experiments, one per kernel the worker has seen.
///
/// [`Experiment`] borrows its workload, so cache entries are leaked to
/// `'static`; the registry is small (17 kernels) and a worker process
/// prepares each at most once, so the leak is bounded and intentional.
#[derive(Default)]
struct ExperimentCache {
    entries: BTreeMap<String, &'static Experiment<'static, Workload>>,
}

impl ExperimentCache {
    fn get(&mut self, kernel: &str) -> Result<&'static Experiment<'static, Workload>, String> {
        if let Some(exp) = self.entries.get(kernel) {
            return Ok(exp);
        }
        let workload = fsp_workloads::by_id(kernel, Scale::Eval)
            .ok_or_else(|| format!("lease names unknown kernel `{kernel}`"))?;
        let workload: &'static Workload = Box::leak(Box::new(workload));
        let experiment =
            Experiment::prepare(workload).map_err(|e| format!("preparing `{kernel}`: {e}"))?;
        let experiment: &'static Experiment<'static, Workload> = Box::leak(Box::new(experiment));
        self.entries.insert(kernel.to_owned(), experiment);
        Ok(experiment)
    }
}

/// Runs the worker loop until the fleet drains (`exit_when_idle`), `stop`
/// is raised, or the coordinator stays unreachable past the transport
/// failure budget.
///
/// # Errors
///
/// Unrecoverable conditions only: a kernel the worker cannot prepare, a
/// fingerprint mismatch (worker built from different kernel sources than
/// the coordinator), or a coordinator unreachable for the whole backoff
/// budget. Lease races, stolen leases and duplicate submissions are
/// handled silently — they are normal fleet weather.
pub fn run_worker(config: &WorkerConfig, stop: &AtomicBool) -> Result<WorkerSummary, String> {
    let mut cache = ExperimentCache::default();
    let mut summary = WorkerSummary::default();
    let seed = crate::wire::frame_fnv(config.name.as_bytes());
    let mut poll = Backoff::poll(seed);
    let mut failures = 0u32;

    while !stop.load(Ordering::Relaxed) {
        let body = Json::obj([("worker", Json::Str(config.name.clone()))]).to_string();
        let response = match http(&config.addr, "POST", "/leases", &body) {
            Ok((200, body)) => body,
            Ok((status, body)) => {
                return Err(format!(
                    "coordinator refused lease request ({status}): {body}"
                ))
            }
            Err(_) if failures + 1 < MAX_TRANSPORT_FAILURES => {
                failures += 1;
                poll.sleep();
                continue;
            }
            Err(e) => return Err(format!("coordinator unreachable: {e}")),
        };
        failures = 0;
        let value = Json::parse(&response).map_err(|e| format!("malformed grant: {e}"))?;
        if value.get("lease").and_then(Json::as_str).is_none() {
            let pending = value.get("pending").and_then(Json::as_u64).unwrap_or(0);
            if pending == 0 && config.exit_when_idle {
                return Ok(summary);
            }
            poll.sleep();
            continue;
        }
        poll.reset();
        let grant = Grant::from_json(&value)?;
        // A traced coordinator turns on this worker's tracer; the receipt
        // time is the rebase anchor for every span shipped with this
        // lease's outcomes (see `crate::wire::TraceFrame`).
        if grant.trace {
            fsp_obs::set_tracing(true);
        }
        let grant_received_ns = fsp_obs::now_ns();
        if config.fail_after == Some(summary.chunks) {
            // Crash simulation: die holding the lease. The coordinator's
            // deadline machinery must recover it.
            summary.abandoned = true;
            return Ok(summary);
        }
        if execute_lease(config, &mut cache, &grant, grant_received_ns, stop)? {
            summary.chunks += 1;
            summary.sites += grant.sites.len();
        }
    }
    Ok(summary)
}

/// Executes one granted lease: heartbeat thread + campaign + submission.
/// Returns whether the chunk was delivered (false = lease lost or worker
/// stopped; the chunk will be re-served).
fn execute_lease(
    config: &WorkerConfig,
    cache: &mut ExperimentCache,
    grant: &Grant,
    grant_received_ns: u64,
    stop: &AtomicBool,
) -> Result<bool, String> {
    let lease_span = fsp_obs::span_labeled("worker.lease", grant.lease.clone());
    let experiment = cache.get(&grant.kernel)?;
    let local_fp = experiment.target().fingerprint();
    if local_fp != grant.fingerprint {
        return Err(format!(
            "kernel `{}` fingerprint mismatch (lease {:#x}, local {:#x}): \
             worker and coordinator run different kernel sources",
            grant.kernel, grant.fingerprint, local_fp
        ));
    }

    let lost = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let completed = std::thread::scope(|scope| {
        // Heartbeat at a third of the TTL; tolerate transport errors (the
        // lease then simply risks expiry, which the protocol survives).
        scope.spawn(|| {
            let interval = (grant.ttl / 3).max(Duration::from_millis(20));
            let slice = Duration::from_millis(10);
            let renew = || {
                fsp_obs::instant("worker.heartbeat", Some(grant.lease.clone()));
                let body = Json::obj([("worker", Json::Str(config.name.clone()))]).to_string();
                let path = format!("/leases/{}/heartbeat", grant.lease);
                match http(&config.addr, "POST", &path, &body) {
                    // Transport errors are tolerated like a successful
                    // renewal: at worst the lease expires, which the
                    // protocol survives. Only an explicit refusal
                    // (stolen/gone) abandons the chunk.
                    Ok((200, _)) | Err(_) => true,
                    Ok((_, _)) => false,
                }
            };
            // First renewal immediately: even a lease whose campaign
            // finishes inside the first interval lands (and traces) at
            // least one heartbeat.
            if !renew() {
                lost.store(true, Ordering::Relaxed);
                return;
            }
            loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if done.load(Ordering::Relaxed) || stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if !renew() {
                    lost.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });

        let sites: Vec<WeightedSite> = grant.sites.iter().map(|s| WeightedSite::from(*s)).collect();
        let observer = LeaseObserver { lost: &lost, stop };
        let campaign_span = fsp_obs::span("worker.campaign");
        let run = experiment.run_campaign_incremental(
            &sites,
            grant.model,
            config.campaign_workers,
            &[],
            &observer,
        );
        drop(campaign_span);
        done.store(true, Ordering::Relaxed);
        if run.cancelled || !run.is_complete() {
            return None;
        }

        let records: Vec<_> = grant
            .sites
            .iter()
            .zip(&run.outcomes)
            .map(|(site, outcome)| {
                let key = OutcomeKey {
                    fingerprint: grant.fingerprint,
                    launch: grant.launch,
                    model: grant.model.code(),
                    site: *site,
                };
                (key, outcome.expect("complete run"))
            })
            .collect();
        Some(OutcomeFrame {
            worker: config.name.clone(),
            records,
        })
    });
    let Some(outcome_frame) = completed else {
        drop(lease_span);
        return Ok(false);
    };
    // Close the lease span before draining so it rides in this frame;
    // the submission span below ships with the *next* lease's frame.
    drop(lease_span);
    let mut frame = outcome_frame.to_json();
    if grant.trace {
        splice_trace(&mut frame, grant.grant_ns, grant_received_ns);
    }
    let frame = frame.to_string();
    let _submit = fsp_obs::span("worker.submit");
    submit_outcomes(config, &grant.lease, &frame)
}

/// Drains this worker's span ring and attaches it to an outcome frame,
/// rebased onto "nanoseconds since this worker saw the grant" — the
/// coordinator re-anchors with `grant_ns` (see [`TraceFrame`]).
fn splice_trace(frame: &mut Json, grant_ns: u64, grant_received_ns: u64) {
    let snapshot = fsp_obs::drain();
    let spans = snapshot
        .events
        .iter()
        .map(|e| SpanEntry {
            tid: e.tid,
            depth: e.depth,
            name: e.name.to_string(),
            label: e.label.clone(),
            rel_ns: e.start_ns.cast_signed() - grant_received_ns.cast_signed(),
            dur_ns: e.dur_ns,
            instant: e.instant,
        })
        .collect();
    let trace = TraceFrame { grant_ns, spans };
    if let Json::Obj(fields) = frame {
        fields.extend(trace.to_fields());
    }
}

/// Streams an outcome frame back, retrying transient transport errors.
/// 4xx means the lease is stale or the frame malformed — dropped, the
/// chunk re-serves after expiry.
fn submit_outcomes(config: &WorkerConfig, lease: &str, frame: &str) -> Result<bool, String> {
    let seed = crate::wire::frame_fnv(lease.as_bytes());
    let mut backoff = Backoff::poll(seed);
    let path = format!("/leases/{lease}/outcomes");
    for attempt in 0..MAX_TRANSPORT_FAILURES {
        match http(&config.addr, "POST", &path, frame) {
            Ok((200, _)) => return Ok(true),
            Ok((_, _)) => return Ok(false),
            Err(e) if attempt + 1 == MAX_TRANSPORT_FAILURES => {
                return Err(format!("submitting outcomes: {e}"))
            }
            Err(_) => backoff.sleep(),
        }
    }
    unreachable!("loop returns on the last attempt")
}
