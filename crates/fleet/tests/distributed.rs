//! End-to-end distributed determinism: a real coordinator (engine + HTTP
//! server) drained by two workers, one of which crashes holding a lease.
//!
//! This is the acceptance test for the fleet layer's core claim: the
//! result document is **byte-identical** to an in-process `run_local`
//! run regardless of worker count or kill schedule, expired leases are
//! requeued (work stealing), and no fault site is double-counted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fsp_fleet::{run_worker, WorkerConfig};
use fsp_serve::{Client, Engine, EngineConfig, JobSpec, Json, Server};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fsp-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fleet_result_is_byte_identical_despite_worker_crash() {
    let dir = scratch_dir("distributed");
    let config = EngineConfig::new(&dir)
        .job_workers(1)
        .chunk_sites(8)
        .lease_ttl(Duration::from_millis(500));
    let engine = Arc::new(Engine::open(config).expect("open engine"));
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&engine))
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr().to_string();
    let client = Client::new(&addr);

    let mut spec = JobSpec::sampled("pathfinder", 40);
    spec.seed = 7;
    let job = client.submit_fleet(&spec).expect("submit fleet job");

    // Phase 1: a worker that "crashes" — it acquires its first lease and
    // exits without executing or releasing it. The coordinator must
    // recover that chunk through lease expiry alone.
    let stop = AtomicBool::new(false);
    let mut crasher = WorkerConfig::new(&addr, "crasher");
    crasher.campaign_workers = 1;
    crasher.fail_after = Some(0);
    let crashed = run_worker(&crasher, &stop).expect("crasher loop");
    assert!(crashed.abandoned, "crasher must die holding a lease");
    assert_eq!(crashed.chunks, 0, "crasher must deliver nothing");

    // Phase 2: a healthy worker drains the fleet, stealing the dead
    // worker's chunk once its lease expires.
    let status = std::thread::scope(|scope| {
        let mut steady = WorkerConfig::new(&addr, "steady");
        steady.campaign_workers = 1;
        let stop = &stop;
        scope.spawn(move || {
            let _ = run_worker(&steady, stop);
        });
        let status = client
            .wait(&job, Duration::from_secs(300))
            .expect("job finishes");
        stop.store(true, Ordering::Relaxed);
        status
    });
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed"),
        "job must complete: {status}"
    );
    let total = status.get("total").and_then(Json::as_u64).expect("total");
    let done = status.get("done").and_then(Json::as_u64).expect("done");
    assert_eq!(done, total, "every planned site resolved exactly once");

    let fleet_doc = client.fleet_status().expect("fleet status");
    let requeues = fleet_doc
        .get("requeues")
        .and_then(Json::as_u64)
        .expect("requeues");
    assert!(requeues >= 1, "the abandoned lease must be requeued");
    // No double counting: sites credited across all workers equal the
    // job's plan exactly — the stolen chunk was executed once, by the
    // worker that stole it.
    let credited: u64 = fleet_doc
        .get("workers")
        .and_then(Json::as_arr)
        .expect("workers")
        .iter()
        .map(|w| w.get("sites").and_then(Json::as_u64).unwrap_or(0))
        .sum();
    assert_eq!(credited, total, "sites credited once across the fleet");

    let fleet_result = client.result(&job).expect("result document").to_string();
    handle.stop();
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // The whole point: distribution is placement, not policy. The result
    // document matches a single-process run byte for byte.
    let local = fsp_serve::run_local(&spec, 1)
        .expect("local run")
        .to_string();
    assert_eq!(
        fleet_result, local,
        "fleet result must be byte-identical to `fsp submit --local`"
    );
}
