//! End-to-end execution of kernels translated from real PTX: the
//! `nvcc`-style saxpy from the `fsp-isa` frontend runs on the simulator
//! and produces the right numbers, under both execution modes.

use fsp_isa::ptx::translate_ptx;
use fsp_sim::{Launch, MemBlock, NopHook, Simulator};

const SAXPY_PTX: &str = r#"
.version 7.8
.target sm_52
.address_size 64

.visible .entry saxpy(
    .param .u64 saxpy_param_0,
    .param .u64 saxpy_param_1,
    .param .u32 saxpy_param_2,
    .param .f32 saxpy_param_3
)
{
    .reg .pred  %p<2>;
    .reg .f32   %f<4>;
    .reg .b32   %r<6>;
    .reg .b64   %rd<8>;

    ld.param.u64    %rd1, [saxpy_param_0];
    ld.param.u64    %rd2, [saxpy_param_1];
    ld.param.u32    %r2, [saxpy_param_2];
    ld.param.f32    %f1, [saxpy_param_3];
    cvta.to.global.u64  %rd3, %rd2;
    cvta.to.global.u64  %rd4, %rd1;
    mov.u32     %r3, %ctaid.x;
    mov.u32     %r4, %ntid.x;
    mov.u32     %r5, %tid.x;
    mad.lo.s32  %r1, %r3, %r4, %r5;
    setp.ge.s32     %p1, %r1, %r2;
    @%p1 bra    $L__BB0_2;

    mul.wide.s32    %rd5, %r1, 4;
    add.s64     %rd6, %rd4, %rd5;
    ld.global.f32   %f2, [%rd6];
    add.s64     %rd7, %rd3, %rd5;
    ld.global.f32   %f3, [%rd7];
    fma.rn.f32  %f3, %f2, %f1, %f3;
    st.global.f32   [%rd7], %f3;

$L__BB0_2:
    ret;
}
"#;

fn run_saxpy(sim: Simulator) -> Vec<f32> {
    let program = translate_ptx(SAXPY_PTX).expect("translates");
    let n = 6u32;
    let a = 2.0f32;
    let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..8).map(|i| 10.0 * i as f32).collect();
    let mut memory = MemBlock::with_words(16);
    memory.write_f32_slice(0, &x);
    memory.write_f32_slice(32, &y);
    let launch = Launch::new(program)
        .block(8, 1, 1)
        .param(0) // x
        .param(32) // y
        .param(n)
        .param_f32(a);
    sim.run(&launch, &mut memory, &mut NopHook).expect("runs");
    memory
        .read_words(32, 8)
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect()
}

#[test]
fn translated_saxpy_computes_and_respects_the_guard() {
    let y = run_saxpy(Simulator::new());
    for (i, &got) in y.iter().take(6).enumerate() {
        let want = 2.0 * i as f32 + 10.0 * i as f32;
        assert_eq!(got, want, "element {i}");
    }
    // Threads 6 and 7 fail the bound check and must not write.
    assert_eq!(y[6], 60.0);
    assert_eq!(y[7], 70.0);
}

#[test]
fn translated_saxpy_is_mode_equivalent() {
    assert_eq!(
        run_saxpy(Simulator::new()),
        run_saxpy(Simulator::warp_lockstep(4))
    );
}

#[test]
fn translated_kernel_is_injectable() {
    // The translated kernel exposes the same fault-site space machinery as
    // hand-written kernels.
    let program = translate_ptx(SAXPY_PTX).expect("translates");
    let launch = Launch::new(program)
        .block(8, 1, 1)
        .param(0)
        .param(32)
        .param(6)
        .param_f32(2.0);
    let mut tracer = fsp_sim::Tracer::new(8, 8).with_full_traces(0..8);
    let mut memory = MemBlock::with_words(16);
    Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .expect("runs");
    let trace = tracer.finish();
    assert!(trace.total_fault_sites() > 0);
    // Divergence shows in iCnt: in-bounds threads run the body.
    assert!(trace.icnt[0] > trace.icnt[7]);
}
