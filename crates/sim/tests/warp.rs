//! Warp-lockstep executor: divergence-stack behaviour.

use fsp_isa::assemble;
use fsp_sim::{Launch, MemBlock, NopHook, SimFault, Simulator};

fn run_warped(src: &str, threads: u32, width: u32, words: usize) -> Vec<u32> {
    let p = assemble("t", src).unwrap();
    let mut g = MemBlock::with_words(words);
    Simulator::warp_lockstep(width)
        .run(&Launch::new(p).block(threads, 1, 1), &mut g, &mut NopHook)
        .expect("warp kernel runs");
    g.read_words(0, words)
}

#[test]
fn if_else_divergence_reconverges() {
    // Even lanes add 1, odd lanes add 2; all store after reconvergence.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        and.b32 $r2, $r1, 0x1
        set.eq.u32.u32 $p0/$o127, $r2, $r124
        @$p0.eq bra odd
        mov.u32 $r3, 0x1
        bra join
        odd:
        mov.u32 $r3, 0x2
        join:
        shl.u32 $r4, $r1, 0x2
        st.global.u32 [$r4], $r3
        exit
        "#,
        8,
        4,
        8,
    );
    assert_eq!(words, vec![1, 2, 1, 2, 1, 2, 1, 2]);
}

#[test]
fn nested_divergence() {
    // Outer split on bit 0, inner split on bit 1: four distinct paths.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        and.b32 $r2, $r1, 0x1
        and.b32 $r3, $r1, 0x2
        set.eq.u32.u32 $p0/$o127, $r2, $r124
        @$p0.eq bra outer1
        set.eq.u32.u32 $p0/$o127, $r3, $r124
        @$p0.eq bra a1
        mov.u32 $r4, 0x0
        bra inner_join0
        a1:
        mov.u32 $r4, 0x1
        inner_join0:
        bra join
        outer1:
        set.eq.u32.u32 $p0/$o127, $r3, $r124
        @$p0.eq bra b1
        mov.u32 $r4, 0x2
        bra inner_join1
        b1:
        mov.u32 $r4, 0x3
        inner_join1:
        join:
        shl.u32 $r5, $r1, 0x2
        st.global.u32 [$r5], $r4
        exit
        "#,
        4,
        4,
        4,
    );
    // tid 0: bits (0,0) -> outer even path, inner even -> 0
    // tid 1: (1,0) -> outer odd, inner even -> 2
    // tid 2: (0,1) -> outer even, inner odd -> 1
    // tid 3: (1,1) -> outer odd, inner odd -> 3
    assert_eq!(words, vec![0, 2, 1, 3]);
}

#[test]
fn loop_divergence_with_different_trip_counts() {
    // Each lane loops tid+1 times; lanes retire from the loop one by one.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        add.u32 $r2, $r1, 0x1          // trips
        mov.u32 $r3, $r124             // acc
        loop:
        add.u32 $r3, $r3, 0x3
        add.u32 $r2, $r2, -1
        set.ne.u32.u32 $p0/$o127, $r2, $r124
        @$p0.ne bra loop
        shl.u32 $r4, $r1, 0x2
        st.global.u32 [$r4], $r3
        exit
        "#,
        4,
        4,
        4,
    );
    assert_eq!(words, vec![3, 6, 9, 12]);
}

#[test]
fn divergent_paths_without_reconvergence() {
    // Both arms end in their own exit: the reconvergence point is thread
    // exit; both sides must still complete.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        and.b32 $r2, $r1, 0x1
        set.eq.u32.u32 $p0/$o127, $r2, $r124
        @$p0.eq bra other
        shl.u32 $r4, $r1, 0x2
        mov.u32 $r5, 0x11
        st.global.u32 [$r4], $r5
        exit
        other:
        shl.u32 $r4, $r1, 0x2
        mov.u32 $r5, 0x22
        st.global.u32 [$r4], $r5
        exit
        "#,
        4,
        4,
        4,
    );
    assert_eq!(words, vec![0x11, 0x22, 0x11, 0x22]);
}

#[test]
fn divergent_barrier_is_refused() {
    let p = assemble(
        "t",
        r#"
        cvt.u32.u16 $r1, %tid.x
        set.eq.u32.u32 $p0/$o127, $r1, $r124
        @$p0.ne bra skip                 // thread 0 branches away
        bar.sync 0x0                     // the rest hit a divergent barrier
        skip:
        exit
        "#,
    )
    .unwrap();
    let mut g = MemBlock::with_words(1);
    let err = Simulator::warp_lockstep(4)
        .run(&Launch::new(p.clone()).block(4, 1, 1), &mut g, &mut NopHook)
        .unwrap_err();
    assert!(matches!(err, SimFault::BarrierDivergence { .. }));
    // The lenient thread-serial schedule tolerates the same kernel.
    let mut g = MemBlock::with_words(1);
    Simulator::new()
        .run(&Launch::new(p).block(4, 1, 1), &mut g, &mut NopHook)
        .expect("thread-serial mode releases when all live threads wait");
}

#[test]
fn barriers_synchronize_across_warps() {
    // Warp 1's lane publishes through shared memory; warp 0 reads after
    // the barrier.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        set.eq.u32.u32 $p0/$o127, $r1, 0x7
        @$p0.eq bra wait
        mov.u32 $r2, 0x5A
        mov.u32 s[0x0100], $r2
        wait:
        bar.sync 0x0
        mov.u32 $r3, s[0x0100]
        shl.u32 $r4, $r1, 0x2
        st.global.u32 [$r4], $r3
        exit
        "#,
        8,
        4,
        8,
    );
    assert_eq!(words, vec![0x5A; 8]);
}

#[test]
fn partial_last_warp() {
    // 6 threads at width 4: the second warp has 2 lanes.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        shl.u32 $r2, $r1, 0x2
        st.global.u32 [$r2], $r1
        exit
        "#,
        6,
        4,
        6,
    );
    assert_eq!(words, vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn explicit_ssy_annotation_controls_reconvergence() {
    // The `ssy join` declares the reconvergence point explicitly
    // (PTXPlus-style); the kernel must behave identically to the
    // CFG-derived default.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        and.b32 $r2, $r1, 0x1
        ssy join
        set.eq.u32.u32 $p0/$o127, $r2, $r124
        @$p0.eq bra odd
        mov.u32 $r3, 0x1
        bra join
        odd:
        mov.u32 $r3, 0x2
        join:
        shl.u32 $r4, $r1, 0x2
        st.global.u32 [$r4], $r3
        exit
        "#,
        4,
        4,
        4,
    );
    assert_eq!(words, vec![1, 2, 1, 2]);
}

#[test]
fn raw_address_ssy_is_tolerated() {
    // GPGPU-Sim dumps carry byte addresses (`ssy 0x228`); they are parsed
    // and ignored, falling back to CFG reconvergence.
    let words = run_warped(
        r#"
        cvt.u32.u16 $r1, %tid.x
        ssy 0x00000228
        and.b32 $r2, $r1, 0x1
        set.eq.u32.u32 $p0/$o127, $r2, $r124
        @$p0.eq bra odd
        mov.u32 $r3, 0x1
        bra join
        odd:
        mov.u32 $r3, 0x2
        join:
        shl.u32 $r4, $r1, 0x2
        st.global.u32 [$r4], $r3
        exit
        "#,
        4,
        4,
        4,
    );
    assert_eq!(words, vec![1, 2, 1, 2]);
}
