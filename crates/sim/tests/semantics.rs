//! Instruction-level semantics of the interpreter, one behaviour per test.
//!
//! Each helper runs a single-thread kernel that stores its result(s) to
//! global memory; the assertions pin down the exact PTXPlus-like semantics
//! the fault model depends on (wrapping arithmetic, CUDA-style division by
//! zero, shift clamping, condition-code flags, ...).

use fsp_isa::assemble;
use fsp_sim::{Launch, MemBlock, NopHook, SimFault, Simulator};

/// Runs `body` (which should store results at bytes 0, 4, ... and `exit`)
/// and returns the first `n` words of global memory.
fn run(body: &str, n: usize) -> Vec<u32> {
    let p = assemble("t", body).expect("test kernel assembles");
    let mut g = MemBlock::with_words(n.max(4));
    Simulator::new()
        .run(&Launch::new(p), &mut g, &mut NopHook)
        .expect("test kernel runs");
    g.read_words(0, n)
}

fn run1(body: &str) -> u32 {
    run(body, 1)[0]
}

fn runf(body: &str) -> f32 {
    f32::from_bits(run1(body))
}

#[test]
fn add_wraps_unsigned() {
    let v =
        run1("mov.u32 $r1, 0xFFFFFFFF\nadd.u32 $r1, $r1, 0x2\nst.global.u32 [$r124], $r1\nexit");
    assert_eq!(v, 1);
}

#[test]
fn sub_wraps_below_zero() {
    let v = run1("mov.u32 $r1, 0x1\nsub.u32 $r1, $r1, 0x3\nst.global.u32 [$r124], $r1\nexit");
    assert_eq!(v, (-2i32) as u32);
}

#[test]
fn u16_ops_mask_to_16_bits() {
    let v = run1("mov.u32 $r1, 0xFFFF\nadd.u16 $r1, $r1, 0x2\nst.global.u32 [$r124], $r1\nexit");
    assert_eq!(v, 1, "u16 add wraps at 16 bits");
}

#[test]
fn mul_lo_hi_unsigned() {
    let words = run(
        r#"
        mov.u32 $r1, 0x10000
        mul.lo.u32 $r2, $r1, $r1
        st.global.u32 [$r124], $r2
        mul.hi.u32 $r3, $r1, $r1
        mov.u32 $r4, 0x4
        st.global.u32 [$r4], $r3
        exit
        "#,
        2,
    );
    assert_eq!(words[0], 0, "low 32 bits of 2^32");
    assert_eq!(words[1], 1, "high 32 bits of 2^32");
}

#[test]
fn mul_hi_signed() {
    // (-2)^31... use -3 * 5 = -15: high word is all ones.
    let v = run1(
        "mov.u32 $r1, -3\nmov.u32 $r2, 0x5\nmul.hi.s32 $r3, $r1, $r2\nst.global.u32 [$r124], $r3\nexit",
    );
    assert_eq!(v, u32::MAX);
}

#[test]
fn mul_wide_u16_uses_halves() {
    // $r1 = 0xFFFF0003: lo=3, hi=0xFFFF. wide.u16 lo*hi = 3 * 65535.
    let v = run1(
        "mov.u32 $r1, 0xFFFF0003\nmul.wide.u16 $r2, $r1.lo, $r1.hi\nst.global.u32 [$r124], $r2\nexit",
    );
    assert_eq!(v, 3 * 65535);
}

#[test]
fn mul_wide_s16_sign_extends() {
    // lo = -1 (0xFFFF as s16), hi = 2 -> product -2.
    let v = run1(
        "mov.u32 $r1, 0x0002FFFF\nmul.wide.s16 $r2, $r1.lo, $r1.hi\nst.global.u32 [$r124], $r2\nexit",
    );
    assert_eq!(v as i32, -2);
}

#[test]
fn mad_wide_accumulates() {
    let v = run1(
        r#"
        mov.u32 $r1, 0x00050004
        mov.u32 $r3, 0x64
        mad.wide.u16 $r2, $r1.lo, $r1.hi, $r3
        st.global.u32 [$r124], $r2
        exit
        "#,
    );
    assert_eq!(v, 4 * 5 + 100);
}

#[test]
fn integer_division_by_zero_is_all_ones_not_a_trap() {
    let v = run1(
        "mov.u32 $r1, 0x7\nmov.u32 $r2, $r124\ndiv.u32 $r3, $r1, $r2\nst.global.u32 [$r124], $r3\nexit",
    );
    assert_eq!(v, u32::MAX, "CUDA semantics: no trap, all-ones result");
}

#[test]
fn signed_division_overflow_wraps() {
    // i32::MIN / -1 wraps instead of faulting.
    let v = run1(
        "mov.u32 $r1, 0x80000000\nmov.u32 $r2, -1\ndiv.s32 $r3, $r1, $r2\nst.global.u32 [$r124], $r3\nexit",
    );
    assert_eq!(v, 0x8000_0000);
}

#[test]
fn remainder_by_zero_returns_dividend() {
    let v = run1("mov.u32 $r1, 0x7\nrem.u32 $r3, $r1, $r124\nst.global.u32 [$r124], $r3\nexit");
    assert_eq!(v, 7);
}

#[test]
fn shifts_clamp_at_register_width() {
    let words = run(
        r#"
        mov.u32 $r1, 0xF0000001
        mov.u32 $r2, 0x40
        shl.u32 $r3, $r1, $r2
        st.global.u32 [$r124], $r3
        shr.u32 $r4, $r1, $r2
        mov.u32 $r5, 0x4
        st.global.u32 [$r5], $r4
        shr.s32 $r6, $r1, $r2
        mov.u32 $r7, 0x8
        st.global.u32 [$r7], $r6
        exit
        "#,
        3,
    );
    assert_eq!(words[0], 0, "shl >= 32 -> 0");
    assert_eq!(words[1], 0, "unsigned shr >= 32 -> 0");
    assert_eq!(words[2], u32::MAX, "signed shr >= 32 fills with sign");
}

#[test]
fn arithmetic_shift_preserves_sign() {
    let v = run1("mov.u32 $r1, -8\nshr.s32 $r2, $r1, 0x1\nst.global.u32 [$r124], $r2\nexit");
    assert_eq!(v as i32, -4);
}

#[test]
fn cvt_u32_u16_truncates() {
    let v = run1("mov.u32 $r1, 0xABCD1234\ncvt.u32.u16 $r2, $r1\nst.global.u32 [$r124], $r2\nexit");
    assert_eq!(v, 0x1234);
}

#[test]
fn cvt_s32_s16_sign_extends() {
    let v = run1("mov.u32 $r1, 0xFFFF\ncvt.s32.s16 $r2, $r1\nst.global.u32 [$r124], $r2\nexit");
    assert_eq!(v as i32, -1);
}

#[test]
fn cvt_f32_s32_and_back() {
    let v = runf("mov.u32 $r1, -7\ncvt.f32.s32 $r2, $r1\nst.global.f32 [$r124], $r2\nexit");
    assert_eq!(v, -7.0);
    let w = run1("mov.f32 $r1, 0fC0E00000\ncvt.s32.f32 $r2, $r1\nst.global.u32 [$r124], $r2\nexit");
    assert_eq!(w as i32, -7, "float->int truncates toward zero");
}

#[test]
fn cvt_f32_u32_saturates_on_negative() {
    let v = run1("mov.f32 $r1, -3.5\ncvt.u32.f32 $r2, $r1\nst.global.u32 [$r124], $r2\nexit");
    assert_eq!(v, 0, "negative float to unsigned saturates at 0");
}

#[test]
fn cvt_negated_operand_is_register_negation() {
    let v = run1("mov.u32 $r1, 0x5\ncvt.s32.s32 $r1, -$r1\nst.global.u32 [$r124], $r1\nexit");
    assert_eq!(v as i32, -5);
}

#[test]
fn float_negated_operand_flips_sign_bit() {
    let v = runf("mov.f32 $r1, 2.5\nadd.f32 $r2, -$r1, $r124\nst.global.f32 [$r124], $r2\nexit");
    assert_eq!(v, -2.5);
}

#[test]
fn min_max_unsigned_vs_signed() {
    let words = run(
        r#"
        mov.u32 $r1, -1
        mov.u32 $r2, 0x5
        min.u32 $r3, $r1, $r2
        st.global.u32 [$r124], $r3
        min.s32 $r4, $r1, $r2
        mov.u32 $r5, 0x4
        st.global.u32 [$r5], $r4
        max.s32 $r6, $r1, $r2
        mov.u32 $r7, 0x8
        st.global.u32 [$r7], $r6
        exit
        "#,
        3,
    );
    assert_eq!(words[0], 5, "0xFFFFFFFF is huge unsigned");
    assert_eq!(words[1] as i32, -1, "-1 is small signed");
    assert_eq!(words[2], 5);
}

#[test]
fn abs_and_neg() {
    let words = run(
        r#"
        mov.u32 $r1, -9
        abs.s32 $r2, $r1
        st.global.u32 [$r124], $r2
        neg.s32 $r3, $r2
        mov.u32 $r4, 0x4
        st.global.u32 [$r4], $r3
        mov.f32 $r5, -1.5
        abs.f32 $r6, $r5
        mov.u32 $r7, 0x8
        st.global.f32 [$r7], $r6
        exit
        "#,
        3,
    );
    assert_eq!(words[0], 9);
    assert_eq!(words[1] as i32, -9);
    assert_eq!(f32::from_bits(words[2]), 1.5);
}

#[test]
fn float_transcendentals() {
    assert_eq!(
        runf("mov.f32 $r1, 4.0\nsqrt.f32 $r2, $r1\nst.global.f32 [$r124], $r2\nexit"),
        2.0
    );
    assert_eq!(
        runf("mov.f32 $r1, 4.0\nrcp.f32 $r2, $r1\nst.global.f32 [$r124], $r2\nexit"),
        0.25
    );
    assert_eq!(
        runf("mov.f32 $r1, 4.0\nrsqrt.f32 $r2, $r1\nst.global.f32 [$r124], $r2\nexit"),
        0.5
    );
    assert_eq!(
        runf("mov.f32 $r1, 3.0\nex2.f32 $r2, $r1\nst.global.f32 [$r124], $r2\nexit"),
        8.0
    );
    assert_eq!(
        runf("mov.f32 $r1, 8.0\nlg2.f32 $r2, $r1\nst.global.f32 [$r124], $r2\nexit"),
        3.0
    );
}

#[test]
fn logic_ops_and_not() {
    let words = run(
        r#"
        mov.u32 $r1, 0xF0F0
        mov.u32 $r2, 0x0FF0
        and.b32 $r3, $r1, $r2
        st.global.u32 [$r124], $r3
        or.b32 $r4, $r1, $r2
        mov.u32 $r9, 0x4
        st.global.u32 [$r9], $r4
        xor.b32 $r5, $r1, $r2
        mov.u32 $r10, 0x8
        st.global.u32 [$r10], $r5
        not.b32 $r6, $r1
        mov.u32 $r11, 0xc
        st.global.u32 [$r11], $r6
        exit
        "#,
        4,
    );
    assert_eq!(words[0], 0x00F0);
    assert_eq!(words[1], 0xFFF0);
    assert_eq!(words[2], 0xFF00);
    assert_eq!(words[3], !0xF0F0u32);
}

#[test]
fn set_produces_all_ones_mask() {
    let words = run(
        r#"
        mov.u32 $r1, 0x3
        set.lt.u32.u32 $p0/$r2, $r1, 0x5
        st.global.u32 [$r124], $r2
        set.gt.u32.u32 $p0/$r3, $r1, 0x5
        mov.u32 $r4, 0x4
        st.global.u32 [$r4], $r3
        exit
        "#,
        2,
    );
    assert_eq!(words[0], u32::MAX);
    assert_eq!(words[1], 0);
}

#[test]
fn set_f32_dtype_produces_one_point_zero() {
    let v = runf(
        "mov.f32 $r1, 1.0\nset.lt.f32.f32 $p0/$r2, $r1, 2.0\nst.global.f32 [$r124], $r2\nexit",
    );
    assert_eq!(v, 1.0);
}

#[test]
fn guard_tests_cover_all_six_conditions() {
    // Flags come from the written value (`and.b32 $p0|..., x, x` latches
    // the flags of x): value 0 sets the zero flag, a negative value the
    // sign flag, a positive value neither. Each guarded add below records
    // one passing test as a bit.
    let probe = |value: &str| -> Vec<u32> {
        run(
            &format!(
                r#"
                mov.u32 $r1, {value}
                and.b32 $p0|$o127, $r1, $r1
                mov.u32 $r3, $r124
                @$p0.eq add.u32 $r3, $r3, 0x1
                @$p0.ne add.u32 $r3, $r3, 0x2
                @$p0.lt add.u32 $r3, $r3, 0x4
                @$p0.le add.u32 $r3, $r3, 0x8
                @$p0.gt add.u32 $r3, $r3, 0x10
                @$p0.ge add.u32 $r3, $r3, 0x20
                st.global.u32 [$r124], $r3
                exit
                "#
            ),
            1,
        )
    };
    // value 0: zero flag -> eq, le, ge pass.
    assert_eq!(probe("$r124")[0], 0x1 | 0x8 | 0x20);
    // value -1 (sign set): ne, lt, le pass.
    assert_eq!(probe("-1")[0], 0x2 | 0x4 | 0x8);
    // value 1 (no flags): ne, gt, ge pass.
    assert_eq!(probe("0x1")[0], 0x2 | 0x10 | 0x20);
}

#[test]
fn add_sets_carry_and_overflow_flags() {
    // 0x7FFFFFFF + 1: signed overflow (flag bit 3), no carry.
    // Carry flag is bit 2, tested through the raw predicate value.
    let words = run(
        r#"
        mov.u32 $r1, 0x7FFFFFFF
        add.u32 $p0|$r2, $r1, 0x1
        mov.u32 $r3, $p0
        st.global.u32 [$r124], $r3
        mov.u32 $r4, 0xFFFFFFFF
        add.u32 $p1|$r5, $r4, 0x2
        mov.u32 $r6, $p1
        mov.u32 $r7, 0x4
        st.global.u32 [$r7], $r6
        exit
        "#,
        2,
    );
    // 0x80000000: sign set (bit1), overflow set (bit3).
    assert_eq!(words[0], 0b1010);
    // 0xFFFFFFFF + 2 = 1: carry set (bit2) only.
    assert_eq!(words[1], 0b0100);
}

#[test]
fn selp_selects_on_predicate() {
    let words = run(
        r#"
        mov.u32 $r1, 0x1
        and.b32 $p0|$o127, $r1, $r1          // flags of 1: zero clear
        selp.ne.u32 $r2, 0xAA, 0xBB, $p0     // ne passes -> first operand
        st.global.u32 [$r124], $r2
        selp.eq.u32 $r3, 0xAA, 0xBB, $p0     // eq fails -> second operand
        mov.u32 $r4, 0x4
        st.global.u32 [$r4], $r3
        exit
        "#,
        2,
    );
    assert_eq!(words[0], 0xAA);
    assert_eq!(words[1], 0xBB);
}

#[test]
fn local_memory_is_per_thread() {
    let p = assemble(
        "t",
        r#"
        cvt.u32.u16 $r1, %tid.x
        mov.u32 l[0x0], $r1              // each thread stores its tid locally
        bar.sync 0x0
        mov.u32 $r2, l[0x0]              // and must read it back unchanged
        shl.u32 $r3, $r1, 0x2
        st.global.u32 [$r3], $r2
        exit
        "#,
    )
    .unwrap();
    let mut g = MemBlock::with_words(4);
    Simulator::new()
        .run(&Launch::new(p).block(4, 1, 1), &mut g, &mut NopHook)
        .unwrap();
    assert_eq!(g.to_vec(), [0, 1, 2, 3]);
}

#[test]
fn zero_register_discards_writes() {
    let v = run1("mov.u32 $r124, 0x99\nadd.u32 $r1, $r124, 0x1\nst.global.u32 [$r124], $r1\nexit");
    assert_eq!(v, 1, "$r124 reads zero even after a write");
}

#[test]
fn falling_off_the_end_is_implicit_exit() {
    let p = assemble("t", "mov.u32 $r1, 0x1\nst.global.u32 [$r124], $r1").unwrap();
    let mut g = MemBlock::with_words(1);
    let stats = Simulator::new()
        .run(&Launch::new(p), &mut g, &mut NopHook)
        .unwrap();
    assert_eq!(g.load(0).unwrap(), 1);
    assert_eq!(stats.instructions, 2);
}

#[test]
fn unaligned_global_access_faults() {
    let p = assemble("t", "mov.u32 $r1, 0x2\nld.global.u32 $r2, [$r1]\nexit").unwrap();
    let mut g = MemBlock::with_words(4);
    let err = Simulator::new()
        .run(&Launch::new(p), &mut g, &mut NopHook)
        .unwrap_err();
    assert!(matches!(err, SimFault::Unaligned { .. }));
}

#[test]
fn shared_out_of_bounds_faults() {
    let p = assemble("t", "mov.u32 $r1, s[0x0FF0]\nexit").unwrap();
    let mut g = MemBlock::with_words(1);
    let launch = Launch::new(p).shared_bytes(0x100);
    let err = Simulator::new()
        .run(&launch, &mut g, &mut NopHook)
        .unwrap_err();
    assert!(matches!(err, SimFault::InvalidAccess { .. }));
}

#[test]
fn alu_with_memory_operands() {
    // PTXPlus allows memory operands directly in ALU instructions.
    let p = assemble(
        "t",
        r#"
        mov.u32 $r1, 0x2A
        mov.u32 s[0x0100], $r1
        add.u32 $r2, s[0x0100], 0x1
        st.global.u32 [$r124], $r2
        min.s32 $r3, s[0x0100], 0x5
        mov.u32 $r4, 0x4
        st.global.u32 [$r4], $r3
        exit
        "#,
    )
    .unwrap();
    let mut g = MemBlock::with_words(2);
    Simulator::new()
        .run(&Launch::new(p), &mut g, &mut NopHook)
        .unwrap();
    assert_eq!(g.load(0).unwrap(), 43);
    assert_eq!(g.load(4).unwrap(), 5);
}

#[test]
fn retp_guard_controls_exit() {
    let p = assemble(
        "t",
        r#"
        cvt.u32.u16 $r1, %tid.x
        set.eq.u32.u32 $p0/$o127, $r1, $r124
        @$p0.ne retp                      // tid 0 returns here
        mov.u32 $r2, 0x1
        shl.u32 $r3, $r1, 0x2
        st.global.u32 [$r3], $r2
        exit
        "#,
    )
    .unwrap();
    let mut g = MemBlock::with_words(2);
    Simulator::new()
        .run(&Launch::new(p).block(2, 1, 1), &mut g, &mut NopHook)
        .unwrap();
    assert_eq!(g.to_vec(), [0, 1], "thread 0 exited early, thread 1 stored");
}
